//! k-core decomposition via min-degree peeling.
//!
//! The coreness of a node is the largest k such that the node belongs to a
//! subgraph where every node has degree ≥ k. The classic algorithm peels
//! the minimum-degree node repeatedly; its per-step "find the minimum" is
//! exactly the operation S-Profile accelerates (paper §2.3).

use crate::graph::Graph;
use crate::peel::MinPeeler;

/// Result of a k-core decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `coreness[v]` = the core number of node `v`.
    pub coreness: Vec<u32>,
    /// Nodes in peel order (first peeled first).
    pub peel_order: Vec<u32>,
    /// The maximum core number (degeneracy of the graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// All nodes with coreness ≥ k, ascending by id.
    pub fn k_core_members(&self, k: u32) -> Vec<u32> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as u32)
            .collect()
    }
}

/// Computes the k-core decomposition of `g` using peeling backend `P`.
/// O(V + E) peeler operations.
pub fn kcore_decomposition<P: MinPeeler>(g: &Graph) -> CoreDecomposition {
    let n = g.num_nodes();
    let mut peeler = P::new(&g.degrees());
    let mut removed = vec![false; n as usize];
    let mut coreness = vec![0u32; n as usize];
    let mut peel_order = Vec::with_capacity(n as usize);
    let mut k = 0u32;
    for _ in 0..n {
        let (v, d) = peeler.pop_min().expect("one pop per node");
        // The core number is the running maximum of observed minimum
        // degrees: removing a node never increases the minimum degree of
        // what remains beyond d, so k is monotone.
        k = k.max(d as u32);
        coreness[v as usize] = k;
        removed[v as usize] = true;
        peel_order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                peeler.decrement(u);
            }
        }
    }
    CoreDecomposition {
        coreness,
        peel_order,
        degeneracy: k,
    }
}

/// Validates a claimed decomposition directly from the definition:
/// in the subgraph induced by `{v : coreness[v] >= k}` every node must
/// have induced degree ≥ k, and each node's coreness must be maximal
/// (node v is *not* in the (coreness[v]+1)-core). O(V·E) — tests only.
pub fn verify_coreness(g: &Graph, coreness: &[u32]) -> Result<(), String> {
    let n = g.num_nodes();
    let max_k = coreness.iter().copied().max().unwrap_or(0);
    for k in 1..=max_k {
        // Claimed members of the k-core.
        let members: Vec<bool> = (0..n).map(|v| coreness[v as usize] >= k).collect();
        // Compute the true k-core from scratch: strip the full graph of
        // nodes with induced degree < k until stable.
        let mut live = vec![true; n as usize];
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if !live[v as usize] {
                    continue;
                }
                let d = g.neighbors(v).iter().filter(|&&u| live[u as usize]).count() as u32;
                if d < k {
                    live[v as usize] = false;
                    changed = true;
                }
            }
        }
        for v in 0..n {
            if members[v as usize] && !live[v as usize] {
                return Err(format!(
                    "node {v} claims coreness {} but falls out of the {k}-core",
                    coreness[v as usize]
                ));
            }
            if !members[v as usize] && live[v as usize] {
                return Err(format!(
                    "node {v} survives the {k}-core but claims coreness {}",
                    coreness[v as usize]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::{BucketPeeler, LazyHeapPeeler, SProfilePeeler};

    fn triangle_with_tail() -> Graph {
        // 0-1-2 triangle, 2-3-4 path.
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g
    }

    #[test]
    fn triangle_with_tail_coreness() {
        let g = triangle_with_tail();
        let d = kcore_decomposition::<SProfilePeeler>(&g);
        assert_eq!(d.coreness, vec![2, 2, 2, 1, 1]);
        assert_eq!(d.degeneracy, 2);
        assert_eq!(d.k_core_members(2), vec![0, 1, 2]);
        assert_eq!(d.k_core_members(1), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.k_core_members(3), Vec::<u32>::new());
        verify_coreness(&g, &d.coreness).unwrap();
    }

    #[test]
    fn all_backends_agree_on_coreness() {
        for seed in 0..4u64 {
            let g = Graph::erdos_renyi(120, 500, seed);
            let a = kcore_decomposition::<SProfilePeeler>(&g);
            let b = kcore_decomposition::<LazyHeapPeeler>(&g);
            let c = kcore_decomposition::<BucketPeeler>(&g);
            assert_eq!(a.coreness, b.coreness, "seed {seed}");
            assert_eq!(b.coreness, c.coreness, "seed {seed}");
            assert_eq!(a.degeneracy, b.degeneracy);
            verify_coreness(&g, &a.coreness).unwrap();
        }
    }

    #[test]
    fn clique_coreness_is_size_minus_one() {
        let g = Graph::with_planted_clique(30, 8, 0, 1);
        let d = kcore_decomposition::<SProfilePeeler>(&g);
        for v in 0..8u32 {
            assert_eq!(d.coreness[v as usize], 7, "clique node {v}");
        }
        for v in 8..30u32 {
            assert_eq!(d.coreness[v as usize], 0, "isolated node {v}");
        }
        assert_eq!(d.degeneracy, 7);
    }

    #[test]
    fn edgeless_graph_is_all_zero() {
        let g = Graph::new(6);
        let d = kcore_decomposition::<SProfilePeeler>(&g);
        assert_eq!(d.coreness, vec![0; 6]);
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.peel_order.len(), 6);
    }

    #[test]
    fn peel_order_is_a_permutation() {
        let g = Graph::erdos_renyi(50, 120, 9);
        let d = kcore_decomposition::<SProfilePeeler>(&g);
        let mut order = d.peel_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn preferential_attachment_has_core_at_least_k() {
        // Every node has degree >= 3 by construction, so the 3-core is the
        // whole graph and degeneracy >= 3.
        let g = Graph::preferential_attachment(200, 3, 11);
        let d = kcore_decomposition::<BucketPeeler>(&g);
        assert!(d.degeneracy >= 3, "degeneracy {}", d.degeneracy);
        assert!(d.coreness.iter().all(|&c| c >= 3));
        verify_coreness(&g, &d.coreness).unwrap();
    }
}
