//! Greedy coloring along the degeneracy order.
//!
//! A classic corollary of k-core peeling: coloring nodes in *reverse* peel
//! order uses at most `degeneracy + 1` colors, because each node sees at
//! most `degeneracy` already-colored neighbors. Since the peel order comes
//! straight out of [`crate::kcore_decomposition`], this is a third consumer
//! of the S-Profile-powered min-degree engine (paper §2.3).

use crate::graph::Graph;
use crate::kcore::kcore_decomposition;
use crate::peel::MinPeeler;

/// Result of a greedy degeneracy coloring.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// `color[v]` ∈ `0..num_colors`.
    pub color: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: u32,
}

impl Coloring {
    /// Checks that no edge is monochromatic. O(E).
    pub fn is_proper(&self, g: &Graph) -> bool {
        (0..g.num_nodes()).all(|u| {
            g.neighbors(u)
                .iter()
                .all(|&v| self.color[u as usize] != self.color[v as usize])
        })
    }
}

/// Colors `g` greedily along the reverse degeneracy (peel) order computed
/// with backend `P`. Uses at most `degeneracy(g) + 1` colors.
pub fn degeneracy_coloring<P: MinPeeler>(g: &Graph) -> Coloring {
    let n = g.num_nodes();
    let decomposition = kcore_decomposition::<P>(g);
    let mut color = vec![u32::MAX; n as usize];
    let mut num_colors = 0u32;
    // Scratch marker of colors used by already-colored neighbors; sized to
    // the worst case (degeneracy + 1 candidate colors).
    let cap = decomposition.degeneracy as usize + 1;
    let mut forbidden = vec![u64::MAX; cap]; // stores the round a color was seen
    for (round, &v) in decomposition.peel_order.iter().rev().enumerate() {
        for &u in g.neighbors(v) {
            let c = color[u as usize];
            if c != u32::MAX && (c as usize) < cap {
                forbidden[c as usize] = round as u64;
            }
        }
        let chosen = forbidden
            .iter()
            .position(|&seen| seen != round as u64)
            .unwrap_or(cap - 1) as u32;
        color[v as usize] = chosen;
        num_colors = num_colors.max(chosen + 1);
    }
    Coloring { color, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::{BucketPeeler, SProfilePeeler};

    #[test]
    fn path_graph_uses_two_colors() {
        let mut g = Graph::new(5);
        for v in 0..4u32 {
            g.add_edge(v, v + 1);
        }
        let c = degeneracy_coloring::<SProfilePeeler>(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 2, "a path is 2-colorable");
    }

    #[test]
    fn clique_needs_exactly_size_colors() {
        let g = Graph::with_planted_clique(6, 6, 0, 1);
        let c = degeneracy_coloring::<SProfilePeeler>(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 6);
    }

    #[test]
    fn colors_bounded_by_degeneracy_plus_one() {
        for seed in 0..3u64 {
            let g = Graph::erdos_renyi(150, 600, seed);
            let decomposition = kcore_decomposition::<SProfilePeeler>(&g);
            let c = degeneracy_coloring::<SProfilePeeler>(&g);
            assert!(c.is_proper(&g), "seed {seed}");
            assert!(
                c.num_colors <= decomposition.degeneracy + 1,
                "seed {seed}: {} colors > degeneracy {} + 1",
                c.num_colors,
                decomposition.degeneracy
            );
        }
    }

    #[test]
    fn edgeless_graph_one_color() {
        let g = Graph::new(4);
        let c = degeneracy_coloring::<BucketPeeler>(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors, 1);
        assert!(c.color.iter().all(|&x| x == 0));
    }

    #[test]
    fn backends_give_proper_colorings() {
        let g = Graph::preferential_attachment(300, 3, 9);
        let a = degeneracy_coloring::<SProfilePeeler>(&g);
        let b = degeneracy_coloring::<BucketPeeler>(&g);
        assert!(a.is_proper(&g));
        assert!(b.is_proper(&g));
        // Both respect the same bound even if tie-breaking differs.
        let k = kcore_decomposition::<SProfilePeeler>(&g).degeneracy;
        assert!(a.num_colors <= k + 1);
        assert!(b.num_colors <= k + 1);
    }
}
