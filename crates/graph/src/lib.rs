//! # sprofile-graph — graph "shaving" applications of S-Profile
//!
//! Paper §2.3: *"A critical step of [shaving algorithms] is to keep
//! finding low-degree nodes at every time of shaving nodes from a graph.
//! Thus, S-Profile can be plugged into such algorithms for further
//! speedup, by treating a node as an object and its degree as frequency."*
//!
//! This crate builds three such algorithms —
//!
//! * [`kcore_decomposition`] — k-core / coreness / degeneracy,
//! * [`densest_subgraph`] — Charikar's greedy ½-approximation,
//! * [`detect_dense_block`] — unit-weight Fraudar bipartite shaving,
//! * [`degeneracy_coloring`] — greedy coloring along the peel order,
//!
//! — each generic over a [`MinPeeler`] backend so the S-Profile-powered
//! peel can be compared head-to-head with a lazy binary heap and the
//! classic bucket queue (see the `graph_peel` bench).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod coloring;
mod densest;
mod fraudar;
mod graph;
mod kcore;
mod peel;

pub use coloring::{degeneracy_coloring, Coloring};
pub use densest::{densest_subgraph, induced_density, DensestResult};
pub use fraudar::{detect_dense_block, FraudBlock};
pub use graph::{BipartiteGraph, Graph};
pub use kcore::{kcore_decomposition, verify_coreness, CoreDecomposition};
pub use peel::{BucketPeeler, LazyHeapPeeler, MinPeeler, SProfilePeeler};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_api_is_coherent() {
        let g = Graph::erdos_renyi(40, 100, 1);
        let cores = kcore_decomposition::<SProfilePeeler>(&g);
        let dense = densest_subgraph::<SProfilePeeler>(&g).unwrap();
        // The densest subgraph always sits inside the (⌈density⌉)-core.
        let k = dense.density.ceil() as u32;
        for &v in &dense.members {
            assert!(
                cores.coreness[v as usize] >= k,
                "densest member {v} has coreness {} < {k}",
                cores.coreness[v as usize]
            );
        }
    }
}
