//! Simple undirected graph with the generators the shaving experiments use.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected simple graph over nodes `0..n` (adjacency lists).
#[derive(Clone, Debug)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: u64,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: u32) -> Self {
        Graph {
            adj: vec![Vec::new(); n as usize],
            num_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// On self-loops or out-of-range endpoints. Duplicate edges are the
    /// caller's responsibility (generators deduplicate).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert_ne!(u, v, "self-loops are not allowed");
        let n = self.adj.len() as u32;
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for {n} nodes");
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.num_edges += 1;
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> u32 {
        self.adj[u as usize].len() as u32
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// All degrees as an `i64` vector (the frequency array the profilers
    /// consume).
    pub fn degrees(&self) -> Vec<i64> {
        self.adj.iter().map(|a| a.len() as i64).collect()
    }

    /// Number of edges with both endpoints inside `nodes`. O(Σ deg).
    pub fn edges_within(&self, nodes: &[u32]) -> u64 {
        let set: HashSet<u32> = nodes.iter().copied().collect();
        let mut count = 0u64;
        for &u in nodes {
            for &v in self.neighbors(u) {
                if v > u && set.contains(&v) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Erdős–Rényi-style random graph: `edges` distinct random edges over
    /// `n` nodes. Deterministic per seed.
    pub fn erdos_renyi(n: u32, edges: u64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two nodes for edges");
        let max_edges = n as u64 * (n as u64 - 1) / 2;
        assert!(
            edges <= max_edges,
            "{edges} edges exceed simple-graph maximum {max_edges}"
        );
        let mut g = Graph::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edges as usize);
        while g.num_edges < edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                g.add_edge(key.0, key.1);
            }
        }
        g
    }

    /// Preferential-attachment graph: each new node attaches to `k`
    /// distinct existing nodes, chosen proportionally to degree (by
    /// sampling endpoints of existing edges). Produces the heavy-tailed
    /// degree distributions typical of social graphs.
    pub fn preferential_attachment(n: u32, k: u32, seed: u64) -> Self {
        assert!(k >= 1 && n > k, "need n > k >= 1");
        let mut g = Graph::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        // Endpoint pool: every edge contributes both endpoints, so uniform
        // pool sampling is degree-proportional sampling.
        let mut pool: Vec<u32> = Vec::new();
        // Seed clique over the first k+1 nodes.
        for u in 0..=k {
            for v in 0..u {
                g.add_edge(u, v);
                pool.push(u);
                pool.push(v);
            }
        }
        for u in (k + 1)..n {
            let mut targets: HashSet<u32> = HashSet::with_capacity(k as usize);
            while (targets.len() as u32) < k {
                let t = if pool.is_empty() || rng.gen_bool(0.1) {
                    rng.gen_range(0..u)
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if t != u {
                    targets.insert(t);
                }
            }
            for t in targets {
                g.add_edge(u, t);
                pool.push(u);
                pool.push(t);
            }
        }
        g
    }

    /// Sparse background graph with a planted clique on the first
    /// `clique` nodes — ground truth for the densest-subgraph tests.
    pub fn with_planted_clique(n: u32, clique: u32, background_edges: u64, seed: u64) -> Self {
        assert!(clique >= 2 && clique <= n);
        let mut g = Graph::new(n);
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for u in 0..clique {
            for v in 0..u {
                g.add_edge(u, v);
                seen.insert((v, u));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut added = 0u64;
        while added < background_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                g.add_edge(key.0, key.1);
                added += 1;
            }
        }
        g
    }
}

/// An undirected bipartite graph: left nodes `0..left`, right nodes
/// `left..left+right`, edges only across sides. Backed by [`Graph`] so the
/// shaving algorithms apply unchanged.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    graph: Graph,
    left: u32,
}

impl BipartiteGraph {
    /// Creates an edgeless bipartite graph.
    pub fn new(left: u32, right: u32) -> Self {
        BipartiteGraph {
            graph: Graph::new(left + right),
            left,
        }
    }

    /// Number of left-side nodes.
    pub fn num_left(&self) -> u32 {
        self.left
    }

    /// Number of right-side nodes.
    pub fn num_right(&self) -> u32 {
        self.graph.num_nodes() - self.left
    }

    /// Adds an edge between left node `l` (`0..left`) and right node `r`
    /// (`0..right`).
    pub fn add_edge(&mut self, l: u32, r: u32) {
        assert!(l < self.left, "left node {l} out of range");
        let rr = self.left + r;
        assert!(rr < self.graph.num_nodes(), "right node {r} out of range");
        self.graph.add_edge(l, rr);
    }

    /// Whether `node` (global id) is on the left side.
    pub fn is_left(&self, node: u32) -> bool {
        node < self.left
    }

    /// The underlying flat graph (global node ids).
    pub fn as_graph(&self) -> &Graph {
        &self.graph
    }

    /// Random bipartite background (`edges` distinct pairs) with a planted
    /// fully-connected block of `block_left` × `block_right` nodes (ids 0..
    /// on each side) — the "fraud block" of the Fraudar scenario.
    pub fn with_planted_block(
        left: u32,
        right: u32,
        block_left: u32,
        block_right: u32,
        background_edges: u64,
        seed: u64,
    ) -> Self {
        assert!(block_left <= left && block_right <= right);
        let mut g = BipartiteGraph::new(left, right);
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for l in 0..block_left {
            for r in 0..block_right {
                g.add_edge(l, r);
                seen.insert((l, r));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut added = 0u64;
        while added < background_edges {
            let l = rng.gen_range(0..left);
            let r = rng.gen_range(0..right);
            if seen.insert((l, r)) {
                g.add_edge(l, r);
                added += 1;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_updates_both_endpoints() {
        let mut g = Graph::new(4);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(2), &[0, 3]);
        assert_eq!(g.degrees(), vec![1, 0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Graph::new(3).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        Graph::new(3).add_edge(0, 3);
    }

    #[test]
    fn edges_within_counts_induced_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        assert_eq!(g.edges_within(&[0, 1, 2]), 3);
        assert_eq!(g.edges_within(&[0, 1, 3]), 1);
        assert_eq!(g.edges_within(&[3]), 0);
        assert_eq!(g.edges_within(&[]), 0);
    }

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let g = Graph::erdos_renyi(50, 200, 1);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
        // No self loops, no duplicate edges.
        let mut seen = HashSet::new();
        for u in 0..50u32 {
            for &v in g.neighbors(u) {
                assert_ne!(u, v);
                if u < v {
                    assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
                }
            }
        }
        // Deterministic per seed.
        let g2 = Graph::erdos_renyi(50, 200, 1);
        assert_eq!(g2.degrees(), g.degrees());
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let g = Graph::preferential_attachment(500, 3, 7);
        assert_eq!(g.num_nodes(), 500);
        let mut degs = g.degrees();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[250];
        assert!(
            max >= 3 * median,
            "expected heavy tail: max {max}, median {median}"
        );
        // Every non-seed node has at least k edges.
        assert!(degs[0] >= 3);
    }

    #[test]
    fn planted_clique_is_complete() {
        let g = Graph::with_planted_clique(100, 10, 50, 3);
        assert_eq!(g.edges_within(&(0..10).collect::<Vec<_>>()), 45);
        assert_eq!(g.num_edges(), 45 + 50);
    }

    #[test]
    fn bipartite_edges_stay_across_sides() {
        let mut b = BipartiteGraph::new(3, 4);
        b.add_edge(0, 0);
        b.add_edge(2, 3);
        assert_eq!(b.num_left(), 3);
        assert_eq!(b.num_right(), 4);
        assert!(b.is_left(0));
        assert!(!b.is_left(3));
        let g = b.as_graph();
        assert_eq!(g.num_edges(), 2);
        // Left node 2 connects to global id 3 + 3 = 6.
        assert_eq!(g.neighbors(2), &[6]);
    }

    #[test]
    #[should_panic(expected = "left node")]
    fn bipartite_rejects_bad_left() {
        BipartiteGraph::new(2, 2).add_edge(2, 0);
    }

    #[test]
    fn planted_block_is_complete_bipartite() {
        let b = BipartiteGraph::with_planted_block(20, 30, 4, 5, 100, 9);
        let g = b.as_graph();
        assert_eq!(g.num_edges(), 4 * 5 + 100);
        for l in 0..4u32 {
            for r in 0..5u32 {
                assert!(
                    g.neighbors(l).contains(&(20 + r)),
                    "block edge ({l},{r}) missing"
                );
            }
        }
    }
}
