//! Hand-rolled log-linear histogram for latency tracking.
//!
//! hdrhistogram-style bucketing: values below 32 get exact unit
//! buckets; above that, each power-of-two octave is split into 32
//! linear sub-buckets, so the relative quantile error is bounded by
//! ~3% across the whole `u64` range. Two flavours are provided:
//! [`LogHistogram`] for single-threaded recording with cheap merging
//! (loadgen worker threads), and [`AtomicLogHistogram`] for lock-free
//! concurrent recording (the server's per-verb latency and commit-wait
//! tracking).
//!
//! Both flavours track the exact sample sum alongside the bucketised
//! distribution and expose [`LogHistogram::count_below`] /
//! [`AtomicLogHistogram::count_below`], which is exact whenever the
//! probe is a bucket boundary (any value `< 32`, or any power of two) —
//! the Prometheus `_bucket`/`_sum`/`_count` exposition rides on these.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (32 → ≤ 1/32 relative bucket width).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        SUB + (shift as usize) * SUB + ((v >> shift) as usize & (SUB - 1))
    }
}

/// Representative (midpoint) value for a bucket index.
fn bucket_value(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let octave = (index - SUB) / SUB;
        let sub = ((index - SUB) % SUB) as u64;
        let shift = octave as u32;
        let low = (SUB as u64 + sub) << shift;
        let width = 1u64 << shift;
        low + width / 2
    }
}

macro_rules! compact_debug {
    ($ty:ident) => {
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty))
                    .field("count", &self.count())
                    .field("sum", &self.sum())
                    .field("max", &self.max())
                    .finish_non_exhaustive()
            }
        }
    };
}
compact_debug!(LogHistogram);
compact_debug!(AtomicLogHistogram);

/// Single-threaded log-linear histogram.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded exactly (not bucket-quantised).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples strictly below `bound`. Exact whenever `bound` falls on
    /// a bucket boundary: any value `< 32`, or any power of two (the
    /// log-linear octave edges); otherwise samples sharing `bound`'s
    /// bucket are excluded (an under-count bounded by one bucket).
    pub fn count_below(&self, bound: u64) -> u64 {
        self.buckets[..bucket_index(bound)].iter().sum()
    }

    /// Approximate quantile (`q` in `[0, 1]`); 0 when empty. The
    /// result is the representative value of the bucket containing the
    /// `ceil(q·count)`-th sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. Merging is
    /// commutative and associative — per-thread histograms summed in
    /// any order produce the same distribution.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serializes the histogram as one text line: `h1 <count> <sum>
    /// <max>` followed by sparse `index:count` pairs for the nonzero
    /// buckets. Round-trips exactly through [`LogHistogram::from_wire`]
    /// — merging deserialized parts equals merging the originals.
    pub fn to_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("h1 {} {} {}", self.count, self.sum, self.max);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                let _ = write!(out, " {i}:{c}");
            }
        }
        out
    }

    /// Parses a [`LogHistogram::to_wire`] line, validating the version
    /// tag, bucket indices, and that the bucket counts sum to the
    /// declared total.
    pub fn from_wire(s: &str) -> Result<LogHistogram, String> {
        let mut parts = s.split_whitespace();
        if parts.next() != Some("h1") {
            return Err("histogram wire format: missing 'h1' tag".into());
        }
        let mut scalar = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("histogram wire format: missing {name}"))?
                .parse()
                .map_err(|_| format!("histogram wire format: unparseable {name}"))
        };
        let count = scalar("count")?;
        let sum = scalar("sum")?;
        let max = scalar("max")?;
        let mut h = LogHistogram::new();
        let mut bucket_total = 0u64;
        for pair in parts {
            let (i, c) = pair
                .split_once(':')
                .ok_or_else(|| format!("histogram wire format: bad pair '{pair}'"))?;
            let i: usize = i
                .parse()
                .map_err(|_| format!("histogram wire format: bad index '{i}'"))?;
            let c: u64 = c
                .parse()
                .map_err(|_| format!("histogram wire format: bad count '{c}'"))?;
            if i >= BUCKETS {
                return Err(format!("histogram wire format: index {i} out of range"));
            }
            h.buckets[i] += c;
            bucket_total += c;
        }
        if bucket_total != count {
            return Err(format!(
                "histogram wire format: buckets sum to {bucket_total}, header says {count}"
            ));
        }
        h.count = count;
        h.sum = sum;
        h.max = max;
        Ok(h)
    }
}

/// Lock-free concurrent log-linear histogram.
pub struct AtomicLogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicLogHistogram {
        AtomicLogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed; quantile reads are approximate
    /// under concurrency, which is fine for observability).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Samples strictly below `bound`; see
    /// [`LogHistogram::count_below`] for the exactness contract.
    pub fn count_below(&self, bound: u64) -> u64 {
        self.buckets[..bucket_index(bound)]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate quantile; see [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(i).min(self.max());
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        // Log-uniform-ish sweep across six orders of magnitude.
        let mut v = 1u64;
        let mut exact = Vec::new();
        while v < 10_000_000 {
            h.record(v);
            exact.push(v);
            v += 1 + v / 7;
        }
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.04, "q={q}: got {got}, truth {truth}, rel {rel}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    /// The loadgen shape: per-thread histograms folded into one. The
    /// fold must be order-independent — any permutation of the same
    /// parts yields identical counts, sums, maxima, and quantiles.
    #[test]
    fn merge_is_order_independent() {
        let parts: Vec<LogHistogram> = (0..5u64)
            .map(|t| {
                let mut h = LogHistogram::new();
                for i in 0..400u64 {
                    h.record((i * 31 + t * 7877) % 250_000);
                }
                h
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut merged = LogHistogram::new();
            for &i in order {
                merged.merge(&parts[i]);
            }
            merged
        };
        let forward = fold(&[0, 1, 2, 3, 4]);
        for order in [[4, 3, 2, 1, 0], [2, 0, 4, 1, 3], [1, 4, 0, 3, 2]] {
            let h = fold(&order);
            assert_eq!(h.count(), forward.count(), "{order:?}");
            assert_eq!(h.sum(), forward.sum(), "{order:?}");
            assert_eq!(h.max(), forward.max(), "{order:?}");
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), forward.quantile(q), "{order:?} q={q}");
            }
            for bound in [1u64, 32, 1024, 65536, 1 << 20] {
                assert_eq!(h.count_below(bound), forward.count_below(bound));
            }
        }
    }

    #[test]
    fn atomic_agrees_with_plain() {
        let mut plain = LogHistogram::new();
        let atomic = AtomicLogHistogram::new();
        for i in 0..5000u64 {
            let v = (i * 37) % 100_000;
            plain.record(v);
            atomic.record(v);
        }
        assert_eq!(plain.count(), atomic.count());
        assert_eq!(plain.sum(), atomic.sum());
        assert_eq!(plain.max(), atomic.max());
        for &q in &[0.5, 0.99, 0.999] {
            assert_eq!(plain.quantile(q), atomic.quantile(q));
        }
        for bound in [16u64, 32, 4096, 65536] {
            assert_eq!(plain.count_below(bound), atomic.count_below(bound));
        }
    }

    #[test]
    fn count_below_is_exact_at_bucket_boundaries() {
        let mut h = LogHistogram::new();
        for v in 0..100_000u64 {
            h.record(v % 3000);
        }
        for bound in [1u64, 16, 32, 64, 256, 1024, 2048, 4096] {
            let truth = (0..100_000u64).filter(|v| v % 3000 < bound).count() as u64;
            assert_eq!(h.count_below(bound), truth, "bound {bound}");
        }
        // +Inf-style probe: everything is below a huge boundary.
        assert_eq!(h.count_below(1 << 62), h.count());
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut h = LogHistogram::new();
        for i in 0..5000u64 {
            h.record((i * 37) % 1_000_000);
        }
        let back = LogHistogram::from_wire(&h.to_wire()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.max(), h.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
        // Empty round-trips too.
        let empty = LogHistogram::from_wire(&LogHistogram::new().to_wire()).unwrap();
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn merging_reparsed_wire_forms_equals_merging_the_originals() {
        // Property check over pseudo-random recording patterns: a
        // histogram that crossed the wire must merge indistinguishably
        // from the original — counts, sums, maxima, exact bucket
        // boundaries, and quantiles all agree.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut direct = LogHistogram::new();
        let mut via_wire = LogHistogram::new();
        for _ in 0..64 {
            let mut h = LogHistogram::new();
            for _ in 0..(rng() % 256) {
                // Shifted draws spread samples across all octaves.
                h.record(rng() >> (rng() % 64));
            }
            direct.merge(&h);
            via_wire.merge(&LogHistogram::from_wire(&h.to_wire()).unwrap());
        }
        assert!(direct.count() > 0, "degenerate property run");
        assert_eq!(via_wire.count(), direct.count());
        assert_eq!(via_wire.sum(), direct.sum());
        assert_eq!(via_wire.max(), direct.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(via_wire.quantile(q), direct.quantile(q), "q={q}");
        }
        for shift in (0..64).step_by(4) {
            let bound = 1u64 << shift;
            assert_eq!(
                via_wire.count_below(bound),
                direct.count_below(bound),
                "bound={bound}"
            );
        }
    }

    #[test]
    fn malformed_wire_is_rejected() {
        for s in [
            "",
            "h2 0 0 0",
            "h1",
            "h1 1 2",
            "h1 x 2 3",
            "h1 0 0 0 nope",
            "h1 0 0 0 1:x",
            "h1 0 0 0 999999:1",
            "h1 5 0 0 1:2", // bucket total != count
        ] {
            assert!(LogHistogram::from_wire(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(i < BUCKETS);
            // Representative value stays within the bucket's octave.
            if v >= 32 {
                let rep = bucket_value(i);
                let rel = (rep as f64 - v as f64).abs() / v as f64;
                assert!(rel <= 0.05, "v={v} rep={rep}");
            }
            prev = i;
            v = v * 2 + 1;
        }
    }
}
