//! `sprofile-obs`: std-only observability primitives shared by every
//! layer of the stack.
//!
//! Four pieces, all allocation-light and safe under `unsafe_code =
//! "deny"`:
//!
//! - **Structured, leveled, per-target logging** — the [`log!`] macro
//!   emits events with static targets/messages plus `key = value`
//!   fields, rendered as logfmt or JSON ([`LogFormat`]). The level
//!   check happens *before* any field is formatted, so a disabled
//!   event costs one relaxed atomic load.
//! - **A bounded event ring** — every [`Obs`] retains its last N
//!   events in a fixed ring (slot claim is a lock-free `fetch_add`;
//!   each slot swap holds a per-slot mutex only for the store), so a
//!   `LOGTAIL` verb or a panic dump can reconstruct recent history
//!   without any log file configured.
//! - **Log-linear histograms** ([`hist`]) — moved here from the server
//!   crate so `persist` (WAL fsync/checkpoint timing) and `server`
//!   (per-verb latency) share one implementation.
//! - **Rate meters** ([`Meter`]) — scrape-time per-second rates with a
//!   10 s EWMA over monotonically increasing counters, for the
//!   `METRICS` exposition.
//! - **Request spans** ([`span`]) — per-phase latency decomposition
//!   (`queue → parse → apply → wal_lock_wait → wal_append → fsync →
//!   commit_wait → fanout → reply`) plus a flight recorder retaining
//!   the slowest recent spans for the `SPANS` verb and panic dumps.
//!
//! Events carry an optional **trace id** (`0` = untraced): a request
//! tagged by `TRACE <id>` produces ring events with that id on every
//! node it touches (router fan-out, migration, replication), which is
//! what makes one request's path through a cluster reconstructible.

pub mod hist;
pub mod span;

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Log severity, ordered from most to least severe. The numeric values
/// are load-bearing: a level is enabled when `level as u8 <=
/// configured`, and `0` is reserved for "off".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting conditions.
    Error = 1,
    /// Degraded-but-running conditions (failover, fencing, shedding).
    Warn = 2,
    /// Lifecycle events and traced requests (the default).
    Info = 3,
    /// Per-operation detail (slow-op events always use at least this).
    Debug = 4,
    /// Everything, including per-frame chatter.
    Trace = 5,
}

impl Level {
    /// Parses `error|warn|info|debug|trace` (plus `off` → `None`).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        Some(match s.to_ascii_lowercase().as_str() {
            "off" | "none" => None,
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => return None,
        })
    }

    /// The lowercase name (`"info"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Rendered line format for sinks and `LOGTAIL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// `ts_us=12 level=info target=conn msg=accepted conn=4`
    Logfmt,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses `logfmt|json`.
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.to_ascii_lowercase().as_str() {
            "logfmt" => Some(LogFormat::Logfmt),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }

    /// The lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LogFormat::Logfmt => "logfmt",
            LogFormat::Json => "json",
        }
    }
}

/// One structured event. Targets and messages are static strings (they
/// come from [`log!`] literals); fields are formatted eagerly only
/// when the event's level is enabled.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// Monotonic per-[`Obs`] sequence number (also the ring cursor).
    pub seq: u64,
    /// Microseconds since the owning [`Obs`] was created.
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem tag (`"conn"`, `"repl"`, `"wal"`, `"cluster"`, …).
    pub target: &'static str,
    /// What happened.
    pub msg: &'static str,
    /// Request trace id; `0` = untraced.
    pub trace: u64,
    /// `key = value` pairs, in emission order.
    pub fields: Vec<(&'static str, String)>,
}

fn logfmt_value(out: &mut String, v: &str) {
    let plain = !v.is_empty()
        && v.bytes()
            .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'=' && b != b'\\');
    if plain {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl LogEvent {
    /// Renders the event as one line (no trailing newline) in `format`.
    pub fn render(&self, format: LogFormat, out: &mut String) {
        match format {
            LogFormat::Logfmt => {
                let _ = write!(
                    out,
                    "ts_us={} level={} target={} msg=",
                    self.ts_us,
                    self.level.name(),
                    self.target
                );
                logfmt_value(out, self.msg);
                if self.trace != 0 {
                    let _ = write!(out, " trace={}", self.trace);
                }
                for (k, v) in &self.fields {
                    let _ = write!(out, " {k}=");
                    logfmt_value(out, v);
                }
            }
            LogFormat::Json => {
                let _ = write!(
                    out,
                    "{{\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":",
                    self.ts_us,
                    self.level.name(),
                    self.target
                );
                json_string(out, self.msg);
                if self.trace != 0 {
                    let _ = write!(out, ",\"trace\":{}", self.trace);
                }
                for (k, v) in &self.fields {
                    let _ = write!(out, ",\"{k}\":");
                    json_string(out, v);
                }
                out.push('}');
            }
        }
    }
}

/// Bounded event ring retaining the last `capacity` events. The write
/// path claims a slot with one `fetch_add` (lock-free — writers never
/// wait on each other for ordering) and holds that slot's mutex only
/// for the `Option` store; readers snapshot by cloning the live slots.
struct Ring {
    slots: Vec<Mutex<Option<LogEvent>>>,
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Stores `ev`, assigning its sequence number; overwrites the
    /// oldest event once the ring is full.
    fn push(&self, mut ev: LogEvent) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        // A poisoned slot (a panicking writer mid-store) must not kill
        // the panic-hook dump that runs right after it.
        let mut guard = self.slots[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Concurrent writers can race slot stores; keep the newer seq.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(ev);
        }
        seq
    }

    /// The retained events, oldest first.
    fn snapshot(&self) -> Vec<LogEvent> {
        let mut events: Vec<LogEvent> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone()
            })
            .collect();
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

/// Where rendered log lines go (the ring always records regardless).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum LogSink {
    /// Ring only — the embedded/test default: no output stream.
    #[default]
    None,
    /// Lines to stderr (the CLI `serve` default).
    Stderr,
    /// Lines appended to a file.
    File(PathBuf),
}

/// [`Obs`] construction knobs.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Enabled severity; `None` disables emission entirely.
    pub level: Option<Level>,
    /// Rendered line format (sinks and `LOGTAIL`).
    pub format: LogFormat,
    /// Output stream for rendered lines.
    pub sink: LogSink,
    /// Events retained in the ring.
    pub ring: usize,
    /// Whether to dump this ring to stderr on panic (the CLI opts in;
    /// embedded/test servers stay quiet).
    pub dump_on_panic: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            level: Some(Level::Info),
            format: LogFormat::Logfmt,
            sink: LogSink::None,
            ring: 1024,
            dump_on_panic: false,
        }
    }
}

/// A process can host many [`Obs`] instances (tests spawn many servers
/// in one process); the panic hook walks the registered ones.
fn panic_registry() -> &'static Mutex<Vec<Weak<Obs>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<Obs>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn install_panic_hook() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let Ok(mut registry) = panic_registry().lock() else {
                return;
            };
            registry.retain(|w| w.strong_count() > 0);
            for obs in registry.iter().filter_map(Weak::upgrade) {
                let tail = obs.tail(64);
                if !tail.is_empty() {
                    let mut err = io::stderr().lock();
                    let _ = writeln!(err, "--- obs ring tail (panic) ---");
                    let _ = err.write_all(tail.as_bytes());
                }
            }
        }));
    });
}

/// One observability domain: a level gate, an event ring, and an
/// optional rendered-line sink. Each server owns one (`Arc`-shared
/// with its workers); the CLI builds one from `serve` flags.
pub struct Obs {
    /// Enabled level; 0 = off. Atomic so it is runtime-adjustable.
    level: AtomicU8,
    format: LogFormat,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    ring: Ring,
    start: Instant,
}

impl Obs {
    /// Builds an `Obs` from `cfg`. Opening the file sink is the only
    /// fallible step.
    pub fn new(cfg: ObsConfig) -> io::Result<Arc<Obs>> {
        let sink: Option<Box<dyn Write + Send>> = match cfg.sink {
            LogSink::None => None,
            LogSink::Stderr => Some(Box::new(io::stderr())),
            LogSink::File(path) => Some(Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
        };
        let obs = Arc::new(Obs {
            level: AtomicU8::new(cfg.level.map_or(0, |l| l as u8)),
            format: cfg.format,
            sink: sink.map(Mutex::new),
            ring: Ring::new(cfg.ring),
            start: Instant::now(),
        });
        if cfg.dump_on_panic {
            install_panic_hook();
            if let Ok(mut registry) = panic_registry().lock() {
                registry.retain(|w| w.strong_count() > 0);
                registry.push(Arc::downgrade(&obs));
            }
        }
        Ok(obs)
    }

    /// An `Obs` that records nothing (level off, minimal ring) — the
    /// zero-cost stand-in where observability is not wired up.
    pub fn disabled() -> Arc<Obs> {
        Obs::new(ObsConfig {
            level: None,
            ring: 1,
            ..ObsConfig::default()
        })
        .expect("no sink to open")
    }

    /// Whether events at `level` are currently emitted. One relaxed
    /// load — this is the gate [`log!`] checks before formatting
    /// anything.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 <= self.level.load(Ordering::Relaxed)
    }

    /// Adjusts the enabled level at runtime (`None` = off).
    pub fn set_level(&self, level: Option<Level>) {
        self.level
            .store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    }

    /// The configured line format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Records one event: into the ring always, and rendered to the
    /// sink when one is configured. Callers go through [`log!`], which
    /// performs the level check first.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        msg: &'static str,
        trace: u64,
        fields: Vec<(&'static str, String)>,
    ) {
        let ev = LogEvent {
            seq: 0,
            ts_us: self.start.elapsed().as_micros() as u64,
            level,
            target,
            msg,
            trace,
            fields,
        };
        if let Some(sink) = &self.sink {
            let mut line = String::with_capacity(96);
            ev.render(self.format, &mut line);
            line.push('\n');
            // A full disk or closed stderr must not take the server
            // down with it; the ring still has the event.
            if let Ok(mut w) = sink.lock() {
                let _ = w.write_all(line.as_bytes());
            }
        }
        self.ring.push(ev);
    }

    /// The last `n` retained events, oldest first (all of them when
    /// `n` is 0 or exceeds the retention).
    pub fn tail_events(&self, n: usize) -> Vec<LogEvent> {
        let mut events = self.ring.snapshot();
        if n > 0 && events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }

    /// The last `n` events rendered in the configured format, one line
    /// each (the `LOGTAIL` payload).
    pub fn tail(&self, n: usize) -> String {
        let mut out = String::new();
        for ev in self.tail_events(n) {
            ev.render(self.format, &mut out);
            out.push('\n');
        }
        out
    }

    /// Retained events carrying `trace` (0 matches nothing).
    pub fn trace_events(&self, trace: u64) -> Vec<LogEvent> {
        if trace == 0 {
            return Vec::new();
        }
        self.ring
            .snapshot()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("level", &self.level.load(Ordering::Relaxed))
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

/// Emits a structured event through an [`Obs`] handle.
///
/// ```
/// use sprofile_obs::{log, Level, Obs};
/// let obs = Obs::disabled();
/// log!(obs, Level::Info, "conn", "accepted", conn = 7, peer = "1.2.3.4");
/// // Traced form: the id lands in `LogEvent::trace`.
/// log!(obs, Level::Info, "conn", "batch"; trace = 42, tuples = 8);
/// ```
///
/// The level gate runs before any field expression is evaluated or
/// formatted, so disabled events cost one atomic load.
#[macro_export]
macro_rules! log {
    ($obs:expr, $level:expr, $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::log!($obs, $level, $target, $msg; trace = 0u64 $(, $key = $val)*)
    };
    ($obs:expr, $level:expr, $target:expr, $msg:expr; trace = $trace:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let obs: &$crate::Obs = &$obs;
        let level: $crate::Level = $level;
        if obs.enabled(level) {
            let fields: Vec<(&'static str, String)> =
                vec![$( (stringify!($key), format!("{}", $val)) ),*];
            obs.emit(level, $target, $msg, $trace, fields);
        }
    }};
}

/// Scrape-time rate meter over a monotonically increasing counter:
/// feeds each observation the counter's current total and gets back
/// the per-second rate since the previous observation plus a 10 s
/// EWMA. State updates only on observation (scrapes), so an unscraped
/// meter costs nothing on the hot path.
#[derive(Debug, Default)]
pub struct Meter {
    inner: Mutex<MeterInner>,
}

#[derive(Debug, Default)]
struct MeterInner {
    last: Option<(Instant, u64)>,
    rate: f64,
    ewma: f64,
}

/// EWMA window: `alpha = 1 - exp(-dt / 10s)` per observation.
const EWMA_WINDOW_S: f64 = 10.0;

/// One [`Meter`] observation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeterReading {
    /// Events per second since the previous observation.
    pub rate: f64,
    /// 10 s exponentially weighted moving average of the rate.
    pub ewma: f64,
}

impl Meter {
    /// A fresh meter (first observation reads 0).
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Folds the counter's current `total` in and returns the reading.
    pub fn observe(&self, total: u64) -> MeterReading {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        if let Some((then, prev)) = inner.last {
            let dt = now.duration_since(then).as_secs_f64();
            if dt > 0.0 {
                // Counters are monotone; a reset (restarted source)
                // reads as a 0 rate rather than a huge negative one.
                inner.rate = total.saturating_sub(prev) as f64 / dt;
                let alpha = 1.0 - (-dt / EWMA_WINDOW_S).exp();
                inner.ewma += alpha * (inner.rate - inner.ewma);
            }
        }
        inner.last = Some((now, total));
        MeterReading {
            rate: inner.rate,
            ewma: inner.ewma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn ring_obs(capacity: usize) -> Arc<Obs> {
        Obs::new(ObsConfig {
            level: Some(Level::Trace),
            ring: capacity,
            ..ObsConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Error < Level::Trace);
        let obs = ring_obs(4);
        obs.set_level(Some(Level::Warn));
        assert!(obs.enabled(Level::Error));
        assert!(obs.enabled(Level::Warn));
        assert!(!obs.enabled(Level::Info));
        obs.set_level(None);
        assert!(!obs.enabled(Level::Error));
    }

    #[test]
    fn logfmt_and_json_render_and_escape() {
        let obs = ring_obs(8);
        log!(
            obs,
            Level::Info,
            "conn",
            "accepted",
            conn = 7,
            peer = "a b\"c"
        );
        let ev = obs.tail_events(1).pop().unwrap();
        let mut line = String::new();
        ev.render(LogFormat::Logfmt, &mut line);
        assert!(
            line.contains("level=info target=conn msg=accepted"),
            "{line}"
        );
        assert!(line.contains("conn=7"), "{line}");
        assert!(line.contains(r#"peer="a b\"c""#), "{line}");
        assert!(
            !line.contains("trace="),
            "untraced events omit trace: {line}"
        );
        let mut json = String::new();
        ev.render(LogFormat::Json, &mut json);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(r#""msg":"accepted""#), "{json}");
        assert!(json.contains(r#""peer":"a b\"c""#), "{json}");

        log!(obs, Level::Warn, "repl", "fenced"; trace = 99, epoch = 3);
        let ev = obs.tail_events(1).pop().unwrap();
        assert_eq!(ev.trace, 99);
        let mut line = String::new();
        ev.render(LogFormat::Logfmt, &mut line);
        assert!(line.contains("trace=99"), "{line}");
        assert_eq!(obs.trace_events(99).len(), 1);
        assert!(obs.trace_events(0).is_empty());
    }

    #[test]
    fn disabled_levels_do_not_evaluate_fields() {
        let obs = ring_obs(4);
        obs.set_level(Some(Level::Info));
        let evaluated = AtomicUsize::new(0);
        let expensive = || {
            evaluated.fetch_add(1, Ordering::Relaxed);
            "x"
        };
        log!(obs, Level::Debug, "t", "skipped", v = expensive());
        assert_eq!(evaluated.load(Ordering::Relaxed), 0, "gated before eval");
        log!(obs, Level::Info, "t", "kept", v = expensive());
        assert_eq!(evaluated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let obs = ring_obs(8);
        for i in 0..30u64 {
            log!(obs, Level::Info, "t", "e", i = i);
        }
        let events = obs.tail_events(0);
        assert_eq!(events.len(), 8, "capacity bounds retention");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (22..30).collect::<Vec<_>>(), "newest 8, in order");
        // tail(n) trims from the old end.
        let tail = obs.tail(3);
        assert_eq!(tail.lines().count(), 3);
        assert!(tail.contains("i=29"), "{tail}");
        assert!(!tail.contains("i=26"), "{tail}");
    }

    #[test]
    fn concurrent_writers_lose_nothing_but_the_overwritten() {
        let obs = ring_obs(256);
        let writers = 8usize;
        let per = 200u64;
        std::thread::scope(|s| {
            for w in 0..writers as u64 {
                let obs = Arc::clone(&obs);
                s.spawn(move || {
                    for i in 0..per {
                        log!(obs, Level::Info, "t", "e", w = w, i = i);
                    }
                });
            }
        });
        let events = obs.tail_events(0);
        assert_eq!(events.len(), 256, "ring full");
        // Sequence numbers are unique and form the final window of the
        // global counter: total writes - capacity .. total writes.
        let total = writers as u64 * per;
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 256, "no duplicate seq survived");
        assert!(seqs.iter().all(|&s| s < total));
        assert!(
            seqs.iter().filter(|&&s| s >= total - 256).count() >= 128,
            "retention is dominated by the newest window"
        );
    }

    #[test]
    fn file_sink_appends_rendered_lines() {
        let path = std::env::temp_dir().join(format!("sprofile-obs-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let obs = Obs::new(ObsConfig {
            level: Some(Level::Info),
            format: LogFormat::Json,
            sink: LogSink::File(path.clone()),
            ..ObsConfig::default()
        })
        .unwrap();
        log!(obs, Level::Info, "t", "hello", n = 1);
        log!(obs, Level::Debug, "t", "filtered");
        drop(obs);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains(r#""msg":"hello""#), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meter_tracks_rates_and_ewma_converges() {
        let meter = Meter::new();
        assert_eq!(meter.observe(0), MeterReading::default());
        std::thread::sleep(Duration::from_millis(40));
        let r = meter.observe(100);
        assert!(r.rate > 100.0, "~2500/s: {r:?}");
        assert!(r.ewma > 0.0 && r.ewma <= r.rate, "{r:?}");
        // A counter reset reads as zero rate, not negative.
        std::thread::sleep(Duration::from_millis(10));
        let r = meter.observe(0);
        assert_eq!(r.rate, 0.0);
    }
}
