//! Span-based request profiling: per-phase duration accumulators and a
//! flight recorder retaining the slowest recent spans.
//!
//! A [`Span`] rides one request through the server: each pipeline stage
//! stamps its elapsed microseconds into the span's [`Phase`] slot, so a
//! finished span decomposes the request's total latency into
//! `queue → parse → apply → wal_lock_wait → wal_append → fsync →
//! commit_wait → fanout → reply`. Phases that a request never enters
//! stay 0, which keeps every span's phase vector the same shape — the
//! per-phase histograms in `METRICS` all carry the same count.
//!
//! Finished spans feed a [`FlightRecorder`]: a bounded set of the N
//! slowest recent spans, readable by the `SPANS` verb and dumped to
//! stderr on panic next to the log ring (see [`register_panic_dump`]).
//! Recording is cheap on the fast path — one relaxed atomic load
//! rejects any span faster than the current slowest retained one, so
//! the mutex is only touched by genuinely slow requests.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// One pipeline stage of a request. The discriminant indexes the phase
/// vector of a [`Span`] and the per-phase histogram array the server
/// renders in `METRICS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Bytes sat in the read buffer / socket before parsing started
    /// (event-loop queueing and mid-frame network waits).
    Queue,
    /// Wire bytes → parsed request (text line or binary frame).
    Parse,
    /// Parsed request → backend answer computed / tuples buffered,
    /// excluding the durability sub-phases below.
    Apply,
    /// Waiting to acquire the WAL mutex.
    WalLockWait,
    /// Encoding + writing the WAL record (fsync excluded).
    WalAppend,
    /// fsync of the WAL segment.
    Fsync,
    /// Synchronous-commit wait for replica acks.
    CommitWait,
    /// Cluster scatter-gather / migration fan-out to other nodes.
    Fanout,
    /// Residual: reply rendering and everything not covered above.
    Reply,
}

impl Phase {
    /// Number of phases (the span vector length).
    pub const COUNT: usize = 9;

    /// All phases, in pipeline order (also the rendering order).
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Queue,
        Phase::Parse,
        Phase::Apply,
        Phase::WalLockWait,
        Phase::WalAppend,
        Phase::Fsync,
        Phase::CommitWait,
        Phase::Fanout,
        Phase::Reply,
    ];

    /// Lowercase name, used as the `phase` label value in `METRICS`
    /// and as the `<phase>_us` field key in slow-op logs and `SPANS`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Parse => "parse",
            Phase::Apply => "apply",
            Phase::WalLockWait => "wal_lock_wait",
            Phase::WalAppend => "wal_append",
            Phase::Fsync => "fsync",
            Phase::CommitWait => "commit_wait",
            Phase::Fanout => "fanout",
            Phase::Reply => "reply",
        }
    }
}

/// Per-request phase accumulator. Owned by one connection state
/// machine, so plain (non-atomic) adds; stages accumulate (a request
/// that re-enters a phase — a multi-tick `BATCH` body, say — sums its
/// visits).
#[derive(Clone, Debug)]
pub struct Span {
    label: &'static str,
    trace: u64,
    conn: u64,
    phases: [u64; Phase::COUNT],
}

impl Span {
    /// Starts an empty span for one request on connection `conn`.
    pub fn new(label: &'static str, trace: u64, conn: u64) -> Span {
        Span {
            label,
            trace,
            conn,
            phases: [0; Phase::COUNT],
        }
    }

    /// Adds `us` microseconds to `phase` (saturating).
    #[inline]
    pub fn add(&mut self, phase: Phase, us: u64) {
        let slot = &mut self.phases[phase as usize];
        *slot = slot.saturating_add(us);
    }

    /// The microseconds accumulated in `phase` so far.
    #[inline]
    pub fn get(&self, phase: Phase) -> u64 {
        self.phases[phase as usize]
    }

    /// Sum of every phase recorded so far.
    pub fn phase_total(&self) -> u64 {
        self.phases.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Re-labels the span (a verb classified after the span started).
    pub fn set_label(&mut self, label: &'static str) {
        self.label = label;
    }

    /// Tags the span with a trace id (0 = untraced).
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// Seals the span against the externally measured request total:
    /// whatever `total_us` the phase stamps did not account for becomes
    /// the [`Phase::Reply`] residual (reply rendering, scheduling
    /// slop). Returns the finished record.
    pub fn finish(mut self, total_us: u64) -> SpanRecord {
        let accounted = self.phase_total();
        self.add(Phase::Reply, total_us.saturating_sub(accounted));
        SpanRecord {
            label: self.label,
            trace: self.trace,
            conn: self.conn,
            total_us,
            phases: self.phases,
        }
    }
}

/// One finished span: a request's total latency and its per-phase
/// decomposition.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The request verb (`"batch"`, `"mode"`, …).
    pub label: &'static str,
    /// Trace id the request carried (0 = untraced).
    pub trace: u64,
    /// Connection id the request arrived on.
    pub conn: u64,
    /// Total service time in microseconds.
    pub total_us: u64,
    /// Microseconds per [`Phase`], indexed by discriminant. The phases
    /// sum to `total_us` (the reply residual absorbs the remainder).
    pub phases: [u64; Phase::COUNT],
}

impl SpanRecord {
    /// Renders the span as one logfmt-style line (no trailing
    /// newline): total, verb, trace/conn, then every nonzero phase as
    /// `<phase>_us=<n>`.
    pub fn render(&self, out: &mut String) {
        let _ = write!(out, "total_us={} verb={}", self.total_us, self.label);
        if self.trace != 0 {
            let _ = write!(out, " trace={}", self.trace);
        }
        let _ = write!(out, " conn={}", self.conn);
        for phase in Phase::ALL {
            let us = self.phases[phase as usize];
            if us != 0 {
                let _ = write!(out, " {}_us={}", phase.name(), us);
            }
        }
    }

    /// Only the nonzero `<phase>_us=<n>` fields, space-separated — the
    /// slow-op log event's `phases` field.
    pub fn render_phases(&self) -> String {
        let mut out = String::new();
        for phase in Phase::ALL {
            let us = self.phases[phase as usize];
            if us != 0 {
                if !out.is_empty() {
                    out.push(' ');
                }
                let _ = write!(out, "{}_us={}", phase.name(), us);
            }
        }
        out
    }
}

/// Bounded set of the N slowest recently finished spans — the
/// profiling analogue of the log ring. Shared (`Arc`) between every
/// event-loop worker; the `SPANS` verb snapshots it.
pub struct FlightRecorder {
    capacity: usize,
    /// Total of the fastest retained span once the recorder is full; a
    /// span below this floor cannot displace anything, so the hot path
    /// rejects it with one relaxed load and never touches the mutex.
    floor: AtomicU64,
    slots: Mutex<Vec<SpanRecord>>,
}

impl FlightRecorder {
    /// A recorder retaining the `capacity` slowest spans.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            floor: AtomicU64::new(0),
            slots: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    /// Offers one finished span. Kept only if the recorder is not yet
    /// full or the span is slower than the current fastest retained
    /// one.
    pub fn record(&self, rec: SpanRecord) {
        if rec.total_us < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slots.len() < self.capacity {
            slots.push(rec);
        } else {
            // Replace the fastest retained span (ties: the oldest).
            let (min_i, min) = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.total_us)
                .map(|(i, r)| (i, r.total_us))
                .expect("capacity >= 1");
            if rec.total_us <= min {
                return;
            }
            slots[min_i] = rec;
        }
        if slots.len() == self.capacity {
            let new_floor = slots
                .iter()
                .map(|r| r.total_us)
                .min()
                .expect("capacity >= 1");
            self.floor.store(new_floor, Ordering::Relaxed);
        }
    }

    /// The retained spans, slowest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        spans
    }

    /// Renders the `n` slowest retained spans, one line each (`n = 0`:
    /// all of them) — the `SPANS` verb payload.
    pub fn render(&self, n: usize) -> String {
        let mut spans = self.snapshot();
        if n > 0 && spans.len() > n {
            spans.truncate(n);
        }
        let mut out = String::new();
        for span in &spans {
            span.render(&mut out);
            out.push('\n');
        }
        out
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// A process can host many recorders (tests spawn many servers); the
/// panic hook walks the registered ones, mirroring the log-ring dump.
fn span_panic_registry() -> &'static Mutex<Vec<Weak<FlightRecorder>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `recorder` for a stderr dump if the process panics: the
/// retained slowest spans print next to the obs ring tail, so a crash
/// report carries the latency decomposition of the requests in flight
/// around it. Idempotent hook installation; dead recorders are pruned
/// on each registration and panic.
pub fn register_panic_dump(recorder: &Arc<FlightRecorder>) {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let Ok(mut registry) = span_panic_registry().lock() else {
                return;
            };
            registry.retain(|w| w.strong_count() > 0);
            for recorder in registry.iter().filter_map(Weak::upgrade) {
                let dump = recorder.render(0);
                if !dump.is_empty() {
                    use std::io::Write;
                    let mut err = std::io::stderr().lock();
                    let _ = writeln!(err, "--- span flight recorder (panic) ---");
                    let _ = err.write_all(dump.as_bytes());
                }
            }
        }));
    });
    if let Ok(mut registry) = span_panic_registry().lock() {
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(recorder));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
        assert_eq!(Phase::ALL[0], Phase::Queue);
        assert_eq!(Phase::ALL[Phase::COUNT - 1], Phase::Reply);
    }

    #[test]
    fn span_accumulates_and_finish_adds_the_residual() {
        let mut span = Span::new("batch", 42, 7);
        span.add(Phase::Parse, 10);
        span.add(Phase::Apply, 20);
        span.add(Phase::Apply, 5); // re-entry sums
        assert_eq!(span.get(Phase::Apply), 25);
        assert_eq!(span.phase_total(), 35);
        let rec = span.finish(100);
        assert_eq!(rec.total_us, 100);
        assert_eq!(rec.phases[Phase::Reply as usize], 65);
        assert_eq!(rec.phases.iter().sum::<u64>(), 100);
        assert_eq!(rec.trace, 42);
        assert_eq!(rec.conn, 7);
    }

    #[test]
    fn finish_saturates_when_phases_overshoot_the_total() {
        let mut span = Span::new("add", 0, 1);
        span.add(Phase::Apply, 500);
        let rec = span.finish(100);
        assert_eq!(rec.phases[Phase::Reply as usize], 0);
    }

    #[test]
    fn render_carries_total_verb_trace_and_nonzero_phases() {
        let mut span = Span::new("batch", 99, 3);
        span.add(Phase::Fsync, 800);
        let rec = span.finish(1000);
        let mut line = String::new();
        rec.render(&mut line);
        assert!(line.contains("total_us=1000"), "{line}");
        assert!(line.contains("verb=batch"), "{line}");
        assert!(line.contains("trace=99"), "{line}");
        assert!(line.contains("fsync_us=800"), "{line}");
        assert!(line.contains("reply_us=200"), "{line}");
        assert!(!line.contains("queue_us"), "zero phases omitted: {line}");
    }

    fn rec(total: u64, trace: u64) -> SpanRecord {
        Span::new("t", trace, 0).finish(total)
    }

    #[test]
    fn recorder_keeps_the_n_slowest_in_descending_order() {
        let fr = FlightRecorder::new(4);
        for total in [50, 10, 80, 30, 60, 5, 90, 70] {
            fr.record(rec(total, 0));
        }
        let totals: Vec<u64> = fr.snapshot().iter().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![90, 80, 70, 60]);
        assert_eq!(fr.len(), 4);
    }

    #[test]
    fn floor_fast_path_rejects_without_losing_slow_spans() {
        let fr = FlightRecorder::new(2);
        fr.record(rec(100, 0));
        fr.record(rec(200, 0));
        // Below the floor: rejected on the fast path.
        fr.record(rec(50, 0));
        assert_eq!(
            fr.snapshot().iter().map(|r| r.total_us).collect::<Vec<_>>(),
            vec![200, 100]
        );
        // Slower than the floor: displaces the fastest.
        fr.record(rec(150, 7));
        let spans = fr.snapshot();
        assert_eq!(
            spans.iter().map(|r| r.total_us).collect::<Vec<_>>(),
            vec![200, 150]
        );
        assert_eq!(spans[1].trace, 7, "trace id survives retention");
    }

    #[test]
    fn render_truncates_to_n_and_recovers_trace_ids() {
        let fr = FlightRecorder::new(8);
        for (total, trace) in [(100, 1), (300, 3), (200, 2)] {
            fr.record(rec(total, trace));
        }
        let all = fr.render(0);
        assert_eq!(all.lines().count(), 3);
        assert!(all.lines().next().unwrap().contains("trace=3"), "{all}");
        let top1 = fr.render(1);
        assert_eq!(top1.lines().count(), 1);
        assert!(top1.contains("total_us=300"), "{top1}");
    }

    #[test]
    fn concurrent_recording_retains_the_global_slowest() {
        let fr = Arc::new(FlightRecorder::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let fr = Arc::clone(&fr);
                s.spawn(move || {
                    for i in 0..250u64 {
                        fr.record(rec(t * 250 + i + 1, 0));
                    }
                });
            }
        });
        let totals: Vec<u64> = fr.snapshot().iter().map(|r| r.total_us).collect();
        assert_eq!(totals, (993..=1000).rev().collect::<Vec<_>>());
    }
}
