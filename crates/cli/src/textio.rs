//! The text event format: one event per line.
//!
//! ```text
//! a 42        # add object 42        (aliases: add, +)
//! r 42        # remove object 42    (aliases: remove, rm, -)
//! # comments and blank lines are ignored
//! ```

use std::io::{BufRead, Write};

use sprofile_streamgen::Event;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one event line; `Ok(None)` for blank/comment lines.
///
/// The grammar itself lives in [`sprofile_server::protocol`] — one
/// definition for the event-file format and the server's `BATCH`
/// bodies, so the two can never drift; this wrapper only adds the
/// blank/comment handling and the line number.
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<Event>, ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let tuple =
        sprofile_server::protocol::parse_tuple_line(trimmed).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
    Ok(Some(if tuple.is_add {
        Event::add(tuple.object)
    } else {
        Event::remove(tuple.object)
    }))
}

/// Reads every event from `reader`, in order.
pub fn read_events<R: BufRead>(reader: R) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: i + 1,
            message: format!("i/o error: {e}"),
        })?;
        if let Some(e) = parse_line(&line, i + 1)? {
            events.push(e);
        }
    }
    Ok(events)
}

/// Writes events in the canonical short form (`a 42` / `r 42`).
pub fn write_events<W: Write, I: IntoIterator<Item = Event>>(
    w: &mut W,
    events: I,
) -> std::io::Result<u64> {
    let mut n = 0;
    for e in events {
        if e.is_add {
            writeln!(w, "a {}", e.object)?;
        } else {
            writeln!(w, "r {}", e.object)?;
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_all_action_aliases() {
        for (text, want) in [
            ("a 1", Event::add(1)),
            ("add 2", Event::add(2)),
            ("+ 3", Event::add(3)),
            ("+4", Event::add(4)),
            ("r 5", Event::remove(5)),
            ("remove 6", Event::remove(6)),
            ("rm 7", Event::remove(7)),
            ("- 8", Event::remove(8)),
            ("-9", Event::remove(9)),
            ("  a   10  ", Event::add(10)),
        ] {
            assert_eq!(parse_line(text, 1).unwrap(), Some(want), "{text:?}");
        }
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        assert_eq!(parse_line("", 1).unwrap(), None);
        assert_eq!(parse_line("   ", 1).unwrap(), None);
        assert_eq!(parse_line("# hello", 1).unwrap(), None);
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = parse_line("frobnicate 3", 17).unwrap_err();
        assert_eq!(err.line, 17);
        assert!(err.message.contains("unknown action"));
        let err = parse_line("a banana", 2).unwrap_err();
        assert!(err.message.contains("invalid object id"));
        let err = parse_line("standalone", 3).unwrap_err();
        assert!(err.message.contains("expected"));
        assert!(err.to_string().starts_with("line 3:"));
    }

    #[test]
    fn roundtrip_through_text() {
        let events = vec![
            Event::add(0),
            Event::remove(3),
            Event::add(999),
            Event::remove(0),
        ];
        let mut buf = Vec::new();
        let n = write_events(&mut buf, events.clone()).unwrap();
        assert_eq!(n, 4);
        let back = read_events(Cursor::new(buf)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn read_events_reports_bad_line() {
        let text = "a 1\nr 2\noops\n";
        let err = read_events(Cursor::new(text)).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
