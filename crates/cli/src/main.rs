//! `sprofile` — command-line profiling of log-stream event files.
//!
//! ```text
//! sprofile generate --stream 1 --m 1000 --n 100000 --seed 7 > events.txt
//! sprofile profile events.txt --m 1000 --top 10 --histogram
//! sprofile ingest events.txt --m 1000 --chunk 8192 --top 10
//! sprofile watch events.txt --m 1000 --every 10000 --top 5
//! ```
//!
//! Event format: one event per line, `a <id>` / `r <id>` (see
//! [`textio`] for aliases). `profile` and `watch` read stdin when no file
//! is given.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;

mod commands;
mod textio;

use commands::{
    checkpoint_compact, generate, heavy_hitters, ingest, loadgen, logtail_show, map_show,
    metrics_show, migrate, profile_persist, promote, recover_report, serve, spans_show, stats_show,
    stats_watch, top_watch, verify_server, wal_dump, watch, GenerateOpts, HhOpts, PersistOpts,
    ProfileOpts, ServeOpts, StreamChoice,
};
use sprofile_server::{
    BackendKind, ClusterConfig, DurabilityConfig, Level, LoadgenConfig, LogFormat, SyncCommit,
    SyncPolicy, WireProto,
};

fn usage() -> &'static str {
    "usage:\n  \
     sprofile generate --stream <1|2|3|zipf:EXP> --m <M> --n <N> [--seed <S>]\n  \
     sprofile profile  [FILE] --m <M> [--top <K>] [--histogram] [--save <PATH>] [--load <PATH>]\n  \
     sprofile ingest   [FILE] --m <M> [--chunk <N>] [--top <K>] [--histogram]\n  \
     sprofile watch    [FILE] --m <M> [--every <N>] [--top <K>]\n  \
     sprofile hh       [FILE] --m <M> [--counters <K>] [--phi <F>]\n  \
     sprofile serve    --addr <HOST:PORT> --m <M> [--backend <sharded|pipeline>]\n                    \
     [--shards <P>] [--workers <N>] [--max-conns <N>] [--proto <text|bin>]\n                    \
     [--flush <B>] [--snapshot-dir <DIR>]\n                    \
     [--wal <DIR>] [--sync <always|interval|never>] [--sync-interval-ms <MS>]\n                    \
     [--segment-bytes <B>] [--checkpoint-every <TUPLES>]\n                    \
     [--max-retain-bytes <B>] [--replica-of <HOST:PORT>]\n                    \
     [--sync-commit <off|quorum|all>] [--sync-commit-timeout-ms <MS>]\n                    \
     [--auto-failover <PEER,PEER>] [--heartbeat-ms <MS>] [--failover-grace <N>]\n                    \
     [--cluster-slices <S> --cluster-node <I> --cluster-nodes <ADDR,ADDR,...>]\n                    \
     [--log-level <off|error|warn|info|debug|trace>] [--log-format <logfmt|json>]\n                    \
     [--log-file <PATH>] [--slow-ms <MS>] [--metrics-addr <HOST:PORT>]\n  \
     sprofile promote  --addr <HOST:PORT>   (flip a replica writable)\n  \
     sprofile migrate  --addr <HOST:PORT> --slice <S> --target <NODE> [--trace <ID>]\n                    \
     (live rebalance: hand a hash slice to another cluster node)\n  \
     sprofile map      --addr <HOST:PORT>   (print a node's partition map)\n  \
     sprofile stats    --addr <HOST:PORT> [--watch] [--every-ms <MS>] [--count <N>]\n  \
     sprofile logtail  --addr <HOST:PORT> [--n <N>]   (dump the server's log ring)\n  \
     sprofile metrics  --addr <HOST:PORT>   (print the Prometheus exposition)\n  \
     sprofile spans    --addr <HOST:PORT> [--n <N>]   (slowest recent requests,\n                    \
     per-phase timings; n=0 dumps the whole flight recorder)\n  \
     sprofile top      --addr <HOST:PORT> [--every-ms <MS>] [--count <N>]\n                    \
     (live per-verb/per-phase view from METRICS interval deltas)\n  \
     sprofile loadgen  --addr <HOST:PORT> --m <M> [--threads <T>] [--n <N>]\n                    \
     [--batch <B>] [--seed <S>] [--proto <text|bin>] [--shutdown]\n  \
     sprofile verify   --addr <HOST:PORT> --m <M> [--threads <T>] [--n <N>]\n                    \
     [--batch <B>] [--seed <S>] [--proto <text|bin>]\n                    \
     (loadgen's client-side oracle check)\n  \
     sprofile recover  --wal <DIR> --m <M> [--top <K>]\n  \
     sprofile wal-dump --wal <DIR> [--limit <N>]\n  \
     sprofile checkpoint --wal <DIR> --m <M>\n\n\
     Event format: one per line, 'a <id>' to add, 'r <id>' to remove\n\
     ('add'/'+' and 'remove'/'rm'/'-' also work); '#' starts a comment.\n\
     FILE defaults to stdin. `serve` runs until a client sends SHUTDOWN\n\
     (e.g. `sprofile loadgen --shutdown` or `printf 'SHUTDOWN\\n' | nc`);\n\
     with --wal it recovers its state from the WAL directory first.\n\
     With --replica-of it follows that primary read-only (writes get\n\
     'ERR readonly') until `sprofile promote` flips it writable.\n\
     --proto bin makes clients upgrade to the length-prefixed binary\n\
     protocol (BIN) and pipeline BATCH frames; serve --proto bin starts\n\
     connections in binary mode (--pool remains an alias for --workers).\n\
     --sync-commit makes a primary hold each OK until quorum/all attached\n\
     replicas acknowledged the write (degrades to async after the\n\
     timeout); --auto-failover lists the peer replicas a replica holds\n\
     elections with when the primary stops heartbeating.\n\
     The --cluster-* flags (all three together) make `serve` one node of\n\
     a hash-partitioned cluster: it owns the slices `x % S` its partition\n\
     map assigns it, refuses writes for foreign slices with 'ERR moved',\n\
     and answers global queries over its slices only (cluster clients\n\
     scatter-gather exact answers); cluster nodes default --flush to 1 so\n\
     rebalance hand-offs lose no acknowledged write.\n\
     Observability: `serve` logs structured lines to stderr (--log-file\n\
     redirects, --log-level off silences) and always keeps the newest\n\
     events in an in-memory ring (`sprofile logtail`); --slow-ms logs any\n\
     request served slower than the threshold; --metrics-addr exposes\n\
     Prometheus text on plain-HTTP GET /metrics (same payload as\n\
     `sprofile metrics`); `migrate --trace <ID>` tags the rebalance so\n\
     its events carry trace=<ID> in every involved node's logtail.\n\
     Profiling: every request is timed per phase (queue/parse/apply/\n\
     wal_lock_wait/wal_append/fsync/commit_wait/fanout/reply); `sprofile\n\
     spans` dumps the slowest recent requests with that breakdown, and\n\
     `sprofile top` renders a live per-verb/per-phase view."
}

/// Tiny flag parser: collects `--key value` pairs plus positional args.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                // Boolean flags take no value; detect by peeking.
                let takes_value = !matches!(key, "histogram" | "help" | "shutdown" | "watch");
                if takes_value && i + 1 < raw.len() {
                    flags.push((key.to_string(), Some(raw[i + 1].clone())));
                    i += 2;
                } else {
                    flags.push((key.to_string(), None));
                    i += 1;
                }
            } else {
                positional.push(raw[i].clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Like [`Args::get_parsed`], but rejects zero — for flags where a
    /// degenerate value would panic (`--m 0` on `watch`), divide by zero
    /// (`--every 0`), or loop forever (`--chunk 0` never fills a batch).
    fn get_parsed_positive<T>(&self, key: &str, default: T) -> Result<T, String>
    where
        T: std::str::FromStr + Default + PartialEq,
    {
        let v = self.get_parsed(key, default)?;
        if v == T::default() {
            return Err(format!("--{key} must be positive (0 is degenerate)"));
        }
        Ok(v)
    }
}

fn parse_proto(args: &Args) -> Result<WireProto, String> {
    let s = args.get("proto").unwrap_or("text");
    WireProto::parse(s).map_err(|e| format!("--proto: {e}"))
}

fn open_input(path: Option<&str>) -> io::Result<Box<dyn BufRead>> {
    match path {
        Some(p) => Ok(Box::new(BufReader::new(File::open(p)?))),
        None => Ok(Box::new(BufReader::new(io::stdin()))),
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return Err(usage().to_string());
    };
    let args = Args::parse(&raw[1..]);
    if args.has("help") {
        println!("{}", usage());
        return Ok(());
    }
    match cmd.as_str() {
        "generate" => {
            let stream = args.get("stream").unwrap_or("1");
            let stream = StreamChoice::parse(stream)
                .ok_or_else(|| format!("unknown stream '{stream}' (1, 2, 3, or zipf:EXP)"))?;
            let opts = GenerateOpts {
                stream,
                m: args.get_parsed_positive("m", 1_000_000u32)?,
                n: args.get_parsed("n", 1_000_000u64)?,
                seed: args.get_parsed("seed", 20190612u64)?,
            };
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            generate(&opts, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "profile" => {
            let persist = PersistOpts {
                load: args.get("load").map(str::to_string),
                save: args.get("save").map(str::to_string),
            };
            if persist.load.is_some() && args.get("m").is_some() {
                return Err(
                    "--m conflicts with --load (the universe size comes from the snapshot)".into(),
                );
            }
            let opts = ProfileOpts {
                m: args.get_parsed_positive("m", 1_000_000u32)?,
                top: args.get_parsed("top", 10u32)?,
                histogram: args.has("histogram"),
            };
            let input = open_input(args.positional.first().map(String::as_str))
                .map_err(|e| e.to_string())?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            profile_persist(&opts, &persist, input, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "ingest" => {
            let opts = ProfileOpts {
                m: args.get_parsed_positive("m", 1_000_000u32)?,
                top: args.get_parsed("top", 10u32)?,
                histogram: args.has("histogram"),
            };
            let chunk = args.get_parsed_positive("chunk", 8_192usize)?;
            let input = open_input(args.positional.first().map(String::as_str))
                .map_err(|e| e.to_string())?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            ingest(&opts, chunk, input, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "watch" => {
            let m = args.get_parsed_positive("m", 1_000_000u32)?;
            let every = args.get_parsed_positive("every", 100_000u64)?;
            let top = args.get_parsed("top", 5u32)?;
            let input = open_input(args.positional.first().map(String::as_str))
                .map_err(|e| e.to_string())?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            watch(m, every, top, input, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "serve" => {
            let shards = args.get_parsed_positive("shards", 8usize)?;
            let backend = args.get("backend").unwrap_or("sharded");
            let backend = BackendKind::parse(backend, shards)
                .ok_or_else(|| format!("unknown backend '{backend}' (sharded or pipeline)"))?;
            let wal = match args.get("wal") {
                None => {
                    for key in [
                        "sync",
                        "sync-interval-ms",
                        "segment-bytes",
                        "checkpoint-every",
                        "max-retain-bytes",
                    ] {
                        if args.has(key) {
                            return Err(format!("--{key} requires --wal <DIR>"));
                        }
                    }
                    None
                }
                Some(dir) => {
                    let sync = args.get("sync").unwrap_or("interval");
                    let interval_ms = args.get_parsed_positive("sync-interval-ms", 50u64)?;
                    let sync = SyncPolicy::parse(sync, interval_ms).ok_or_else(|| {
                        format!("unknown --sync '{sync}' (always, interval, never)")
                    })?;
                    Some(DurabilityConfig {
                        sync,
                        segment_bytes: args.get_parsed_positive("segment-bytes", 8u64 << 20)?,
                        // 0 is meaningful here: it disables background
                        // checkpointing (the shutdown one still runs).
                        checkpoint_every: args.get_parsed("checkpoint-every", 1u64 << 16)?,
                        // Budget for segments retained only for lagging
                        // replicas (they re-bootstrap once it is spent).
                        max_retain_bytes: args.get_parsed_positive("max-retain-bytes", u64::MAX)?,
                        ..DurabilityConfig::new(dir)
                    })
                }
            };
            let replica_of = args.get("replica-of").map(str::to_string);
            if replica_of.is_none() {
                for key in ["auto-failover", "heartbeat-ms", "failover-grace"] {
                    if args.has(key) {
                        return Err(format!("--{key} requires --replica-of <HOST:PORT>"));
                    }
                }
            }
            let sync_commit = args.get("sync-commit").unwrap_or("off");
            let sync_commit = SyncCommit::parse(sync_commit).ok_or_else(|| {
                format!("unknown --sync-commit '{sync_commit}' (off, quorum, all)")
            })?;
            if sync_commit.is_on() && wal.is_none() {
                return Err("--sync-commit requires --wal <DIR> (acks gate on the log)".into());
            }
            let failover_peers = args.get("auto-failover").map(|peers| {
                peers
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            });
            let cluster_keys = ["cluster-slices", "cluster-node", "cluster-nodes"];
            let cluster = if cluster_keys.iter().any(|k| args.has(k)) {
                if !cluster_keys.iter().all(|k| args.has(k)) {
                    return Err(
                        "--cluster-slices, --cluster-node, and --cluster-nodes go together".into(),
                    );
                }
                let nodes: Vec<String> = args
                    .get("cluster-nodes")
                    .unwrap_or("")
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
                Some(ClusterConfig {
                    slices: args.get_parsed_positive("cluster-slices", 16u32)?,
                    node: args.get_parsed("cluster-node", 0u32)?,
                    nodes,
                })
            } else {
                None
            };
            let log_level = match args.get("log-level") {
                None => Some(Level::Info),
                Some(s) => Level::parse(s).ok_or_else(|| {
                    format!("unknown --log-level '{s}' (off, error, warn, info, debug, trace)")
                })?,
            };
            let log_format = {
                let s = args.get("log-format").unwrap_or("logfmt");
                LogFormat::parse(s)
                    .ok_or_else(|| format!("unknown --log-format '{s}' (logfmt, json)"))?
            };
            let slow_ms = if args.has("slow-ms") {
                Some(args.get_parsed_positive("slow-ms", 100u64)?)
            } else {
                None
            };
            // Cluster nodes default to per-write flushes: `MIGRATE`'s
            // no-acked-write-lost hand-off relies on them.
            let default_flush = if cluster.is_some() { 1usize } else { 256 };
            let opts = ServeOpts {
                addr: args.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
                m: args.get_parsed_positive("m", 1_048_576u32)?,
                backend,
                // --pool (the old accept-pool size) remains an alias
                // for the event-loop worker count.
                workers: args
                    .get_parsed_positive("workers", args.get_parsed_positive("pool", 4usize)?)?,
                max_conns: args.get_parsed_positive("max-conns", 1024usize)?,
                proto: parse_proto(&args)?,
                flush: args.get_parsed_positive("flush", default_flush)?,
                snapshot_dir: args.get("snapshot-dir").unwrap_or(".").to_string(),
                wal,
                replica_of,
                sync_commit,
                sync_commit_timeout_ms: args
                    .get_parsed_positive("sync-commit-timeout-ms", 1_000u64)?,
                failover_peers,
                heartbeat_ms: args.get_parsed_positive("heartbeat-ms", 500u64)?,
                failover_grace: args.get_parsed_positive("failover-grace", 4u32)?,
                cluster,
                log_level,
                log_format,
                log_file: args.get("log-file").map(str::to_string),
                slow_ms,
                metrics_addr: args.get("metrics-addr").map(str::to_string),
            };
            let stdout = io::stdout();
            let mut out = stdout.lock();
            serve(&opts, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "promote" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            promote(addr, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "migrate" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let slice = args
                .get("slice")
                .ok_or("migrate needs --slice <S>")?
                .parse::<u32>()
                .map_err(|_| "invalid value for --slice".to_string())?;
            let target = args
                .get("target")
                .ok_or("migrate needs --target <NODE>")?
                .parse::<u32>()
                .map_err(|_| "invalid value for --target".to_string())?;
            let trace = args.get_parsed("trace", 0u64)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            migrate(addr, slice, target, trace, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "map" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            map_show(addr, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "stats" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            if args.has("watch") {
                let every_ms = args.get_parsed_positive("every-ms", 1_000u64)?;
                let count = if args.has("count") {
                    Some(args.get_parsed_positive("count", 10u64)?)
                } else {
                    None
                };
                stats_watch(addr, every_ms, count, &mut out).map_err(|e| e.to_string())?;
            } else {
                stats_show(addr, &mut out).map_err(|e| e.to_string())?;
            }
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "logtail" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let n = args.get_parsed_positive("n", 100usize)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            logtail_show(addr, n, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "metrics" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            metrics_show(addr, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "spans" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            // 0 (the default) dumps the whole flight recorder.
            let n = args.get_parsed("n", 0usize)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            spans_show(addr, n, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "top" => {
            let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
            let every_ms = args.get_parsed_positive("every-ms", 1_000u64)?;
            let count = if args.has("count") {
                Some(args.get_parsed_positive("count", 10u64)?)
            } else {
                None
            };
            let clear = io::IsTerminal::is_terminal(&io::stdout());
            let stdout = io::stdout();
            let mut out = stdout.lock();
            top_watch(addr, every_ms, count, clear, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "loadgen" => {
            let cfg = LoadgenConfig {
                addr: args.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
                threads: args.get_parsed_positive("threads", 4usize)?,
                events_per_thread: args.get_parsed_positive("n", 25_000usize)?,
                batch: args.get_parsed_positive("batch", 512usize)?,
                m: args.get_parsed_positive("m", 1_048_576u32)?,
                seed: args.get_parsed("seed", 20190612u64)?,
                proto: parse_proto(&args)?,
            };
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            loadgen(&cfg, args.has("shutdown"), &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "verify" => {
            let cfg = LoadgenConfig {
                addr: args.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
                threads: args.get_parsed_positive("threads", 4usize)?,
                events_per_thread: args.get_parsed_positive("n", 25_000usize)?,
                batch: args.get_parsed_positive("batch", 512usize)?,
                m: args.get_parsed_positive("m", 1_048_576u32)?,
                seed: args.get_parsed("seed", 20190612u64)?,
                proto: parse_proto(&args)?,
            };
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            let result = verify_server(&cfg, &mut out);
            out.flush().map_err(|e| e.to_string())?;
            result.map_err(|e| e.to_string())
        }
        "recover" => {
            let dir = args
                .get("wal")
                .ok_or("recover needs --wal <DIR>")?
                .to_string();
            let m = args.get_parsed_positive("m", 1_048_576u32)?;
            let top = args.get_parsed("top", 10u32)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            recover_report(std::path::Path::new(&dir), m, top, &mut out)
                .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "wal-dump" => {
            let dir = args
                .get("wal")
                .ok_or("wal-dump needs --wal <DIR>")?
                .to_string();
            let limit = args.get_parsed_positive("limit", 1_000usize)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            wal_dump(std::path::Path::new(&dir), limit, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "checkpoint" => {
            let dir = args
                .get("wal")
                .ok_or("checkpoint needs --wal <DIR>")?
                .to_string();
            let m = args.get_parsed_positive("m", 1_048_576u32)?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            checkpoint_compact(std::path::Path::new(&dir), m, &mut out)
                .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        "hh" => {
            let opts = HhOpts {
                m: args.get_parsed_positive("m", 1_000_000u32)?,
                counters: args.get_parsed_positive("counters", 100usize)?,
                phi: args.get_parsed("phi", 0.01f64)?,
            };
            if !(0.0..1.0).contains(&opts.phi) || opts.phi <= 0.0 {
                return Err("--phi must lie in (0, 1)".into());
            }
            let input = open_input(args.positional.first().map(String::as_str))
                .map_err(|e| e.to_string())?;
            let stdout = io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            heavy_hitters(&opts, input, &mut out).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["file.txt", "--m", "100", "--histogram", "--top", "5"]);
        assert_eq!(a.positional, vec!["file.txt"]);
        assert_eq!(a.get("m"), Some("100"));
        assert_eq!(a.get("top"), Some("5"));
        assert!(a.has("histogram"));
        assert!(!a.has("seed"));
    }

    #[test]
    fn last_flag_wins() {
        let a = args(&["--m", "1", "--m", "2"]);
        assert_eq!(a.get("m"), Some("2"));
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let a = args(&["--m", "64"]);
        assert_eq!(a.get_parsed("m", 0u32).unwrap(), 64);
        assert_eq!(a.get_parsed("n", 7u64).unwrap(), 7);
        let a = args(&["--m", "xyz"]);
        assert!(a.get_parsed("m", 0u32).is_err());
    }

    #[test]
    fn degenerate_zero_flags_are_rejected_with_a_clear_message() {
        // `--m 0` used to reach `watch`'s `expect("m > 0")` and panic;
        // `--every 0`/`--chunk 0` used to be per-command ad-hoc checks.
        for key in [
            "m",
            "chunk",
            "every",
            "pool",
            "workers",
            "max-conns",
            "flush",
            "threads",
            "batch",
        ] {
            let a = args(&[&format!("--{key}"), "0"]);
            let err = a.get_parsed_positive(key, 1u64).unwrap_err();
            assert!(err.contains(&format!("--{key}")), "{err}");
            assert!(err.contains("positive"), "{err}");
        }
    }

    #[test]
    fn positive_flags_accept_nonzero_and_defaults() {
        let a = args(&["--m", "8"]);
        assert_eq!(a.get_parsed_positive("m", 1u32).unwrap(), 8);
        // Absent flag falls back to the (positive) default.
        assert_eq!(a.get_parsed_positive("chunk", 512usize).unwrap(), 512);
        // Garbage still reports a parse error, not a zero error.
        let a = args(&["--m", "-3"]);
        let err = a.get_parsed_positive("m", 1u32).unwrap_err();
        assert!(err.contains("invalid value"), "{err}");
    }

    #[test]
    fn shutdown_is_a_boolean_flag() {
        let a = args(&["--shutdown", "--addr", "127.0.0.1:7979"]);
        assert!(a.has("shutdown"));
        assert_eq!(a.get("addr"), Some("127.0.0.1:7979"));
    }
}
