//! The `generate`, `profile`, `watch`, `serve`, and `loadgen`
//! subcommands, written against generic readers/writers so tests drive
//! them with in-memory buffers (the server ones bind ephemeral ports).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sprofile::{SProfile, SnapshotError, Tuple};
use sprofile_persist::PersistError;
use sprofile_server::{
    loadgen::thread_tuples, BackendKind, Client, ClusterConfig, DurabilityConfig, FailoverConfig,
    Level, LoadgenConfig, LogFormat, LogSink, ObsConfig, Server, ServerConfig, SyncCommit,
    WireProto,
};
use sprofile_streamgen::{Event, StreamConfig};

use crate::textio::{read_events, write_events, ParseError};

/// Options for `generate`.
#[derive(Clone, Debug)]
pub struct GenerateOpts {
    /// Which paper stream (1–3) or Zipf exponent.
    pub stream: StreamChoice,
    /// Universe size.
    pub m: u32,
    /// Number of events.
    pub n: u64,
    /// RNG seed.
    pub seed: u64,
}

/// The stream presets the CLI exposes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamChoice {
    /// Paper Stream1 (uniform/uniform).
    Stream1,
    /// Paper Stream2 (normals).
    Stream2,
    /// Paper Stream3 (normal/lognormal).
    Stream3,
    /// Zipf-skewed adds with the given exponent.
    Zipf(f64),
}

impl StreamChoice {
    /// Parses `1`/`2`/`3`/`zipf:EXP`.
    pub fn parse(s: &str) -> Option<StreamChoice> {
        match s {
            "1" | "stream1" => Some(StreamChoice::Stream1),
            "2" | "stream2" => Some(StreamChoice::Stream2),
            "3" | "stream3" => Some(StreamChoice::Stream3),
            other => {
                let exp = other.strip_prefix("zipf:")?;
                let exp: f64 = exp.parse().ok()?;
                if exp > 0.0 && exp != 1.0 {
                    Some(StreamChoice::Zipf(exp))
                } else {
                    None
                }
            }
        }
    }

    fn config(self, m: u32, seed: u64) -> StreamConfig {
        match self {
            StreamChoice::Stream1 => StreamConfig::stream1(m, seed),
            StreamChoice::Stream2 => StreamConfig::stream2(m, seed),
            StreamChoice::Stream3 => StreamConfig::stream3(m, seed),
            StreamChoice::Zipf(exp) => StreamConfig::zipf(m, exp, seed),
        }
    }
}

/// `generate`: write `n` synthetic events as text.
pub fn generate<W: Write>(opts: &GenerateOpts, out: &mut W) -> std::io::Result<u64> {
    let cfg = opts.stream.config(opts.m, opts.seed);
    write_events(out, cfg.generator().take(opts.n as usize))
}

/// Options for `profile`.
#[derive(Clone, Debug)]
pub struct ProfileOpts {
    /// Universe size; events with ids `>= m` are an error.
    pub m: u32,
    /// How many top entries to print.
    pub top: u32,
    /// Whether to print the histogram.
    pub histogram: bool,
}

/// Errors from the `profile`/`watch` commands.
#[derive(Debug)]
pub enum CommandError {
    /// Event text failed to parse.
    Parse(ParseError),
    /// An event referenced an id outside `0..m`.
    OutOfRange {
        /// The event's object id.
        object: u32,
        /// The configured universe size.
        m: u32,
    },
    /// Writing the report failed.
    Io(std::io::Error),
    /// Snapshot (de)serialisation failed.
    Snapshot(SnapshotError),
    /// The write-ahead log could not be read or written.
    Persist(PersistError),
    /// A server/client operation failed.
    Server(String),
    /// A verification found disagreements (the CLI exits non-zero).
    VerifyFailed(u64),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Parse(e) => write!(f, "{e}"),
            CommandError::OutOfRange { object, m } => {
                write!(f, "object id {object} out of range (m = {m}; raise --m)")
            }
            CommandError::Io(e) => write!(f, "i/o error: {e}"),
            CommandError::Snapshot(e) => write!(f, "{e}"),
            CommandError::Persist(e) => write!(f, "{e}"),
            CommandError::Server(msg) => write!(f, "{msg}"),
            CommandError::VerifyFailed(n) => write!(f, "verification failed: {n} mismatch(es)"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<ParseError> for CommandError {
    fn from(e: ParseError) -> Self {
        CommandError::Parse(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<SnapshotError> for CommandError {
    fn from(e: SnapshotError) -> Self {
        CommandError::Snapshot(e)
    }
}

impl From<PersistError> for CommandError {
    fn from(e: PersistError) -> Self {
        CommandError::Persist(e)
    }
}

fn apply_checked(p: &mut SProfile, e: &Event) -> Result<(), CommandError> {
    if e.object >= p.num_objects() {
        return Err(CommandError::OutOfRange {
            object: e.object,
            m: p.num_objects(),
        });
    }
    e.apply_to(p);
    Ok(())
}

/// Snapshot persistence flags for `profile`.
#[derive(Clone, Debug, Default)]
pub struct PersistOpts {
    /// Seed the profile from this snapshot instead of a fresh universe
    /// (the universe size then comes from the snapshot, not `--m`).
    pub load: Option<String>,
    /// After applying the input events, write a snapshot here.
    pub save: Option<String>,
}

/// `profile`: consume an event file and print a statistics report.
/// Equivalent to [`profile_persist`] without persistence (the binary
/// always goes through the persisting variant; tests use this directly).
#[cfg_attr(not(test), allow(dead_code))]
pub fn profile<R: BufRead, W: Write>(
    opts: &ProfileOpts,
    input: R,
    out: &mut W,
) -> Result<(), CommandError> {
    profile_persist(opts, &PersistOpts::default(), input, out)
}

/// `profile` with snapshot persistence: `--load` restores the starting
/// state through [`SProfile::read_snapshot`] (the same core code path
/// the TCP server's `SNAPSHOT` command writes), events are applied on
/// top, and `--save` persists the result.
pub fn profile_persist<R: BufRead, W: Write>(
    opts: &ProfileOpts,
    persist: &PersistOpts,
    input: R,
    out: &mut W,
) -> Result<(), CommandError> {
    let events = read_events(input)?;
    let mut p = match &persist.load {
        Some(path) => {
            let file = std::fs::File::open(Path::new(path))?;
            SProfile::read_snapshot(&mut BufReader::new(file))?
        }
        None => SProfile::new(opts.m),
    };
    for e in &events {
        apply_checked(&mut p, e)?;
    }
    report(opts, &p, events.len() as u64, out)?;
    if let Some(path) = &persist.save {
        let file = std::fs::File::create(Path::new(path))?;
        let mut w = BufWriter::new(file);
        p.write_snapshot(&mut w)?;
        w.flush()?;
        writeln!(
            out,
            "snapshot:          {} objects -> {path}",
            p.num_objects()
        )?;
    }
    Ok(())
}

/// `ingest`: like `profile`, but reads the input in chunks and applies
/// each chunk through the batched ingestion fast path
/// ([`SProfile::apply_batch`]) — the CLI shape of a firehose consumer.
/// Lines are parsed and validated as they stream in; large chunks hit
/// the counting-sort bulk-rebuild path instead of per-tuple updates.
pub fn ingest<R: BufRead, W: Write>(
    opts: &ProfileOpts,
    chunk_size: usize,
    input: R,
    out: &mut W,
) -> Result<(), CommandError> {
    debug_assert!(chunk_size > 0, "caller validates --chunk");
    let mut p = SProfile::new(opts.m);
    let mut buffer: Vec<Tuple> = Vec::with_capacity(chunk_size);
    let mut total = 0u64;
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(CommandError::Io)?;
        let Some(e) = crate::textio::parse_line(&line, i + 1)? else {
            continue;
        };
        if e.object >= opts.m {
            return Err(CommandError::OutOfRange {
                object: e.object,
                m: opts.m,
            });
        }
        buffer.push(Tuple {
            object: e.object,
            is_add: e.is_add,
        });
        if buffer.len() >= chunk_size {
            total += p.apply_batch(&buffer);
            buffer.clear();
        }
    }
    total += p.apply_batch(&buffer);
    report(opts, &p, total, out)
}

/// The shared statistics report of `profile` and `ingest`.
fn report<W: Write>(
    opts: &ProfileOpts,
    p: &SProfile,
    events: u64,
    out: &mut W,
) -> Result<(), CommandError> {
    writeln!(out, "events:            {events}")?;
    writeln!(out, "net length:        {}", p.len())?;
    writeln!(out, "distinct active:   {}", p.distinct_active())?;
    writeln!(out, "distinct freqs:    {}", p.num_blocks())?;
    if let Some(mode) = p.mode() {
        writeln!(
            out,
            "mode:              object {} at {} ({} tied)",
            mode.object, mode.frequency, mode.count
        )?;
    }
    if let Some(least) = p.least() {
        writeln!(
            out,
            "least:             object {} at {} ({} tied)",
            least.object, least.frequency, least.count
        )?;
    }
    if let Some(median) = p.median() {
        writeln!(out, "median frequency:  {median}")?;
    }
    if let Some(s) = p.summary() {
        writeln!(out, "mean/std:          {:.3} / {:.3}", s.mean, s.std_dev())?;
        writeln!(out, "entropy (nats):    {:.4}", s.entropy)?;
        writeln!(out, "gini:              {:.4}", s.gini)?;
    }
    if opts.top > 0 {
        writeln!(out, "top {}:", opts.top)?;
        for (rank, (obj, f)) in p.top_k(opts.top).into_iter().enumerate() {
            writeln!(out, "  {:>3}. object {:>10}  freq {}", rank + 1, obj, f)?;
        }
    }
    if opts.histogram {
        writeln!(out, "histogram (freq count):")?;
        for b in p.histogram() {
            writeln!(out, "  {:>12} {}", b.frequency, b.count)?;
        }
    }
    Ok(())
}

/// Options for `hh` (heavy hitters: exact vs Space-Saving).
#[derive(Clone, Debug)]
pub struct HhOpts {
    /// Universe size; events with ids `>= m` are an error.
    pub m: u32,
    /// Space-Saving counter budget.
    pub counters: usize,
    /// Heavy-hitter threshold as a fraction of the add count.
    pub phi: f64,
}

/// `hh`: run the exact profile and a Space-Saving sketch side by side on
/// the *add* events of the input, then report the φ-heavy hitters of
/// both with the sketch's error bars. Removes are tallied but skipped —
/// the point of the report is showing what the o(m)-space sketch can and
/// cannot see (removes are in the "cannot" column by construction).
pub fn heavy_hitters<R: BufRead, W: Write>(
    opts: &HhOpts,
    input: R,
    out: &mut W,
) -> Result<(), CommandError> {
    use sprofile_sketches::SpaceSaving;

    let events = read_events(input)?;
    let mut exact = SProfile::new(opts.m);
    let mut sketch = SpaceSaving::new(opts.counters.max(1));
    let mut adds = 0u64;
    let mut removes_skipped = 0u64;
    for e in &events {
        if e.object >= opts.m {
            return Err(CommandError::OutOfRange {
                object: e.object,
                m: opts.m,
            });
        }
        if e.is_add {
            exact.add(e.object);
            sketch.observe(e.object);
            adds += 1;
        } else {
            removes_skipped += 1;
        }
    }
    let threshold = (opts.phi * adds as f64) as i64;
    writeln!(out, "adds:              {adds}")?;
    if removes_skipped > 0 {
        writeln!(
            out,
            "removes skipped:   {removes_skipped} (insert-only sketches cannot process them)"
        )?;
    }
    writeln!(
        out,
        "phi = {} -> threshold {threshold} occurrences",
        opts.phi
    )?;
    writeln!(out, "exact phi-heavy hitters (S-Profile, O(m) space):")?;
    let mut exact_hitters = 0u32;
    for (obj, f) in exact.iter_descending() {
        if f <= threshold {
            break;
        }
        writeln!(out, "  object {obj:>10}  freq {f}")?;
        exact_hitters += 1;
    }
    if exact_hitters == 0 {
        writeln!(out, "  (none)")?;
    }
    writeln!(
        out,
        "sketch candidates (Space-Saving, {} counters):",
        opts.counters.max(1)
    )?;
    let candidates = sketch.heavy_hitters(opts.phi.clamp(1e-9, 1.0 - 1e-9));
    for &(obj, count, err) in &candidates {
        let certain = count.saturating_sub(err) as i64 > threshold;
        writeln!(
            out,
            "  object {obj:>10}  count {count} (err <= {err}){}",
            if certain {
                "  [guaranteed]"
            } else {
                "  [possible]"
            }
        )?;
    }
    if candidates.is_empty() {
        writeln!(out, "  (none)")?;
    }
    Ok(())
}

/// Options for `serve`.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Listen address, e.g. `127.0.0.1:7979` (`:0` for ephemeral).
    pub addr: String,
    /// Universe size.
    pub m: u32,
    /// Engine behind the socket.
    pub backend: BackendKind,
    /// Event-loop worker threads (`--workers`; `--pool` is an alias).
    pub workers: usize,
    /// Concurrent-connection cap before shedding (`--max-conns`).
    pub max_conns: usize,
    /// Protocol new connections start in (`--proto text|bin`).
    pub proto: WireProto,
    /// Per-connection write-buffer flush threshold.
    pub flush: usize,
    /// Directory wire `SNAPSHOT` writes are confined to.
    pub snapshot_dir: String,
    /// Durability: `--wal DIR` (plus sync/segment/checkpoint knobs).
    pub wal: Option<DurabilityConfig>,
    /// Replica mode: follow this primary (`--replica-of HOST:PORT`),
    /// serving reads only until promoted.
    pub replica_of: Option<String>,
    /// Synchronous commit: acknowledge writes only after this many
    /// replicas confirmed them (`--sync-commit off|quorum|all`).
    pub sync_commit: SyncCommit,
    /// How long a synchronous commit waits before degrading to async
    /// (`--sync-commit-timeout-ms`).
    pub sync_commit_timeout_ms: u64,
    /// Automatic failover: the peer replicas to hold elections with
    /// (`--auto-failover PEER,PEER`). Replica mode only.
    pub failover_peers: Option<Vec<String>>,
    /// Primary liveness sampling cadence for the promoter
    /// (`--heartbeat-ms`).
    pub heartbeat_ms: u64,
    /// Consecutive silent heartbeat samples before the primary is
    /// suspected dead (`--failover-grace`).
    pub failover_grace: u32,
    /// Cluster membership: this node's hash-partition identity
    /// (`--cluster-slices`/`--cluster-node`/`--cluster-nodes`).
    pub cluster: Option<ClusterConfig>,
    /// Structured-log severity (`--log-level`); `None` turns emission
    /// off entirely (the ring and `LOGTAIL` then stay empty too).
    pub log_level: Option<Level>,
    /// Rendered log-line format (`--log-format logfmt|json`).
    pub log_format: LogFormat,
    /// Log lines go to this file instead of stderr (`--log-file`).
    pub log_file: Option<String>,
    /// Slow-op threshold (`--slow-ms`); `None` disables the check.
    pub slow_ms: Option<u64>,
    /// Plain-HTTP `GET /metrics` listener address (`--metrics-addr`).
    pub metrics_addr: Option<String>,
}

/// `serve`: run the TCP server until a client sends `SHUTDOWN`. The
/// listening line (with the resolved address) is flushed to `out` before
/// blocking, so callers scripting against `:0` can scrape the port.
pub fn serve<W: Write>(opts: &ServeOpts, out: &mut W) -> Result<(), CommandError> {
    let failover = opts.failover_peers.clone().map(|peers| {
        let mut f = FailoverConfig::new(peers);
        f.heartbeat = std::time::Duration::from_millis(opts.heartbeat_ms.max(1));
        f.grace = opts.failover_grace.max(1);
        f
    });
    let obs = ObsConfig {
        level: opts.log_level,
        format: opts.log_format,
        // The CLI default is stderr lines (an embedded server defaults
        // to ring-only); a crashing `serve` also dumps its ring there.
        sink: match &opts.log_file {
            Some(path) => LogSink::File(path.clone().into()),
            None => LogSink::Stderr,
        },
        dump_on_panic: true,
        ..ObsConfig::default()
    };
    let server = Server::start(
        ServerConfig {
            m: opts.m,
            backend: opts.backend,
            workers: opts.workers,
            max_conns: opts.max_conns,
            proto: opts.proto,
            flush_every: opts.flush,
            snapshot_dir: opts.snapshot_dir.clone().into(),
            wal: opts.wal.clone(),
            replica_of: opts.replica_of.clone(),
            sync_commit: opts.sync_commit,
            sync_commit_timeout: std::time::Duration::from_millis(opts.sync_commit_timeout_ms),
            failover,
            cluster: opts.cluster.clone(),
            obs,
            slow_ms: opts.slow_ms,
            metrics_addr: opts.metrics_addr.clone(),
        },
        opts.addr.as_str(),
    )?;
    let backend = match opts.backend {
        BackendKind::Sharded { shards } => format!("sharded({shards})"),
        BackendKind::Pipeline => "pipeline".to_string(),
    };
    let wal = match &opts.wal {
        Some(w) => format!(" wal={} sync={}", w.dir.display(), w.sync.name()),
        None => String::new(),
    };
    let role = match &opts.replica_of {
        Some(primary) => format!(" replica-of={primary} (readonly until PROMOTE)"),
        None => String::new(),
    };
    let sync = if opts.sync_commit.is_on() {
        format!(" sync-commit={}", opts.sync_commit.name())
    } else {
        String::new()
    };
    let elect = match &opts.failover_peers {
        Some(peers) => format!(" auto-failover={}", peers.join(",")),
        None => String::new(),
    };
    let cluster = match &opts.cluster {
        Some(c) => format!(
            " cluster=node {}/{} slices={}",
            c.node,
            c.nodes.len(),
            c.slices
        ),
        None => String::new(),
    };
    let log = match opts.log_level {
        Some(l) => format!(" log={}/{}", l.name(), opts.log_format.name()),
        None => " log=off".to_string(),
    };
    let metrics = match &opts.metrics_addr {
        Some(addr) => format!(" metrics=http://{addr}/metrics"),
        None => String::new(),
    };
    writeln!(
        out,
        "listening on {} backend={backend} m={} workers={} max-conns={} proto={} \
         flush={}{wal}{role}{sync}{elect}{cluster}{log}{metrics}",
        server.local_addr(),
        opts.m,
        opts.workers,
        opts.max_conns,
        opts.proto.name(),
        opts.flush
    )?;
    out.flush()?;
    let applied = server.wait();
    writeln!(out, "shutdown: {applied} tuples applied")?;
    Ok(())
}

/// `loadgen`: drive a running server with concurrent clients and report
/// throughput; with `shutdown`, send `SHUTDOWN` afterwards (the CI smoke
/// job uses that to stop the background `serve`).
pub fn loadgen<W: Write>(
    cfg: &LoadgenConfig,
    shutdown: bool,
    out: &mut W,
) -> Result<(), CommandError> {
    let report =
        sprofile_server::loadgen::run(cfg).map_err(|e| CommandError::Server(e.to_string()))?;
    writeln!(out, "threads:     {}", cfg.threads)?;
    writeln!(out, "proto:       {}", cfg.proto.name())?;
    writeln!(out, "tuples sent: {}", report.tuples_sent)?;
    writeln!(
        out,
        "frames:      {} batches (x{}) + {} singles",
        report.batches_sent, cfg.batch, report.singles_sent
    )?;
    writeln!(out, "elapsed:     {:.3} s", report.elapsed.as_secs_f64())?;
    writeln!(out, "throughput:  {:.0} tuples/s", report.tuples_per_sec())?;
    writeln!(
        out,
        "latency:     p50={}us p99={}us p999={}us max={}us ({} requests)",
        report.latency.p50_us,
        report.latency.p99_us,
        report.latency.p999_us,
        report.latency.max_us,
        report.latency.samples
    )?;
    writeln!(out, "server:      {}", report.final_stats)?;
    if shutdown {
        Client::connect_with(cfg.addr.as_str(), cfg.proto)
            .and_then(Client::shutdown_server)
            .map_err(|e| CommandError::Server(e.to_string()))?;
        writeln!(out, "sent SHUTDOWN")?;
    }
    Ok(())
}

/// `promote`: flip a running replica writable at its applied LSN — the
/// failover step after the primary dies (pair with monitoring
/// `repl_lag_lsn` in `STATS` if no acknowledged write may be lost).
pub fn promote<W: Write>(addr: &str, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let (lsn, epoch) = client
        .promote()
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    writeln!(
        out,
        "promoted at lsn {lsn} epoch {epoch}: {addr} now accepts writes"
    )?;
    Ok(())
}

/// `migrate`: hand a hash slice from the node at `addr` (which must own
/// it) to another cluster node — a live rebalance: the owner ships a
/// key-filtered checkpoint plus catch-up deltas, bumps the partition
/// map version, and stale-map clients redirect via `ERR moved`.
/// With `trace != 0` the connection is tagged first, so the hand-off's
/// events land in every involved node's ring under that id (recover
/// them with `sprofile logtail`).
pub fn migrate<W: Write>(
    addr: &str,
    slice: u32,
    target: u32,
    trace: u64,
    out: &mut W,
) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    if trace != 0 {
        client
            .trace(trace)
            .map_err(|e| CommandError::Server(e.to_string()))?;
    }
    let version = client
        .migrate(slice, target)
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    writeln!(
        out,
        "migrated slice {slice} to node {target}: partition map now version {version}"
    )?;
    Ok(())
}

/// `map`: print the partition map a cluster node is serving under.
pub fn map_show<W: Write>(addr: &str, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let map = client
        .map()
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    writeln!(out, "version: {}", map.version)?;
    writeln!(out, "slices:  {}", map.slices)?;
    for (i, addr) in map.nodes.iter().enumerate() {
        let owned: Vec<String> = map
            .owners
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == i)
            .map(|(s, _)| s.to_string())
            .collect();
        writeln!(out, "node {i}: {addr} owns [{}]", owned.join(", "))?;
    }
    Ok(())
}

/// `stats`: print a server's `STATS` line once.
pub fn stats_show<W: Write>(addr: &str, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let stats = client
        .stats()
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    writeln!(out, "{stats}")?;
    Ok(())
}

/// `stats --watch`: poll `STATS` every `every_ms` and print the *deltas*
/// of the numeric fields — a poor man's top for a live server. Stops
/// after `count` samples when given (the CLI default runs until the
/// server goes away or the user interrupts).
pub fn stats_watch<W: Write>(
    addr: &str,
    every_ms: u64,
    count: Option<u64>,
    out: &mut W,
) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let mut prev: Vec<(String, i64)> = Vec::new();
    let mut sample = 0u64;
    loop {
        let stats = client
            .stats()
            .map_err(|e| CommandError::Server(e.to_string()))?;
        let fields: Vec<(String, i64)> = stats
            .split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .filter_map(|(k, v)| v.parse::<i64>().ok().map(|n| (k.to_string(), n)))
            .collect();
        sample += 1;
        if prev.is_empty() {
            // First sample: the absolute line, as a baseline.
            writeln!(out, "[{sample}] {stats}")?;
        } else {
            let mut deltas = String::new();
            for (k, now) in &fields {
                let Some((_, was)) = prev.iter().find(|(pk, _)| pk == k) else {
                    continue;
                };
                if now != was {
                    deltas.push_str(&format!(" {k}{:+}", now - was));
                }
            }
            if deltas.is_empty() {
                writeln!(out, "[{sample}] (idle)")?;
            } else {
                writeln!(out, "[{sample}]{deltas}")?;
            }
        }
        out.flush()?;
        prev = fields;
        if count.is_some_and(|c| sample >= c) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(every_ms.max(1)));
    }
    client.quit().ok();
    Ok(())
}

/// `logtail`: print the last `n` events of a server's in-memory log
/// ring — post-incident forensics without any log file configured.
pub fn logtail_show<W: Write>(addr: &str, n: usize, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let tail = client
        .logtail(n)
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    write!(out, "{tail}")?;
    Ok(())
}

/// `metrics`: print a server's Prometheus text exposition (the same
/// payload `GET /metrics` serves when `--metrics-addr` is set).
pub fn metrics_show<W: Write>(addr: &str, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let payload = client
        .metrics()
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    write!(out, "{payload}")?;
    Ok(())
}

/// `spans`: dump a server's span flight recorder — the slowest recent
/// requests, one logfmt line each, with their per-phase timings.
pub fn spans_show<W: Write>(addr: &str, n: usize, out: &mut W) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let payload = client
        .spans(n)
        .map_err(|e| CommandError::Server(e.to_string()))?;
    client.quit().ok();
    write!(out, "{payload}")?;
    Ok(())
}

/// One scrape's worth of per-verb and per-phase histogram readings,
/// parsed out of the `METRICS` exposition for [`top_watch`]'s deltas.
#[derive(Clone, Debug, Default)]
struct TopSample {
    /// `(verb, count, sum_us)` per `sprofile_request_duration_us` series.
    verbs: Vec<(String, u64, u64)>,
    /// `(phase, sum_us)` per `sprofile_phase_duration_us` series.
    phases: Vec<(String, u64)>,
}

/// Parses one `name{key="label"} value` exposition line.
fn prom_labelled(line: &str, name: &str, key: &str) -> Option<(String, u64)> {
    let rest = line.strip_prefix(name)?.strip_prefix('{')?;
    let (labels, value) = rest.split_once("} ")?;
    let label = labels
        .strip_prefix(key)?
        .strip_prefix("=\"")?
        .strip_suffix('"')?;
    Some((label.to_string(), value.trim().parse().ok()?))
}

impl TopSample {
    /// Scrapes the per-verb counts/sums and per-phase sums out of one
    /// `METRICS` payload. Verbs and phases are discovered from the
    /// payload itself, so the view never goes stale against the server.
    fn parse(payload: &str) -> TopSample {
        let mut counts = Vec::new();
        let mut sums = Vec::new();
        let mut phases = Vec::new();
        for line in payload.lines() {
            if let Some(kv) = prom_labelled(line, "sprofile_request_duration_us_count", "verb") {
                counts.push(kv);
            } else if let Some(kv) = prom_labelled(line, "sprofile_request_duration_us_sum", "verb")
            {
                sums.push(kv);
            } else if let Some(kv) = prom_labelled(line, "sprofile_phase_duration_us_sum", "phase")
            {
                phases.push(kv);
            }
        }
        let verbs = counts
            .into_iter()
            .map(|(verb, count)| {
                let sum = sums.iter().find(|(v, _)| *v == verb).map_or(0, |&(_, s)| s);
                (verb, count, sum)
            })
            .collect();
        TopSample { verbs, phases }
    }
}

/// Renders one `top` frame: the interval's per-verb throughput and
/// mean latency, the phase breakdown of where that time went, and the
/// WAL percentile gauges from `STATS`.
fn render_top<W: Write>(
    out: &mut W,
    addr: &str,
    sample: u64,
    every_ms: u64,
    prev: &TopSample,
    cur: &TopSample,
    stats: &str,
) -> Result<(), CommandError> {
    writeln!(
        out,
        "sprofile top — {addr} — sample {sample} ({every_ms} ms interval)"
    )?;
    let secs = (every_ms.max(1) as f64) / 1000.0;
    writeln!(
        out,
        "  {:<10} {:>8} {:>10} {:>10}",
        "verb", "ops", "ops/s", "avg_us"
    )?;
    let mut any = false;
    for (verb, count, sum) in &cur.verbs {
        let (was_count, was_sum) = prev
            .verbs
            .iter()
            .find(|(v, _, _)| v == verb)
            .map_or((0, 0), |&(_, c, s)| (c, s));
        let ops = count.saturating_sub(was_count);
        if ops == 0 {
            continue;
        }
        any = true;
        let us = sum.saturating_sub(was_sum);
        writeln!(
            out,
            "  {:<10} {:>8} {:>10.0} {:>10.0}",
            verb,
            ops,
            ops as f64 / secs,
            us as f64 / ops as f64
        )?;
    }
    if !any {
        writeln!(out, "  (idle)")?;
    }
    // Phase breakdown: each phase's share of the interval's total
    // request time. The `flush` series is a composite of the WAL
    // phases and would double-count, so it is left out.
    let deltas: Vec<(&str, u64)> = cur
        .phases
        .iter()
        .filter(|(phase, _)| phase != "flush")
        .map(|(phase, sum)| {
            let was = prev
                .phases
                .iter()
                .find(|(p, _)| p == phase)
                .map_or(0, |&(_, s)| s);
            (phase.as_str(), sum.saturating_sub(was))
        })
        .collect();
    let total: u64 = deltas.iter().map(|&(_, d)| d).sum();
    if total > 0 {
        writeln!(out, "  {:<14} {:>10} {:>7}", "phase", "time_us", "share")?;
        for (phase, d) in deltas {
            if d == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<14} {:>10} {:>6.1}%",
                phase,
                d,
                100.0 * d as f64 / total as f64
            )?;
        }
    }
    let wal: Vec<&str> = stats
        .split_whitespace()
        .filter(|kv| {
            kv.starts_with("wal_fsync_")
                || kv.starts_with("wal_lock_wait_")
                || kv.starts_with("wal_group_batch_")
        })
        .collect();
    if !wal.is_empty() {
        writeln!(out, "  wal: {}", wal.join(" "))?;
    }
    Ok(())
}

/// `top`: a live per-verb / per-phase view of a running server, built
/// from interval deltas of the `METRICS` histograms (plus the WAL
/// percentile gauges out of `STATS`). `clear` redraws in place with
/// ANSI clears (set when stdout is a terminal); otherwise frames
/// append, which keeps the output pipeable.
pub fn top_watch<W: Write>(
    addr: &str,
    every_ms: u64,
    count: Option<u64>,
    clear: bool,
    out: &mut W,
) -> Result<(), CommandError> {
    let mut client = Client::connect(addr).map_err(|e| CommandError::Server(e.to_string()))?;
    let mut prev: Option<TopSample> = None;
    let mut sample = 0u64;
    loop {
        let metrics = client
            .metrics()
            .map_err(|e| CommandError::Server(e.to_string()))?;
        let stats = client
            .stats()
            .map_err(|e| CommandError::Server(e.to_string()))?;
        let cur = TopSample::parse(&metrics);
        sample += 1;
        if clear {
            write!(out, "\x1b[2J\x1b[H")?;
        }
        match &prev {
            Some(prev) => render_top(out, addr, sample, every_ms, prev, &cur, &stats)?,
            None => writeln!(out, "sprofile top — {addr} — collecting baseline…")?,
        }
        out.flush()?;
        prev = Some(cur);
        if count.is_some_and(|c| sample >= c) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(every_ms.max(1)));
    }
    client.quit().ok();
    Ok(())
}

/// `recover`: rebuild the profile a WAL directory persists (newest valid
/// checkpoint + record tail) and print the same statistics report as
/// `profile` — the offline answer to "what state would a `serve --wal`
/// restart come back with?".
pub fn recover_report<W: Write>(
    dir: &Path,
    m: u32,
    top: u32,
    out: &mut W,
) -> Result<(), CommandError> {
    let r = sprofile_persist::recover(dir, m)?;
    writeln!(out, "wal dir:           {}", dir.display())?;
    match r.checkpoint_lsn {
        Some(lsn) => writeln!(out, "checkpoint:        lsn {lsn}")?,
        None => writeln!(out, "checkpoint:        none (full replay)")?,
    }
    writeln!(
        out,
        "replayed:          {} record(s), {} tuple(s)",
        r.replayed_records, r.replayed_tuples
    )?;
    writeln!(out, "next lsn:          {}", r.next_lsn)?;
    if r.torn_tail {
        writeln!(
            out,
            "torn tail:         yes (crash signature; tail record dropped)"
        )?;
    }
    report(
        &ProfileOpts {
            m,
            top,
            histogram: false,
        },
        &r.profile,
        r.replayed_tuples,
        out,
    )
}

/// `wal-dump`: print every record still present in the WAL directory's
/// segments, one line per record (`lsn`, the replication epoch stamped
/// into the record, tuple count, then the tuples in event-file
/// notation, elided past eight).
pub fn wal_dump<W: Write>(dir: &Path, limit: usize, out: &mut W) -> Result<(), CommandError> {
    let (records, torn) = sprofile_persist::dump_records(dir)?;
    let total = records.len();
    for r in records.into_iter().take(limit) {
        write!(
            out,
            "{:>8}  e{:<4} {:>6} tuple(s) ",
            r.lsn,
            r.epoch,
            r.tuples.len()
        )?;
        for t in r.tuples.iter().take(8) {
            write!(out, " {}{}", if t.is_add { 'a' } else { 'r' }, t.object)?;
        }
        if r.tuples.len() > 8 {
            write!(out, " …")?;
        }
        writeln!(out)?;
    }
    if total > limit {
        writeln!(out, "… {} more record(s) (raise --limit)", total - limit)?;
    }
    writeln!(
        out,
        "{total} record(s){}",
        if torn { ", torn tail" } else { "" }
    )?;
    Ok(())
}

/// `checkpoint`: offline compaction — recover the WAL directory, write a
/// fresh checkpoint at its head, and prune the segments it covers. The
/// next `serve --wal`/`recover` then skips the replay.
pub fn checkpoint_compact<W: Write>(dir: &Path, m: u32, out: &mut W) -> Result<(), CommandError> {
    let r = sprofile_persist::recover(dir, m)?;
    let mut wal = sprofile_persist::Wal::open(
        sprofile_persist::WalOptions {
            dir: dir.to_path_buf(),
            ..Default::default()
        },
        r.next_lsn,
    )?;
    let lsn = wal.checkpoint(&r.profile.to_snapshot_bytes())?;
    writeln!(
        out,
        "checkpoint written at lsn {lsn} ({} replayed record(s) folded in)",
        r.replayed_records
    )?;
    Ok(())
}

/// `verify`: the client-side oracle check. Recomputes the deterministic
/// tuple streams `loadgen` sends for `cfg` (same seed/threads/n/m),
/// folds them into an offline [`SProfile`] oracle, then asks the live
/// server for the frequency of every touched object plus the mode — the
/// crash-recovery smoke test's way of proving a restarted `serve --wal`
/// really recovered the acknowledged stream.
pub fn verify_server<W: Write>(cfg: &LoadgenConfig, out: &mut W) -> Result<(), CommandError> {
    let mut oracle = SProfile::new(cfg.m);
    for t in 0..cfg.threads.max(1) {
        for tuple in thread_tuples(cfg, t) {
            oracle.apply(tuple);
        }
    }
    let touched: Vec<u32> = (0..cfg.m).filter(|&x| oracle.frequency(x) != 0).collect();
    // Also sample objects the oracle holds at zero (never touched, or
    // adds/removes cancelled): a recovery bug that *invents* tuples
    // would otherwise slip past a touched-only sweep.
    let step = (cfg.m as usize / 1024).max(1);
    let zeros: Vec<u32> = (0..cfg.m)
        .step_by(step)
        .filter(|&x| oracle.frequency(x) == 0)
        .take(1024)
        .collect();
    let mut client = Client::connect_with(cfg.addr.as_str(), cfg.proto)
        .map_err(|e| CommandError::Server(e.to_string()))?;
    let mut mismatches = 0u64;
    for &x in touched.iter().chain(&zeros) {
        let got = client
            .freq(x)
            .map_err(|e| CommandError::Server(e.to_string()))?;
        let want = oracle.frequency(x);
        if got != want {
            mismatches += 1;
            if mismatches <= 10 {
                writeln!(out, "MISMATCH object {x}: server {got}, oracle {want}")?;
            }
        }
    }
    let mode = client
        .mode()
        .map_err(|e| CommandError::Server(e.to_string()))?;
    let oracle_mode = oracle.mode().map(|e| e.frequency);
    if mode.map(|(_, f)| f) != oracle_mode {
        mismatches += 1;
        writeln!(
            out,
            "MISMATCH mode: server {mode:?}, oracle frequency {oracle_mode:?}"
        )?;
    }
    client.quit().ok();
    if mismatches > 0 {
        return Err(CommandError::VerifyFailed(mismatches));
    }
    writeln!(
        out,
        "verify: OK ({} nonzero + {} zero object(s) checked against the oracle)",
        touched.len(),
        zeros.len()
    )?;
    Ok(())
}

/// `watch`: stream events, printing the mode + top entries every `every`
/// events (the paper's "at any time" query pattern).
pub fn watch<R: BufRead, W: Write>(
    m: u32,
    every: u64,
    top: u32,
    input: R,
    out: &mut W,
) -> Result<u64, CommandError> {
    let mut p = SProfile::new(m);
    let mut count = 0u64;
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(CommandError::Io)?;
        let Some(e) = crate::textio::parse_line(&line, i + 1)? else {
            continue;
        };
        apply_checked(&mut p, &e)?;
        count += 1;
        if count.is_multiple_of(every) {
            let mode = p.mode().expect("m > 0");
            write!(
                out,
                "[{count}] mode={} f={} top:",
                mode.object, mode.frequency
            )?;
            for (obj, f) in p.top_k(top) {
                write!(out, " {obj}:{f}")?;
            }
            writeln!(out)?;
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn stream_choice_parsing() {
        assert_eq!(StreamChoice::parse("1"), Some(StreamChoice::Stream1));
        assert_eq!(StreamChoice::parse("stream2"), Some(StreamChoice::Stream2));
        assert_eq!(StreamChoice::parse("3"), Some(StreamChoice::Stream3));
        assert_eq!(
            StreamChoice::parse("zipf:1.5"),
            Some(StreamChoice::Zipf(1.5))
        );
        assert_eq!(StreamChoice::parse("zipf:1.0"), None);
        assert_eq!(StreamChoice::parse("zipf:x"), None);
        assert_eq!(StreamChoice::parse("4"), None);
    }

    #[test]
    fn top_sample_parses_verb_and_phase_series() {
        let payload = "\
sprofile_request_duration_us_bucket{verb=\"add\",le=\"16\"} 1\n\
sprofile_request_duration_us_sum{verb=\"add\"} 900\n\
sprofile_request_duration_us_count{verb=\"add\"} 10\n\
sprofile_request_duration_us_sum{verb=\"mode\"} 40\n\
sprofile_request_duration_us_count{verb=\"mode\"} 2\n\
sprofile_phase_duration_us_sum{phase=\"parse\"} 300\n\
sprofile_phase_duration_us_count{phase=\"parse\"} 12\n\
sprofile_phase_duration_us_sum{phase=\"fsync\"} 600\n\
sprofile_phase_duration_us_sum{phase=\"flush\"} 600\n\
sprofile_uptime_seconds 3\n";
        let s = TopSample::parse(payload);
        assert_eq!(s.verbs.len(), 2, "{:?}", s.verbs);
        assert!(s.verbs.contains(&("add".into(), 10, 900)));
        assert!(s.verbs.contains(&("mode".into(), 2, 40)));
        assert_eq!(s.phases.len(), 3, "{:?}", s.phases);
        assert!(s.phases.contains(&("fsync".into(), 600)));
    }

    #[test]
    fn render_top_shows_interval_deltas_and_phase_shares() {
        let prev = TopSample {
            verbs: vec![("add".into(), 10, 900), ("mode".into(), 2, 40)],
            phases: vec![
                ("parse".into(), 300),
                ("fsync".into(), 600),
                ("flush".into(), 600),
            ],
        };
        let cur = TopSample {
            verbs: vec![("add".into(), 30, 2900), ("mode".into(), 2, 40)],
            phases: vec![
                ("parse".into(), 800),
                ("fsync".into(), 2100),
                ("flush".into(), 2100),
            ],
        };
        let mut out = Vec::new();
        render_top(
            &mut out,
            "addr:1",
            2,
            1000,
            &prev,
            &cur,
            "m=8 wal_fsync_p99_us=120 wal_group_batch_avg=3",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // 20 adds in 1 s at (2900-900)/20 = 100 µs mean.
        assert!(
            text.contains("add              20         20        100"),
            "{text}"
        );
        // An idle verb renders no row.
        assert!(!text.contains("mode"), "{text}");
        // Phase deltas: parse 500 of 2000 total = 25%, fsync 75%; the
        // flush composite is excluded from the share table.
        assert!(text.contains("parse"), "{text}");
        assert!(text.contains("25.0%"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(!text.contains("flush"), "{text}");
        // The WAL gauges ride along from STATS.
        assert!(
            text.contains("wal: wal_fsync_p99_us=120 wal_group_batch_avg=3"),
            "{text}"
        );
    }

    #[test]
    fn generate_then_profile_roundtrip() {
        let opts = GenerateOpts {
            stream: StreamChoice::Stream1,
            m: 50,
            n: 1000,
            seed: 9,
        };
        let mut text = Vec::new();
        let n = generate(&opts, &mut text).unwrap();
        assert_eq!(n, 1000);

        let mut report = Vec::new();
        profile(
            &ProfileOpts {
                m: 50,
                top: 3,
                histogram: true,
            },
            Cursor::new(&text),
            &mut report,
        )
        .unwrap();
        let report = String::from_utf8(report).unwrap();
        assert!(report.contains("events:            1000"));
        assert!(report.contains("mode:"));
        assert!(report.contains("top 3:"));
        assert!(report.contains("histogram"));
    }

    #[test]
    fn generate_is_deterministic() {
        let opts = GenerateOpts {
            stream: StreamChoice::Zipf(1.3),
            m: 20,
            n: 100,
            seed: 42,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        generate(&opts, &mut a).unwrap();
        generate(&opts, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ingest_matches_profile_report_for_any_chunk_size() {
        let opts = GenerateOpts {
            stream: StreamChoice::Stream2,
            m: 40,
            n: 2_000,
            seed: 31,
        };
        let mut text = Vec::new();
        generate(&opts, &mut text).unwrap();
        let popts = ProfileOpts {
            m: 40,
            top: 5,
            histogram: true,
        };
        let mut reference = Vec::new();
        profile(&popts, Cursor::new(&text), &mut reference).unwrap();
        for chunk in [1usize, 7, 256, 100_000] {
            let mut got = Vec::new();
            ingest(&popts, chunk, Cursor::new(&text), &mut got).unwrap();
            assert_eq!(
                String::from_utf8(got).unwrap(),
                String::from_utf8(reference.clone()).unwrap(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn ingest_rejects_out_of_range_before_applying() {
        let err = ingest(
            &ProfileOpts {
                m: 3,
                top: 0,
                histogram: false,
            },
            64,
            Cursor::new("a 0\na 9\n"),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn profile_rejects_out_of_range_ids() {
        let text = "a 5\n";
        let err = profile(
            &ProfileOpts {
                m: 3,
                top: 0,
                histogram: false,
            },
            Cursor::new(text),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn profile_reports_known_statistics() {
        let text = "a 1\na 1\na 1\na 2\nr 0\n";
        let mut report = Vec::new();
        profile(
            &ProfileOpts {
                m: 4,
                top: 2,
                histogram: false,
            },
            Cursor::new(text),
            &mut report,
        )
        .unwrap();
        let report = String::from_utf8(report).unwrap();
        assert!(report.contains("net length:        3"));
        assert!(report.contains("mode:              object 1 at 3"));
        assert!(report.contains("least:             object 0 at -1"));
    }

    #[test]
    fn watch_emits_periodic_lines() {
        let mut text = String::new();
        for i in 0..10 {
            text.push_str(&format!("a {}\n", i % 3));
        }
        let mut out = Vec::new();
        let n = watch(3, 4, 2, Cursor::new(text), &mut out).unwrap();
        assert_eq!(n, 10);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "reports at events 4 and 8");
        assert!(lines[0].starts_with("[4] mode="));
        assert!(lines[1].starts_with("[8] mode="));
    }

    #[test]
    fn watch_propagates_parse_errors() {
        let err = watch(3, 1, 1, Cursor::new("a 0\njunk\n"), &mut Vec::new()).unwrap_err();
        assert!(matches!(err, CommandError::Parse(_)));
    }

    #[test]
    fn hh_reports_exact_and_sketch_sides() {
        // Object 1 takes 60 of 100 adds; phi = 0.5 picks exactly it.
        let mut text = String::new();
        for i in 0..100 {
            // The tail ids 3..10 never collide with the hitter (object 1).
            text.push_str(&format!("a {}\n", if i % 5 < 3 { 1 } else { 3 + i % 7 }));
        }
        text.push_str("r 1\n"); // one remove: must be skipped & reported
        let mut out = Vec::new();
        heavy_hitters(
            &HhOpts {
                m: 10,
                counters: 4,
                phi: 0.5,
            },
            Cursor::new(text),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("adds:              100"), "{out}");
        assert!(out.contains("removes skipped:   1"), "{out}");
        assert!(out.contains("object          1  freq 60"), "{out}");
        assert!(
            out.contains("[guaranteed]") || out.contains("[possible]"),
            "{out}"
        );
    }

    #[test]
    fn hh_with_no_hitters_prints_none() {
        let text = "a 0\na 1\na 2\na 3\n";
        let mut out = Vec::new();
        heavy_hitters(
            &HhOpts {
                m: 4,
                counters: 8,
                phi: 0.9,
            },
            Cursor::new(text),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.matches("(none)").count(), 2, "{out}");
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sprofile-cli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn profile_save_then_load_continues_identically() {
        let snap = temp_path("roundtrip.snap");
        let popts = ProfileOpts {
            m: 30,
            top: 3,
            histogram: false,
        };
        // Phase 1: profile half the stream, saving a snapshot.
        let mut out = Vec::new();
        profile_persist(
            &popts,
            &PersistOpts {
                load: None,
                save: Some(snap.to_str().unwrap().to_string()),
            },
            Cursor::new("a 1\na 1\na 2\nr 5\n"),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("snapshot:"), "{out}");
        // Phase 2: load it and apply the second half; the report must
        // equal profiling the whole stream at once.
        let mut loaded = Vec::new();
        profile_persist(
            &popts,
            &PersistOpts {
                load: Some(snap.to_str().unwrap().to_string()),
                save: None,
            },
            Cursor::new("a 1\na 7\n"),
            &mut loaded,
        )
        .unwrap();
        let loaded = String::from_utf8(loaded).unwrap();
        let mut whole = Vec::new();
        profile(
            &popts,
            Cursor::new("a 1\na 1\na 2\nr 5\na 1\na 7\n"),
            &mut whole,
        )
        .unwrap();
        let whole = String::from_utf8(whole).unwrap();
        // Event counts differ (2 vs 6); every profile statistic agrees.
        for (l, w) in loaded.lines().zip(whole.lines()).skip(1) {
            assert_eq!(l, w);
        }
        assert!(
            loaded.contains("mode:              object 1 at 3"),
            "{loaded}"
        );
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn profile_load_rejects_garbage_snapshots() {
        let path = temp_path("garbage.snap");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let err = profile_persist(
            &ProfileOpts {
                m: 10,
                top: 0,
                histogram: false,
            },
            &PersistOpts {
                load: Some(path.to_str().unwrap().to_string()),
                save: None,
            },
            Cursor::new(""),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loadgen_drives_a_live_server_and_shuts_it_down() {
        let server = Server::start(
            ServerConfig {
                m: 128,
                backend: BackendKind::Sharded { shards: 4 },
                workers: 4,
                flush_every: 64,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            threads: 2,
            events_per_thread: 1_000,
            batch: 100,
            m: 128,
            seed: 3,
            proto: WireProto::Text,
        };
        let mut out = Vec::new();
        loadgen(&cfg, true, &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("tuples sent: 2000"), "{out}");
        assert!(out.contains("applied=2000"), "{out}");
        assert!(out.contains("latency:"), "{out}");
        assert!(out.contains("sent SHUTDOWN"), "{out}");
        assert_eq!(server.wait(), 2_000);
    }

    #[test]
    fn loadgen_in_binary_mode_applies_the_same_stream() {
        let server = Server::start(
            ServerConfig {
                m: 128,
                backend: BackendKind::Sharded { shards: 4 },
                workers: 2,
                flush_every: 64,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            threads: 2,
            events_per_thread: 1_000,
            batch: 100,
            m: 128,
            seed: 3,
            proto: WireProto::Bin,
        };
        let mut out = Vec::new();
        loadgen(&cfg, true, &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("proto:       bin"), "{out}");
        assert!(out.contains("applied=2000"), "{out}");
        assert_eq!(server.wait(), 2_000);
    }

    #[test]
    fn serve_announces_and_stops_on_shutdown() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            m: 64,
            backend: BackendKind::Pipeline,
            workers: 2,
            max_conns: 64,
            proto: WireProto::Text,
            flush: 16,
            snapshot_dir: ".".into(),
            wal: None,
            replica_of: None,
            sync_commit: SyncCommit::Off,
            sync_commit_timeout_ms: 1_000,
            failover_peers: None,
            heartbeat_ms: 500,
            failover_grace: 4,
            cluster: None,
            // `serve` sinks log lines to stderr by default; keep the
            // test run quiet by turning emission off.
            log_level: None,
            log_format: LogFormat::Logfmt,
            log_file: None,
            slow_ms: None,
            metrics_addr: None,
        };
        let handle = {
            let mut out = buf.clone();
            std::thread::spawn(move || serve(&opts, &mut out))
        };
        // Scrape the resolved address off the listening line.
        let addr = loop {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..]
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let mut c = Client::connect(addr.as_str()).unwrap();
        c.add(1).unwrap();
        c.add(1).unwrap();
        assert_eq!(c.freq(1).unwrap(), 2);
        Client::connect(addr.as_str())
            .unwrap()
            .shutdown_server()
            .unwrap();
        drop(c);
        handle.join().unwrap().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("backend=pipeline m=64"), "{text}");
        assert!(text.contains("shutdown: 2 tuples applied"), "{text}");
    }

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sprofile-cli-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seed_wal(dir: &Path) {
        let mut wal = sprofile_persist::Wal::open(
            sprofile_persist::WalOptions {
                dir: dir.to_path_buf(),
                ..Default::default()
            },
            1,
        )
        .unwrap();
        wal.append(&[Tuple::add(2), Tuple::add(2), Tuple::add(2)])
            .unwrap();
        wal.append(&[Tuple::remove(5)]).unwrap();
        wal.sync().unwrap();
    }

    #[test]
    fn recover_reports_the_replayed_state() {
        let dir = temp_wal("recover");
        seed_wal(&dir);
        let mut out = Vec::new();
        recover_report(&dir, 10, 3, &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(
            out.contains("checkpoint:        none (full replay)"),
            "{out}"
        );
        assert!(
            out.contains("replayed:          2 record(s), 4 tuple(s)"),
            "{out}"
        );
        assert!(out.contains("next lsn:          3"), "{out}");
        assert!(out.contains("mode:              object 2 at 3"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_dump_lists_records_and_honours_the_limit() {
        let dir = temp_wal("dump");
        seed_wal(&dir);
        let mut out = Vec::new();
        wal_dump(&dir, 1000, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("a2 a2 a2"), "{text}");
        assert!(text.contains("r5"), "{text}");
        assert!(text.contains("e1"), "epoch stamp column: {text}");
        assert!(text.contains("2 record(s)"), "{text}");
        let mut out = Vec::new();
        wal_dump(&dir, 1, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("1 more record(s)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_then_recover_skips_replay() {
        let dir = temp_wal("compact");
        seed_wal(&dir);
        let mut out = Vec::new();
        checkpoint_compact(&dir, 10, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("checkpoint written at lsn 2"), "{text}");
        let mut out = Vec::new();
        recover_report(&dir, 10, 0, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("checkpoint:        lsn 2"), "{text}");
        assert!(text.contains("replayed:          0 record(s)"), "{text}");
        assert!(text.contains("mode:              object 2 at 3"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_after_loadgen_and_fails_on_a_different_seed() {
        let server = Server::start(
            ServerConfig {
                m: 256,
                backend: BackendKind::Sharded { shards: 4 },
                workers: 3,
                flush_every: 64,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            threads: 2,
            events_per_thread: 2_000,
            batch: 128,
            m: 256,
            seed: 41,
            proto: WireProto::Text,
        };
        sprofile_server::loadgen::run(&cfg).unwrap();
        let mut out = Vec::new();
        verify_server(&cfg, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("verify: OK"));
        // An oracle built from a different seed must disagree.
        let wrong = LoadgenConfig { seed: 42, ..cfg };
        let err = verify_server(&wrong, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, CommandError::VerifyFailed(_)), "{err}");
        Client::connect(wrong.addr.as_str())
            .unwrap()
            .shutdown_server()
            .unwrap();
        server.wait();
    }

    #[test]
    fn stats_logtail_and_metrics_commands_round_trip() {
        let server = Server::start(
            ServerConfig {
                m: 32,
                workers: 2,
                flush_every: 1,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut c = Client::connect(addr.as_str()).unwrap();
        c.add(3).unwrap();
        assert_eq!(c.freq(3).unwrap(), 1);

        let mut out = Vec::new();
        stats_show(&addr, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("applied=1"), "{text}");
        assert!(text.contains("uptime_s="), "{text}");

        // Two instant samples: the first is the absolute baseline, the
        // second reports the +1 connection the watcher itself opened
        // (stats_show's client has quit by now, so conns_active nets
        // out; accepted only ever grows).
        let mut out = Vec::new();
        stats_watch(&addr, 1, Some(2), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("[1] "), "{text}");
        assert!(lines[1].starts_with("[2]"), "{text}");

        let mut out = Vec::new();
        logtail_show(&addr, 64, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("target=server"), "{text}");

        let mut out = Vec::new();
        metrics_show(&addr, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("# TYPE sprofile_adds_total counter"),
            "{text}"
        );
        assert!(text.contains("sprofile_adds_total 1"), "{text}");

        c.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn promote_flips_a_replica_and_reports_the_lsn() {
        let base =
            std::env::temp_dir().join(format!("sprofile-cli-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let primary = Server::start(
            ServerConfig {
                m: 32,
                workers: 2,
                flush_every: 2,
                wal: Some(DurabilityConfig::new(base.join("primary"))),
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let replica = Server::start(
            ServerConfig {
                m: 32,
                workers: 2,
                wal: Some(DurabilityConfig::new(base.join("replica"))),
                replica_of: Some(primary.local_addr().to_string()),
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut pc = Client::connect(primary.local_addr()).unwrap();
        pc.add(7).unwrap();
        pc.freq(7).unwrap();
        // Wait for the replica to apply, then promote it via the CLI
        // path and check it reports the applied position.
        let mut rc = Client::connect(replica.local_addr()).unwrap();
        for _ in 0..500 {
            if rc.freq(7).unwrap() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(rc.freq(7).unwrap(), 1);
        let mut out = Vec::new();
        promote(&replica.local_addr().to_string(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("promoted at lsn 1 epoch 2"), "{text}");
        rc.add(7).unwrap();
        assert_eq!(rc.freq(7).unwrap(), 2);
        // On a non-replica the CLI surfaces the server's refusal.
        let err = promote(&primary.local_addr().to_string(), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("not a replica"), "{err}");
        pc.quit().unwrap();
        rc.quit().unwrap();
        primary.shutdown();
        replica.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn hh_rejects_out_of_range_ids() {
        let err = heavy_hitters(
            &HhOpts {
                m: 2,
                counters: 4,
                phi: 0.1,
            },
            Cursor::new("a 5\n"),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
