//! Universe-partitioned sharding: `p` independent S-Profiles behind
//! mutexes, global answers combined on demand.

use parking_lot::Mutex;
use sprofile::{SProfile, Tuple};

/// A multi-writer profile over `[0, m)`, sharded by `object % p`.
///
/// Shard `s` owns objects `{x | x % p == s}`, stored locally as
/// `x / p` — a bijection, so each shard is a dense sub-universe and the
/// core structure applies unchanged. All methods take `&self`; threads
/// may call them concurrently.
///
/// ```
/// use sprofile_concurrent::ShardedProfile;
///
/// let p = ShardedProfile::new(1000, 8);
/// p.add(42);
/// p.add(42);
/// p.remove(7);
/// assert_eq!(p.frequency(42), 2);
/// assert_eq!(p.mode().unwrap(), (42, 2));
/// ```
pub struct ShardedProfile {
    shards: Vec<Mutex<SProfile>>,
    m: u32,
}

impl ShardedProfile {
    /// Profile over a universe of `m` objects split across `shards`
    /// shards (clamped to at least 1, at most `m.max(1)`).
    pub fn new(m: u32, shards: usize) -> Self {
        let p = shards.clamp(1, m.max(1) as usize) as u32;
        let shards = (0..p)
            .map(|s| {
                // Number of ids in [0, m) congruent to s mod p.
                let local = (m - s).div_ceil(p);
                Mutex::new(SProfile::new(local))
            })
            .collect();
        Self { shards, m }
    }

    /// Profile pre-seeded with per-object frequencies (global-id order),
    /// split across `shards` shards — the inverse of
    /// [`Self::merged_frequencies`], and the hook crash recovery uses to
    /// rebuild a sharded backend from a restored
    /// [`SProfile`](sprofile::SProfile). O(m log m) overall (one
    /// [`SProfile::from_frequencies`] rebuild per shard).
    pub fn from_frequencies(freqs: &[i64], shards: usize) -> Self {
        let sp = Self::new(freqs.len() as u32, shards);
        sp.install_frequencies(freqs);
        sp
    }

    /// Replaces the *live* profile's state with `freqs` (global-id
    /// order) in place — the replica checkpoint-bootstrap hook. Each
    /// shard is rebuilt under its own lock, O(m log m) overall;
    /// concurrent readers see a mix of old and new state until the last
    /// shard swaps (same non-atomicity as any cross-shard write).
    ///
    /// # Panics
    /// If `freqs.len()` differs from the universe size.
    pub fn install_frequencies(&self, freqs: &[i64]) {
        assert_eq!(
            freqs.len() as u32,
            self.m,
            "frequency vector must cover the whole universe"
        );
        let p = self.shards.len() as u32;
        for (s, shard) in self.shards.iter().enumerate() {
            let local_m = shard.lock().num_objects();
            let local: Vec<i64> = (0..local_m)
                .map(|l| freqs[(l * p + s as u32) as usize])
                .collect();
            *shard.lock() = SProfile::from_frequencies(&local);
        }
    }

    /// Universe size `m`.
    pub fn num_objects(&self) -> u32 {
        self.m
    }

    /// Number of shards `p`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn locate(&self, x: u32) -> (usize, u32) {
        assert!(x < self.m, "object {x} outside universe [0, {})", self.m);
        let p = self.shards.len() as u32;
        ((x % p) as usize, x / p)
    }

    #[inline]
    fn global_id(&self, shard: usize, local: u32) -> u32 {
        local * self.shards.len() as u32 + shard as u32
    }

    /// Record one "add" for `x`; returns the new frequency. Locks only
    /// `x`'s shard.
    pub fn add(&self, x: u32) -> i64 {
        let (s, local) = self.locate(x);
        self.shards[s].lock().add(local)
    }

    /// Record one "remove" for `x`; returns the new frequency.
    pub fn remove(&self, x: u32) -> i64 {
        let (s, local) = self.locate(x);
        self.shards[s].lock().remove(local)
    }

    /// Record a whole batch of log-stream tuples (global ids); returns
    /// how many were applied.
    ///
    /// The batch is partitioned once into per-shard sub-batches, and each
    /// involved shard's lock is taken **exactly once** for one
    /// [`SProfile::apply_batch`] call — so producers pay one lock
    /// round-trip per shard instead of one per tuple, and large
    /// sub-batches additionally hit the counting-sort bulk-rebuild path.
    /// All ids are validated before any shard is touched; shards not
    /// named in the batch are never locked.
    ///
    /// Concurrency note: tuples of one `apply_batch` land atomically *per
    /// shard*, not globally — exactly like the equivalent per-op loop,
    /// concurrent readers may observe a shard-consistent interleaving.
    ///
    /// # Panics
    /// If any tuple's object id is `>= m`.
    ///
    /// # Example
    /// ```
    /// use sprofile::Tuple;
    /// use sprofile_concurrent::ShardedProfile;
    ///
    /// let p = ShardedProfile::new(1000, 8);
    /// p.apply_batch(&[Tuple::add(42), Tuple::add(42), Tuple::remove(7)]);
    /// assert_eq!(p.frequency(42), 2);
    /// assert_eq!(p.frequency(7), -1);
    /// ```
    pub fn apply_batch(&self, batch: &[Tuple]) -> u64 {
        let p = self.shards.len() as u32;
        let m = self.m;
        // Validate everything up front so a panic touches no shard,
        // whichever branch below applies the batch.
        for t in batch {
            assert!(
                t.object < m,
                "object {} outside universe [0, {m})",
                t.object
            );
        }
        if p == 1 {
            // Shard 0 owns every id and local ids equal global ids: skip
            // the partition entirely.
            if !batch.is_empty() {
                self.shards[0].lock().apply_batch(batch);
            }
            return batch.len() as u64;
        }
        if batch.len() < p as usize {
            // Fewer tuples than shards: the partition scaffolding costs
            // more than it saves — fall through to per-op updates.
            for t in batch {
                let shard = &self.shards[(t.object % p) as usize];
                if t.is_add {
                    shard.lock().add(t.object / p);
                } else {
                    shard.lock().remove(t.object / p);
                }
            }
            return batch.len() as u64;
        }
        // One partition pass into pre-sized per-shard sub-batches, no
        // per-tuple division when p is a power of two.
        let shift = if p.is_power_of_two() {
            p.trailing_zeros()
        } else {
            0
        };
        let split = |x: u32| -> (u32, u32) {
            if shift != 0 {
                (x & (p - 1), x >> shift)
            } else {
                (x % p, x / p)
            }
        };
        // Sized for a uniform spread plus 50% skew headroom; heavier skew
        // just grows the one hot sub-batch amortized.
        let cap = batch.len() / p as usize + batch.len() / (2 * p as usize) + 4;
        let mut parts: Vec<Vec<Tuple>> = (0..p).map(|_| Vec::with_capacity(cap)).collect();
        for t in batch {
            let (s, local) = split(t.object);
            parts[s as usize].push(Tuple {
                object: local,
                is_add: t.is_add,
            });
        }
        for (s, part) in parts.iter().enumerate() {
            if !part.is_empty() {
                self.shards[s].lock().apply_batch(part);
            }
        }
        batch.len() as u64
    }

    /// Current frequency of `x`.
    pub fn frequency(&self, x: u32) -> i64 {
        let (s, local) = self.locate(x);
        self.shards[s].lock().frequency(local)
    }

    /// Global mode `(object, frequency)`: the per-shard O(1) modes
    /// combined in O(p). Ties break to the smallest object id so the
    /// answer is deterministic. `None` for an empty universe.
    ///
    /// Shards are locked one at a time, so concurrent updates may land
    /// between shard reads; the answer is a consistent *per-shard*
    /// snapshot combination (use [`PipelineProfiler`] for global
    /// linearisability).
    ///
    /// [`PipelineProfiler`]: crate::PipelineProfiler
    pub fn mode(&self) -> Option<(u32, i64)> {
        self.fold_extreme(
            |p| {
                p.mode().map(|e| e.frequency).map(|f| {
                    let obj = p.mode_objects().iter().copied().min().expect("non-empty");
                    (obj, f)
                })
            },
            |best, cand| cand.1 > best.1 || (cand.1 == best.1 && cand.0 < best.0),
        )
    }

    /// Global least-frequent `(object, frequency)`; see [`Self::mode`]
    /// for consistency semantics.
    pub fn least(&self) -> Option<(u32, i64)> {
        self.fold_extreme(
            |p| {
                p.least().map(|e| e.frequency).map(|f| {
                    let obj = p.least_objects().iter().copied().min().expect("non-empty");
                    (obj, f)
                })
            },
            |best, cand| cand.1 < best.1 || (cand.1 == best.1 && cand.0 < best.0),
        )
    }

    fn fold_extreme(
        &self,
        pick: impl Fn(&SProfile) -> Option<(u32, i64)>,
        beats: impl Fn((u32, i64), (u32, i64)) -> bool,
    ) -> Option<(u32, i64)> {
        let mut best: Option<(u32, i64)> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock();
            if let Some((local, f)) = pick(&guard) {
                let cand = (self.global_id(s, local), f);
                best = match best {
                    Some(b) if !beats(b, cand) => Some(b),
                    _ => Some(cand),
                };
            }
        }
        best
    }

    /// The lower median frequency over all `m` objects — the same
    /// convention as [`SProfile::median`] (position `⌊(m−1)/2⌋` of the
    /// ascending sorted array). `None` iff `m == 0`.
    ///
    /// Per-shard medians do not combine, so this materialises the merged
    /// frequency vector and selects in O(m); it is a global read meant
    /// for occasional queries, not the hot path. Consistency semantics
    /// match [`Self::mode`] (per-shard snapshot combination).
    pub fn median(&self) -> Option<i64> {
        if self.m == 0 {
            return None;
        }
        let mut freqs = self.merged_frequencies();
        let mid = ((self.m - 1) / 2) as usize;
        let (_, median, _) = freqs.select_nth_unstable(mid);
        Some(*median)
    }

    /// Number of objects with frequency ≥ `threshold` (sum of per-shard
    /// O(log #blocks) counts).
    pub fn count_at_least(&self, threshold: i64) -> u32 {
        self.shards
            .iter()
            .map(|s| s.lock().count_at_least(threshold))
            .sum()
    }

    /// Net stream length (adds − removes) across all shards.
    pub fn len(&self) -> i64 {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Number of objects with a non-zero frequency, across all shards.
    pub fn distinct_active(&self) -> u32 {
        self.shards.iter().map(|s| s.lock().distinct_active()).sum()
    }

    /// True iff every object sits at frequency zero. Like
    /// [`SProfile::is_empty`] this is based on the non-zero-object count,
    /// *not* on the net length: `+x` followed by `−y` leaves two non-zero
    /// objects and a net length of 0 — and is not empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Global top-K `(object, frequency)`, most frequent first, equal
    /// frequencies ascending by object id — exactly the list
    /// [`SProfile::top_k`] returns for the same frequencies, shard count
    /// notwithstanding.
    ///
    /// Each shard is asked for its top-K **with ties over-fetched at the
    /// cut** ([`SProfile::top_k_with_ties`]): arbitrarily truncating
    /// per-shard lists at exactly `k` could drop a small-id object tied
    /// at a shard's boundary while a larger-id tied object from another
    /// shard survived, making the merged answer disagree with the
    /// single-profile answer. At most `2k − 1` entries per shard are
    /// gathered under staggered locks (each shard additionally pays a
    /// scan of its cut-straddling frequency class), then one sort.
    pub fn top_k(&self, k: u32) -> Vec<(u32, i64)> {
        let mut all: Vec<(u32, i64)> = Vec::with_capacity(self.shards.len() * k as usize);
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock();
            all.extend(
                guard
                    .top_k_with_ties(k)
                    .into_iter()
                    .map(|(local, f)| (self.global_id(s, local), f)),
            );
        }
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k as usize);
        all
    }

    /// Frequencies of all `m` objects in global-id order — the merge
    /// point for downstream single-threaded analysis.
    pub fn merged_frequencies(&self) -> Vec<i64> {
        let mut out = vec![0i64; self.m as usize];
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock();
            for local in 0..guard.num_objects() {
                out[self.global_id(s, local) as usize] = guard.frequency(local);
            }
        }
        out
    }

    /// Collapse into a single-threaded [`SProfile`] carrying the same
    /// frequencies (O(m log m) rebuild).
    pub fn snapshot(&self) -> SProfile {
        SProfile::from_frequencies(&self.merged_frequencies())
    }

    /// Serialized snapshot in the [`SProfile::write_snapshot`] format —
    /// the persistence hook the TCP server's `SNAPSHOT` command rides on.
    /// Collapses via [`Self::snapshot`] first, so restoring yields a
    /// single profile with the same frequencies.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot().to_snapshot_bytes()
    }
}

impl sprofile::FrequencyProfiler for ShardedProfile {
    fn num_objects(&self) -> u32 {
        self.m
    }

    fn add(&mut self, x: u32) {
        ShardedProfile::add(self, x);
    }

    fn remove(&mut self, x: u32) {
        ShardedProfile::remove(self, x);
    }

    fn apply_batch(&mut self, batch: &[Tuple]) -> u64 {
        ShardedProfile::apply_batch(self, batch)
    }

    fn frequency(&self, x: u32) -> i64 {
        ShardedProfile::frequency(self, x)
    }

    fn mode(&self) -> Option<(u32, i64)> {
        ShardedProfile::mode(self)
    }

    fn least(&self) -> Option<(u32, i64)> {
        ShardedProfile::least(self)
    }

    fn name(&self) -> &'static str {
        "sharded-s-profile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedProfile::new(4, 100).num_shards(), 4);
        assert_eq!(ShardedProfile::new(100, 0).num_shards(), 1);
        assert_eq!(ShardedProfile::new(0, 3).num_shards(), 1);
    }

    #[test]
    fn local_universe_sizes_partition_m() {
        for m in [1u32, 7, 16, 97] {
            for p in [1usize, 2, 3, 5, 8] {
                let sp = ShardedProfile::new(m, p);
                let total: u32 = sp.shards.iter().map(|s| s.lock().num_objects()).sum();
                assert_eq!(total, m, "m={m} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_object_panics() {
        ShardedProfile::new(10, 2).add(10);
    }

    #[test]
    fn matches_sequential_profile_on_a_single_thread() {
        let sharded = ShardedProfile::new(50, 7);
        let mut seq = SProfile::new(50);
        for i in 0..5000u32 {
            let x = (i * 13 + i / 3) % 50;
            if i % 4 == 0 {
                sharded.remove(x);
                seq.remove(x);
            } else {
                sharded.add(x);
                seq.add(x);
            }
        }
        for x in 0..50 {
            assert_eq!(sharded.frequency(x), seq.frequency(x), "object {x}");
        }
        assert_eq!(sharded.mode().unwrap().1, seq.mode().unwrap().frequency);
        assert_eq!(sharded.least().unwrap().1, seq.least().unwrap().frequency);
        assert_eq!(sharded.len(), seq.len());
        assert_eq!(sharded.count_at_least(10), seq.count_at_least(10));
    }

    #[test]
    fn concurrent_writers_settle_to_the_exact_counts() {
        let sp = Arc::new(ShardedProfile::new(64, 8));
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let sp = Arc::clone(&sp);
                thread::spawn(move || {
                    // Each thread adds every object `t + 1` times and
                    // removes object t once.
                    for round in 0..t + 1 {
                        for x in 0..64 {
                            sp.add(x);
                        }
                        let _ = round;
                    }
                    sp.remove(t);
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        // Total adds per object: 1+2+...+8 = 36; objects 0..8 got one
        // remove each.
        for x in 0..64u32 {
            let expect = if x < 8 { 35 } else { 36 };
            assert_eq!(sp.frequency(x), expect, "object {x}");
        }
        assert_eq!(
            sp.mode().unwrap(),
            (8, 36),
            "smallest untouched object wins ties"
        );
        assert_eq!(sp.least().unwrap(), (0, 35));
    }

    #[test]
    fn top_k_merges_across_shards() {
        let sp = ShardedProfile::new(20, 4);
        // Frequencies: object x gets x adds.
        for x in 0..20u32 {
            for _ in 0..x {
                sp.add(x);
            }
        }
        let top = sp.top_k(5);
        assert_eq!(top, vec![(19, 19), (18, 18), (17, 17), (16, 16), (15, 15)]);
    }

    #[test]
    fn apply_batch_matches_per_op_updates() {
        for shards in [1usize, 3, 8] {
            let batched = ShardedProfile::new(60, shards);
            let per_op = ShardedProfile::new(60, shards);
            let batch: Vec<Tuple> = (0..3000u32)
                .map(|i| {
                    let x = (i * 17 + i / 5) % 60;
                    if i % 3 == 0 {
                        Tuple::remove(x)
                    } else {
                        Tuple::add(x)
                    }
                })
                .collect();
            assert_eq!(batched.apply_batch(&batch), 3000);
            for t in &batch {
                if t.is_add {
                    per_op.add(t.object);
                } else {
                    per_op.remove(t.object);
                }
            }
            for x in 0..60 {
                assert_eq!(
                    batched.frequency(x),
                    per_op.frequency(x),
                    "shards {shards} object {x}"
                );
            }
            assert_eq!(batched.mode(), per_op.mode());
            assert_eq!(batched.len(), per_op.len());
            assert_eq!(batched.top_k(10), per_op.top_k(10));
        }
    }

    #[test]
    fn apply_batch_empty_and_out_of_range() {
        let sp = ShardedProfile::new(10, 3);
        assert_eq!(sp.apply_batch(&[]), 0);
        assert!(sp.is_empty());
        // A valid tuple *ahead of* the bad one must not be applied —
        // validation runs before any shard is touched, on every branch
        // (this 2-tuple batch takes the fewer-tuples-than-shards path).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sp.apply_batch(&[Tuple::add(0), Tuple::add(10)])
        }));
        assert!(result.is_err(), "out-of-range id must panic");
        assert!(sp.is_empty(), "nothing applied before the panic");
        // Same guarantee on the partition path (batch >= shard count).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sp.apply_batch(&[Tuple::add(0), Tuple::add(1), Tuple::add(2), Tuple::add(10)])
        }));
        assert!(result.is_err());
        assert!(sp.is_empty(), "nothing applied before the panic");
    }

    #[test]
    fn is_empty_sees_cancelling_nonzero_objects() {
        // Regression: +x then −y nets to length 0 while two objects hold
        // non-zero (one negative) frequencies — that is NOT empty.
        let sp = ShardedProfile::new(16, 4);
        sp.add(3);
        sp.remove(11);
        assert_eq!(sp.len(), 0);
        assert!(!sp.is_empty());
        assert_eq!(sp.distinct_active(), 2);
        // Undoing both really empties it.
        sp.remove(3);
        sp.add(11);
        assert!(sp.is_empty());
        assert_eq!(sp.distinct_active(), 0);
    }

    #[test]
    fn top_k_ties_straddling_a_shard_cut_match_the_single_profile() {
        // Regression: objects 0..8 all at frequency 1 in a 4-shard
        // profile, k = 3. Per-shard truncation at k used to let each
        // shard pick arbitrary tie witnesses; the merged answer must be
        // the deterministic smallest-id tie-break the single profile
        // reports.
        let m = 16u32;
        let sp = ShardedProfile::new(m, 4);
        let mut seq = SProfile::new(m);
        for x in 0..8u32 {
            sp.add(x);
            seq.add(x);
        }
        // A couple of higher-frequency objects so the tie class straddles
        // the per-shard cut rather than starting at it.
        for _ in 0..3 {
            sp.add(9);
            seq.add(9);
        }
        for k in 1..=m {
            assert_eq!(sp.top_k(k), seq.top_k(k), "k = {k}");
        }
    }

    #[test]
    fn median_matches_the_single_profile() {
        for (m, shards) in [(1u32, 1usize), (7, 3), (16, 4), (33, 8)] {
            let sp = ShardedProfile::new(m, shards);
            let mut seq = SProfile::new(m);
            for i in 0..(m * 37) {
                let x = (i * 13 + i / 7) % m;
                if i % 5 == 0 {
                    sp.remove(x);
                    seq.remove(x);
                } else {
                    sp.add(x);
                    seq.add(x);
                }
            }
            assert_eq!(sp.median(), seq.median(), "m={m} shards={shards}");
        }
        assert_eq!(ShardedProfile::new(0, 4).median(), None);
    }

    #[test]
    fn snapshot_bytes_restore_to_the_same_frequencies() {
        let sp = ShardedProfile::new(25, 4);
        for i in 0..500u32 {
            sp.add(i % 25);
            if i % 3 == 0 {
                sp.remove((i + 2) % 25);
            }
        }
        let restored = SProfile::from_snapshot_bytes(&sp.snapshot_bytes()).unwrap();
        for x in 0..25 {
            assert_eq!(restored.frequency(x), sp.frequency(x), "object {x}");
        }
        assert_eq!(restored.median(), sp.median());
    }

    #[test]
    fn snapshot_round_trips_frequencies() {
        let sp = ShardedProfile::new(30, 3);
        for i in 0..300u32 {
            sp.add(i % 30);
            if i % 5 == 0 {
                sp.remove((i + 1) % 30);
            }
        }
        let snap = sp.snapshot();
        for x in 0..30 {
            assert_eq!(snap.frequency(x), sp.frequency(x), "object {x}");
        }
        assert_eq!(snap.mode().unwrap().frequency, sp.mode().unwrap().1);
    }

    #[test]
    fn from_frequencies_inverts_merged_frequencies() {
        for shards in [1usize, 3, 4, 8] {
            let sp = ShardedProfile::new(23, shards);
            for i in 0..700u32 {
                sp.add((i * 11 + i / 9) % 23);
                if i % 4 == 1 {
                    sp.remove((i * 5) % 23);
                }
            }
            let freqs = sp.merged_frequencies();
            let rebuilt = ShardedProfile::from_frequencies(&freqs, shards);
            assert_eq!(rebuilt.merged_frequencies(), freqs, "shards {shards}");
            assert_eq!(rebuilt.mode(), sp.mode());
            assert_eq!(rebuilt.median(), sp.median());
            assert_eq!(rebuilt.top_k(6), sp.top_k(6));
            // Updates continue correctly on the rebuilt profile.
            rebuilt.add(3);
            assert_eq!(rebuilt.frequency(3), freqs[3] + 1);
        }
        // Degenerate universes.
        assert_eq!(ShardedProfile::from_frequencies(&[], 4).num_objects(), 0);
        let one = ShardedProfile::from_frequencies(&[-2], 4);
        assert_eq!(one.frequency(0), -2);
    }

    #[test]
    fn frequency_profiler_trait_works_generically() {
        fn drive<P: sprofile::FrequencyProfiler>(p: &mut P) {
            p.add(1);
            p.add(1);
            p.remove(2);
            assert_eq!(p.frequency(1), 2);
            assert_eq!(p.mode(), Some((1, 2)));
            assert_eq!(p.least(), Some((2, -1)));
        }
        let mut sp = ShardedProfile::new(10, 3);
        drive(&mut sp);
        assert_eq!(sprofile::FrequencyProfiler::name(&sp), "sharded-s-profile");
    }

    #[test]
    fn empty_universe_has_no_extremes() {
        let sp = ShardedProfile::new(0, 4);
        assert_eq!(sp.mode(), None);
        assert_eq!(sp.least(), None);
        assert!(sp.is_empty());
        assert_eq!(sp.top_k(3), vec![]);
        assert_eq!(sp.merged_frequencies(), Vec::<i64>::new());
    }
}
