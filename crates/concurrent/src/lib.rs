//! # sprofile-concurrent — multi-threaded ingestion for S-Profile
//!
//! The paper's structure is strictly single-writer: Algorithm 1 mutates
//! four arrays with no synchronisation points, which is exactly what
//! makes it O(1). Real log streams, however, arrive on many threads.
//! This crate provides the two standard ways to close that gap without
//! touching the core structure's guarantees:
//!
//! * [`ShardedProfile`] — the universe `[0, m)` is partitioned across
//!   `p` shards, each an independent [`sprofile::SProfile`] behind a
//!   `parking_lot::Mutex`. Updates lock one shard (O(1) plus one
//!   uncontended-fast mutex); global queries combine per-shard answers
//!   in O(p) (mode, least, counts) or O(p·K) (top-K merge). Suits
//!   workloads that are update-heavy with occasional global reads.
//!
//! * [`PipelineProfiler`] — a dedicated owner thread applies events from
//!   a `crossbeam-channel`; any number of producer handles send updates
//!   (never blocking on the structure) and run queries as request/reply
//!   round-trips. All operations are linearised by channel order, so
//!   every query observes a consistent point-in-time profile. Suits
//!   workloads needing strong query consistency.
//!
//! Both adapters keep the core's per-update cost constant; the
//! `concurrent` bench measures what the coordination itself costs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod pipeline;
mod sharded;

pub use pipeline::{PipelineHandle, PipelineProfiler};
pub use sharded::ShardedProfile;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn both_adapters_agree_with_each_other() {
        let sharded = ShardedProfile::new(100, 4);
        let pipeline = PipelineProfiler::spawn(100);
        let h = pipeline.handle();
        for i in 0..1000u32 {
            let x = (i * 7) % 100;
            sharded.add(x);
            h.add(x);
            if i % 3 == 0 {
                sharded.remove((i * 11) % 100);
                h.remove((i * 11) % 100);
            }
        }
        let (sm, pm) = (sharded.mode().unwrap(), h.mode().unwrap());
        assert_eq!(sm.1, pm.1, "mode frequencies diverged");
        assert_eq!(sharded.count_at_least(1), h.count_at_least(1));
        drop(h);
        pipeline.shutdown();
    }
}
