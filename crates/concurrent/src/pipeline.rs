//! Single-writer pipeline: one owner thread applies the log stream, any
//! number of producers feed it through a channel.
//!
//! This is the deployment shape the paper's §1 motivates (a central
//! service profiling a firehose of like/follow events): the structure
//! itself stays single-threaded — preserving the O(1) update bound —
//! while ingestion and querying become thread-safe. Updates are
//! fire-and-forget sends; queries are request/reply round-trips that
//! observe every update sent before them on the same handle (channel
//! FIFO order makes the whole history linearisable).

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use sprofile::{SProfile, Tuple};
use std::thread::JoinHandle;

/// Commands accepted by the owner thread.
enum Command {
    Add(u32),
    Remove(u32),
    /// A whole batch of updates in one channel send: producers amortize
    /// the per-send synchronisation and the owner applies it through
    /// [`SProfile::apply_batch`]'s fast path.
    Batch(Vec<Tuple>),
    Mode(Sender<Option<(u32, i64)>>),
    Least(Sender<Option<(u32, i64)>>),
    Frequency(u32, Sender<i64>),
    Median(Sender<Option<i64>>),
    TopK(u32, Sender<Vec<(u32, i64)>>),
    CountAtLeast(i64, Sender<u32>),
    /// Reply carries the number of updates applied so far (a barrier).
    Flush(Sender<u64>),
    /// Reply carries a serialized snapshot of the profile (see
    /// [`SProfile::write_snapshot`]) as of all previously sent updates.
    Snapshot(Sender<Vec<u8>>),
    /// Replace the owner's profile wholesale (replica checkpoint
    /// bootstrap); the reply acknowledges the swap.
    Install(Box<SProfile>, Sender<()>),
}

/// Owner of the profile thread. Dropping (or calling
/// [`PipelineProfiler::shutdown`]) disconnects the channel and joins the
/// worker.
pub struct PipelineProfiler {
    tx: Sender<Command>,
    worker: Option<JoinHandle<u64>>,
}

/// Cloneable producer/query handle; see [`PipelineProfiler::handle`].
#[derive(Clone)]
pub struct PipelineHandle {
    tx: Sender<Command>,
}

impl PipelineProfiler {
    /// Spawn the owner thread over a fresh universe of `m` objects.
    pub fn spawn(m: u32) -> Self {
        Self::spawn_from(SProfile::new(m))
    }

    /// Spawn the owner thread over an existing profile — the hook crash
    /// recovery uses to resume a pipeline backend from a restored
    /// snapshot. The owner starts with `profile`'s state; the applied
    /// counter starts at zero (it counts updates in *this* run).
    pub fn spawn_from(profile: SProfile) -> Self {
        let (tx, rx) = unbounded::<Command>();
        let worker = std::thread::Builder::new()
            .name("sprofile-pipeline".into())
            .spawn(move || run_owner(profile, rx))
            .expect("spawn profile owner thread");
        Self {
            tx,
            worker: Some(worker),
        }
    }

    /// A new producer/query handle. Handles are cheap to clone and safe
    /// to move across threads.
    pub fn handle(&self) -> PipelineHandle {
        PipelineHandle {
            tx: self.tx.clone(),
        }
    }

    /// Drop the profiler's own sender and wait for the owner to drain
    /// the queue. Returns the total number of updates applied.
    ///
    /// All [`PipelineHandle`]s must have been dropped first — they keep
    /// the channel (and therefore the worker) alive, so joining with
    /// live handles would block indefinitely.
    pub fn shutdown(mut self) -> u64 {
        let worker = self.worker.take().expect("worker present until shutdown");
        drop(self); // drops tx, disconnecting once no handles remain
        worker.join().expect("profile owner thread panicked")
    }
}

impl Drop for PipelineProfiler {
    fn drop(&mut self) {
        // Joining here would deadlock if user handles still exist (the
        // worker keeps running); detach instead. `shutdown` is the
        // graceful path.
        let _ = self.worker.take();
    }
}

fn run_owner(mut profile: SProfile, rx: Receiver<Command>) -> u64 {
    let mut applied = 0u64;
    for cmd in rx {
        match cmd {
            Command::Add(x) => {
                profile.add(x);
                applied += 1;
            }
            Command::Remove(x) => {
                profile.remove(x);
                applied += 1;
            }
            Command::Batch(batch) => {
                applied += profile.apply_batch(&batch);
            }
            Command::Mode(reply) => {
                // Deterministic witness (smallest tied id) — the same
                // convention as `ShardedProfile::mode`, so the two
                // adapters are interchangeable behind the TCP server.
                let _ = reply.send(profile.mode().map(|e| {
                    let obj = profile
                        .mode_objects()
                        .iter()
                        .copied()
                        .min()
                        .unwrap_or(e.object);
                    (obj, e.frequency)
                }));
            }
            Command::Least(reply) => {
                let _ = reply.send(profile.least().map(|e| {
                    let obj = profile
                        .least_objects()
                        .iter()
                        .copied()
                        .min()
                        .unwrap_or(e.object);
                    (obj, e.frequency)
                }));
            }
            Command::Frequency(x, reply) => {
                let _ = reply.send(profile.frequency(x));
            }
            Command::Median(reply) => {
                let _ = reply.send(profile.median());
            }
            Command::TopK(k, reply) => {
                let _ = reply.send(profile.top_k(k));
            }
            Command::CountAtLeast(t, reply) => {
                let _ = reply.send(profile.count_at_least(t));
            }
            Command::Flush(reply) => {
                let _ = reply.send(applied);
            }
            Command::Snapshot(reply) => {
                let _ = reply.send(profile.to_snapshot_bytes());
            }
            Command::Install(new_profile, reply) => {
                profile = *new_profile;
                let _ = reply.send(());
            }
        }
    }
    applied
}

impl PipelineHandle {
    /// Enqueue one "add" event (non-blocking; never waits on the
    /// structure).
    pub fn add(&self, x: u32) {
        self.send(Command::Add(x));
    }

    /// Enqueue one "remove" event.
    pub fn remove(&self, x: u32) {
        self.send(Command::Remove(x));
    }

    /// Enqueue a whole batch of updates in **one** channel send. The
    /// owner applies it through the batched ingestion fast path, so a
    /// firehose producer pays one send per batch instead of one per
    /// tuple. Order is preserved relative to other commands on this
    /// handle; an empty batch is a no-op.
    ///
    /// # Example
    /// ```
    /// use sprofile::Tuple;
    /// use sprofile_concurrent::PipelineProfiler;
    ///
    /// let p = PipelineProfiler::spawn(100);
    /// let h = p.handle();
    /// h.apply_batch(vec![Tuple::add(5), Tuple::add(5), Tuple::remove(9)]);
    /// assert_eq!(h.frequency(5), 2);
    /// drop(h);
    /// assert_eq!(p.shutdown(), 3);
    /// ```
    pub fn apply_batch(&self, batch: Vec<Tuple>) {
        if !batch.is_empty() {
            self.send(Command::Batch(batch));
        }
    }

    /// Mode `(object, frequency)` as of all previously sent updates.
    pub fn mode(&self) -> Option<(u32, i64)> {
        self.round_trip(Command::Mode)
    }

    /// Least-frequent `(object, frequency)`.
    pub fn least(&self) -> Option<(u32, i64)> {
        self.round_trip(Command::Least)
    }

    /// Frequency of `x`.
    pub fn frequency(&self, x: u32) -> i64 {
        self.round_trip(|reply| Command::Frequency(x, reply))
    }

    /// Median frequency.
    pub fn median(&self) -> Option<i64> {
        self.round_trip(Command::Median)
    }

    /// Top-K `(object, frequency)` list.
    pub fn top_k(&self, k: u32) -> Vec<(u32, i64)> {
        self.round_trip(|reply| Command::TopK(k, reply))
    }

    /// Number of objects with frequency ≥ `threshold`.
    pub fn count_at_least(&self, threshold: i64) -> u32 {
        self.round_trip(|reply| Command::CountAtLeast(threshold, reply))
    }

    /// Barrier: wait until every update sent on this handle so far has
    /// been applied; returns the global applied-update count.
    pub fn flush(&self) -> u64 {
        self.round_trip(Command::Flush)
    }

    /// Serialized snapshot ([`SProfile::write_snapshot`] format) of the
    /// profile as of all previously sent updates — the persistence hook
    /// the TCP server's `SNAPSHOT` command rides on. Like every query,
    /// it acts as a barrier for updates sent earlier on this handle.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.round_trip(Command::Snapshot)
    }

    /// Replaces the owner's profile wholesale with `profile`, returning
    /// once the swap is done — the replica checkpoint-bootstrap hook
    /// (O(1) beyond the profile move, vs. replaying the difference as
    /// unit updates). Updates sent before this on the same handle are
    /// applied first (channel FIFO), then superseded by the new state.
    pub fn install(&self, profile: SProfile) {
        let (reply_tx, reply_rx) = bounded(1);
        self.send(Command::Install(Box::new(profile), reply_tx));
        reply_rx
            .recv()
            .expect("profile owner thread terminated mid-install");
    }

    fn send(&self, cmd: Command) {
        self.tx
            .send(cmd)
            .expect("profile owner thread terminated while handles remain");
    }

    fn round_trip<T>(&self, make: impl FnOnce(Sender<T>) -> Command) -> T {
        let (reply_tx, reply_rx) = bounded(1);
        self.send(make(reply_tx));
        reply_rx
            .recv()
            .expect("profile owner dropped a query reply")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn queries_observe_prior_updates_on_the_same_handle() {
        let p = PipelineProfiler::spawn(10);
        let h = p.handle();
        h.add(3);
        h.add(3);
        h.remove(7);
        assert_eq!(h.frequency(3), 2);
        assert_eq!(h.frequency(7), -1);
        assert_eq!(h.mode(), Some((3, 2)));
        assert_eq!(h.least(), Some((7, -1)));
        drop(h);
        assert_eq!(p.shutdown(), 3);
    }

    #[test]
    fn matches_sequential_profile_over_a_generated_stream() {
        use sprofile_streamgen::StreamConfig;

        let m = 500;
        let events = StreamConfig::stream2(m, 77).take_events(20_000);
        let p = PipelineProfiler::spawn(m);
        let h = p.handle();
        let mut seq = SProfile::new(m);
        for ev in &events {
            if ev.is_add {
                h.add(ev.object);
                seq.add(ev.object);
            } else {
                h.remove(ev.object);
                seq.remove(ev.object);
            }
        }
        assert_eq!(h.flush(), 20_000);
        assert_eq!(h.mode().unwrap().1, seq.mode().unwrap().frequency);
        assert_eq!(h.median(), seq.median());
        assert_eq!(h.count_at_least(5), seq.count_at_least(5));
        let top = h.top_k(10);
        let seq_top = seq.top_k(10);
        assert_eq!(
            top.iter().map(|&(_, f)| f).collect::<Vec<_>>(),
            seq_top.iter().map(|&(_, f)| f).collect::<Vec<_>>()
        );
        drop(h);
        p.shutdown();
    }

    #[test]
    fn many_producers_sum_to_the_expected_counts() {
        let p = PipelineProfiler::spawn(16);
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let h = p.handle();
                thread::spawn(move || {
                    for i in 0..1600u32 {
                        h.add((i + t) % 16);
                    }
                    h.flush()
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let h = p.handle();
        assert_eq!(h.flush(), 8 * 1600);
        // 8 threads × 1600 adds, each covering every object exactly 100
        // times (1600 = 100 × 16) = 800 per object.
        for x in 0..16 {
            assert_eq!(h.frequency(x), 800, "object {x}");
        }
        drop(h);
        assert_eq!(p.shutdown(), 8 * 1600);
    }

    #[test]
    fn batched_sends_agree_with_per_op_sends() {
        use sprofile_streamgen::StreamConfig;

        let m = 200;
        let events = StreamConfig::stream1(m, 5).take_events(10_000);
        let tuples: Vec<Tuple> = events
            .iter()
            .map(|e| Tuple {
                object: e.object,
                is_add: e.is_add,
            })
            .collect();

        let per_op = PipelineProfiler::spawn(m);
        let hp = per_op.handle();
        for t in &tuples {
            if t.is_add {
                hp.add(t.object);
            } else {
                hp.remove(t.object);
            }
        }

        let batched = PipelineProfiler::spawn(m);
        let hb = batched.handle();
        for chunk in tuples.chunks(512) {
            hb.apply_batch(chunk.to_vec());
        }
        hb.apply_batch(Vec::new()); // no-op

        assert_eq!(hp.flush(), 10_000);
        assert_eq!(hb.flush(), 10_000);
        assert_eq!(hb.mode(), hp.mode());
        assert_eq!(hb.median(), hp.median());
        assert_eq!(hb.top_k(15), hp.top_k(15));
        for x in (0..m).step_by(13) {
            assert_eq!(hb.frequency(x), hp.frequency(x), "object {x}");
        }
        drop(hp);
        drop(hb);
        per_op.shutdown();
        batched.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_updates() {
        let p = PipelineProfiler::spawn(4);
        let h = p.handle();
        for _ in 0..10_000 {
            h.add(1);
        }
        drop(h);
        assert_eq!(p.shutdown(), 10_000);
    }

    #[test]
    fn snapshot_bytes_capture_prior_updates() {
        let p = PipelineProfiler::spawn(12);
        let h = p.handle();
        for i in 0..240u32 {
            h.add(i % 12);
            if i % 4 == 0 {
                h.remove((i + 1) % 12);
            }
        }
        let restored = SProfile::from_snapshot_bytes(&h.snapshot_bytes()).unwrap();
        for x in 0..12 {
            assert_eq!(restored.frequency(x), h.frequency(x), "object {x}");
        }
        assert_eq!(restored.median(), h.median());
        drop(h);
        p.shutdown();
    }

    #[test]
    fn spawn_from_resumes_an_existing_profile() {
        let mut seed = SProfile::new(9);
        for x in [2u32, 2, 2, 5, 5, 7] {
            seed.add(x);
        }
        seed.remove(0);
        let expected_mode = seed.mode().map(|e| (e.object, e.frequency));
        let p = PipelineProfiler::spawn_from(seed);
        let h = p.handle();
        assert_eq!(h.frequency(2), 3);
        assert_eq!(h.frequency(0), -1);
        assert_eq!(h.mode(), expected_mode);
        // Updates continue on top of the seeded state; the applied
        // counter only counts this run's updates.
        h.add(2);
        assert_eq!(h.frequency(2), 4);
        drop(h);
        assert_eq!(p.shutdown(), 1);
    }

    #[test]
    fn handles_survive_profiler_drop() {
        let p = PipelineProfiler::spawn(4);
        let h = p.handle();
        drop(p); // detaches; worker lives while `h` exists
        h.add(2);
        assert_eq!(h.frequency(2), 1);
    }
}
