//! Replica retention: a registry of attached replicas' acknowledged
//! LSNs, consulted by segment pruning so log shipping never loses
//! records a replica still needs.
//!
//! The WAL's normal pruning rule deletes every segment fully covered by
//! the oldest retained checkpoint. With replicas attached, a segment may
//! be checkpoint-covered on the primary yet still unread by a slow
//! replica — deleting it would force that replica through a full
//! checkpoint bootstrap. The registry therefore lowers the pruning floor
//! to the slowest replica's acknowledged LSN, with one escape hatch: a
//! byte budget ([`WalOptions::max_retain_bytes`]) beyond which a stalled
//! replica stops pinning disk and will re-bootstrap instead.
//!
//! [`WalOptions::max_retain_bytes`]: crate::WalOptions::max_retain_bytes

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tracks, per attached replica, the highest LSN it has acknowledged as
/// durably applied. Shared (`Arc`) between the WAL writer (which reads
/// the [`floor`](ReplicaRegistry::floor) while pruning) and the
/// replication source (which registers one slot per replica stream).
#[derive(Debug, Default)]
pub struct ReplicaRegistry {
    acked: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
}

impl ReplicaRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<ReplicaRegistry> {
        Arc::new(ReplicaRegistry::default())
    }

    /// Registers a replica that has acknowledged every record up to and
    /// including `acked` (0: nothing yet). The returned slot deregisters
    /// itself when dropped — a disconnected replica stops pinning
    /// segments immediately.
    pub fn register(self: &Arc<Self>, acked: u64) -> ReplicaSlot {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.acked
            .lock()
            .expect("registry lock poisoned")
            .insert(id, acked);
        ReplicaSlot {
            registry: Arc::clone(self),
            id,
        }
    }

    /// The slowest registered replica's acknowledged LSN (`None` when no
    /// replica is attached). Records with LSN *greater* than the floor
    /// are still needed by someone.
    pub fn floor(&self) -> Option<u64> {
        self.acked
            .lock()
            .expect("registry lock poisoned")
            .values()
            .min()
            .copied()
    }

    /// Number of registered replicas.
    pub fn len(&self) -> usize {
        self.acked.lock().expect("registry lock poisoned").len()
    }

    /// How many registered replicas have acknowledged every record up to
    /// and including `lsn` — the synchronous-commit quorum check.
    pub fn count_acked_at_least(&self, lsn: u64) -> usize {
        self.acked
            .lock()
            .expect("registry lock poisoned")
            .values()
            .filter(|&&acked| acked >= lsn)
            .count()
    }

    /// Whether no replica is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One replica's registration; update it with [`ReplicaSlot::ack`] as
/// acknowledgements arrive. Dropping it deregisters the replica.
pub struct ReplicaSlot {
    registry: Arc<ReplicaRegistry>,
    id: u64,
}

impl ReplicaSlot {
    /// Records that the replica has acknowledged every record up to and
    /// including `lsn`. Acknowledgements are monotonic: a stale (lower)
    /// value is ignored.
    pub fn ack(&self, lsn: u64) {
        let mut acked = self.registry.acked.lock().expect("registry lock poisoned");
        let entry = acked.entry(self.id).or_insert(0);
        *entry = (*entry).max(lsn);
    }

    /// The highest LSN this replica has acknowledged.
    pub fn acked(&self) -> u64 {
        self.registry
            .acked
            .lock()
            .expect("registry lock poisoned")
            .get(&self.id)
            .copied()
            .unwrap_or(0)
    }
}

impl Drop for ReplicaSlot {
    fn drop(&mut self) {
        self.registry
            .acked
            .lock()
            .expect("registry lock poisoned")
            .remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_tracks_the_slowest_replica() {
        let registry = ReplicaRegistry::new();
        assert_eq!(registry.floor(), None);
        assert!(registry.is_empty());
        let a = registry.register(10);
        let b = registry.register(4);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.floor(), Some(4));
        b.ack(25);
        assert_eq!(registry.floor(), Some(10));
        // Stale acks never move a replica backwards.
        b.ack(3);
        assert_eq!(b.acked(), 25);
        a.ack(12);
        assert_eq!(registry.floor(), Some(12));
        // Quorum counting for sync commit.
        assert_eq!(registry.count_acked_at_least(12), 2);
        assert_eq!(registry.count_acked_at_least(13), 1);
        assert_eq!(registry.count_acked_at_least(26), 0);
        // Dropping a slot deregisters it.
        drop(a);
        assert_eq!(registry.floor(), Some(25));
        drop(b);
        assert_eq!(registry.floor(), None);
    }
}
