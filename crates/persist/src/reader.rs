//! Read-side access to the segment files of a *live* WAL — the
//! replication source's catch-up path.
//!
//! [`recover`](crate::recover) rebuilds a profile; a replication source
//! instead needs the raw records in an LSN range, without reparsing
//! anything past the range's end (the open segment's tail may hold a
//! record that is mid-write at read time). [`SegmentReader`] provides
//! exactly that: range reads bounded by an upper LSN the caller obtained
//! under the WAL lock (see [`Wal::subscribe`](crate::Wal::subscribe)),
//! so every record below the bound is fully flushed and decodable.

use std::path::{Path, PathBuf};

use sprofile::Tuple;

use crate::record::{decode_record, Decoded};
use crate::segment::{list_segments, parse_segment};
use crate::PersistError;

/// Reads records out of a WAL directory's segment files by LSN range.
pub struct SegmentReader {
    dir: PathBuf,
}

impl SegmentReader {
    /// A reader over `dir`'s segments.
    pub fn new(dir: impl Into<PathBuf>) -> SegmentReader {
        SegmentReader { dir: dir.into() }
    }

    /// The directory being read.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The first LSN still present in the segment files (`None`: no
    /// segments at all). Requests below this have been pruned and need a
    /// checkpoint bootstrap instead.
    pub fn first_lsn(&self) -> Result<Option<u64>, PersistError> {
        Ok(list_segments(&self.dir)?.first().map(|&(lsn, _)| lsn))
    }

    /// Invokes `apply(lsn, epoch, tuples)` for every record with
    /// `from <= lsn < upto`, in LSN order. Nothing at or past `upto` is
    /// decoded, so an `upto` taken under the WAL lock makes the read
    /// race-free against concurrent appends. A torn or missing record
    /// *below* `upto` is an error — those records were durably appended
    /// and must exist.
    pub fn read_range(
        &self,
        from: u64,
        upto: u64,
        mut apply: impl FnMut(u64, u64, Vec<Tuple>) -> Result<(), PersistError>,
    ) -> Result<(), PersistError> {
        if from >= upto {
            return Ok(());
        }
        let segments = list_segments(&self.dir)?;
        if segments.first().is_none_or(|&(first, _)| first > from) {
            return Err(PersistError::corrupt(
                "requested records are pruned or missing",
                Some(&self.dir),
            ));
        }
        let mut expected: Option<u64> = None;
        for (i, (first_lsn, path)) in segments.iter().enumerate() {
            // Skip segments fully below `from` (their successor starts
            // at or below it).
            if expected.is_none() {
                if let Some((next_first, _)) = segments.get(i + 1) {
                    if *next_first <= from {
                        continue;
                    }
                }
            }
            if *first_lsn >= upto {
                break;
            }
            if let Some(exp) = expected {
                if *first_lsn != exp {
                    return Err(PersistError::corrupt(
                        "gap between segments (missing records)",
                        Some(path),
                    ));
                }
            }
            let bytes = std::fs::read(path)?;
            let mut rest = parse_segment(&bytes, *first_lsn, path)?;
            let mut lsn = *first_lsn;
            loop {
                if lsn >= upto {
                    return Ok(());
                }
                match decode_record(rest) {
                    Decoded::End => break,
                    Decoded::Torn(why) => {
                        // A tear below `upto` that the next segment does
                        // not resume from (the crash-and-restart shape)
                        // means durable records are unreachable.
                        match segments.get(i + 1) {
                            Some((next_first, _)) if *next_first == lsn => break,
                            _ => return Err(PersistError::corrupt(why, Some(path))),
                        }
                    }
                    Decoded::Record {
                        epoch,
                        tuples,
                        consumed,
                    } => {
                        rest = &rest[consumed..];
                        if lsn >= from {
                            apply(lsn, epoch, tuples)?;
                        }
                        lsn += 1;
                    }
                }
            }
            expected = Some(lsn);
        }
        // Ran out of segments before reaching `upto`.
        let reached = expected.unwrap_or(from);
        if reached < upto {
            return Err(PersistError::corrupt(
                "segments end before the requested range",
                Some(&self.dir),
            ));
        }
        Ok(())
    }

    /// Collects [`read_range`](Self::read_range) into a vector (small
    /// ranges / tests).
    pub fn collect_range(
        &self,
        from: u64,
        upto: u64,
    ) -> Result<Vec<crate::RecordInfo>, PersistError> {
        let mut out = Vec::new();
        self.read_range(from, upto, |lsn, epoch, tuples| {
            out.push(crate::RecordInfo { lsn, epoch, tuples });
            Ok(())
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{Wal, WalOptions};
    use crate::SyncPolicy;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sprofile-reader-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build_wal(dir: &Path, records: u32, segment_bytes: u64) {
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.to_path_buf(),
                sync: SyncPolicy::Never,
                segment_bytes,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        for i in 0..records {
            wal.append(&[Tuple::add(i % 8), Tuple::add((i + 1) % 8)])
                .unwrap();
        }
        wal.sync().unwrap();
    }

    #[test]
    fn range_reads_cross_segments_and_respect_bounds() {
        let dir = temp_dir("range");
        build_wal(&dir, 30, 96); // tiny segments: several files
        let reader = SegmentReader::new(&dir);
        assert_eq!(reader.first_lsn().unwrap(), Some(1));
        let records = reader.collect_range(7, 23).unwrap();
        assert_eq!(records.len(), 16);
        assert_eq!(records.first().unwrap().lsn, 7);
        assert_eq!(records.last().unwrap().lsn, 22);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, 7 + i as u64);
            assert_eq!(r.tuples.len(), 2);
        }
        // Empty and inverted ranges are fine.
        assert!(reader.collect_range(5, 5).unwrap().is_empty());
        assert!(reader.collect_range(9, 3).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_or_missing_ranges_are_errors() {
        let dir = temp_dir("pruned");
        build_wal(&dir, 10, 1 << 20);
        let reader = SegmentReader::new(&dir);
        // Beyond the log's head: the durable range ends at lsn 10.
        assert!(reader.collect_range(5, 50).is_err());
        // Delete the (only) segment: everything is "pruned".
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "seg") {
                std::fs::remove_file(p).unwrap();
            }
        }
        assert_eq!(reader.first_lsn().unwrap(), None);
        assert!(reader.collect_range(1, 2).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
