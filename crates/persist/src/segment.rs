//! Segment and checkpoint files: naming, headers, and directory scans.
//!
//! ```text
//! wal-<first_lsn:020>.seg      segment: SEG_MAGIC, first_lsn u64 LE, records…
//! ckpt-<lsn:020>.ck            checkpoint: CKPT_MAGIC, lsn u64 LE,
//!                              snap_len u64 LE, header_crc u32 LE,
//!                              snapshot (self-checksummed) bytes
//! ```
//!
//! LSNs (log sequence numbers) number records from 1; a checkpoint at
//! `lsn` covers records `1..=lsn` (`lsn` 0 = the empty prefix). File
//! names embed the zero-padded LSN so a lexicographic directory sort is
//! also the LSN sort.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use sprofile::crc32::crc32;

use crate::PersistError;

/// Segment file magic + format version.
pub(crate) const SEG_MAGIC: [u8; 8] = *b"SPWAL\x01\0\0";

/// Checkpoint file magic + format version.
pub(crate) const CKPT_MAGIC: [u8; 8] = *b"SPCKP\x01\0\0";

/// Segment header size: magic + first_lsn.
pub(crate) const SEG_HEADER: usize = 16;

/// Checkpoint header size: magic + lsn + snap_len + header crc.
pub(crate) const CKPT_HEADER: usize = 28;

/// Path of the segment whose first record is `first_lsn`.
pub fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.seg"))
}

/// Path of the checkpoint covering records `1..=lsn`.
pub fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.ck"))
}

/// Whether `name` looks like a WAL segment file name; returns its LSN.
pub fn is_segment_file(name: &str) -> Option<u64> {
    parse_name(name, "wal-", ".seg")
}

/// Whether `name` looks like a checkpoint file name; returns its LSN.
pub fn is_checkpoint_file(name: &str) -> Option<u64> {
    parse_name(name, "ckpt-", ".ck")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let middle = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if middle.len() != 20 || !middle.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    middle.parse().ok()
}

/// The segment header bytes for a segment starting at `first_lsn`.
pub(crate) fn encode_segment_header(first_lsn: u64) -> [u8; SEG_HEADER] {
    let mut h = [0u8; SEG_HEADER];
    h[..8].copy_from_slice(&SEG_MAGIC);
    h[8..].copy_from_slice(&first_lsn.to_le_bytes());
    h
}

/// Validates a segment's header against the LSN embedded in its file
/// name; returns the record bytes (everything after the header).
pub(crate) fn parse_segment<'a>(
    bytes: &'a [u8],
    name_lsn: u64,
    path: &Path,
) -> Result<&'a [u8], PersistError> {
    if bytes.len() < SEG_HEADER || bytes[..8] != SEG_MAGIC {
        return Err(PersistError::corrupt("bad segment header", Some(path)));
    }
    let first_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if first_lsn != name_lsn {
        return Err(PersistError::corrupt(
            "segment header lsn disagrees with file name",
            Some(path),
        ));
    }
    Ok(&bytes[SEG_HEADER..])
}

/// The checkpoint header for a snapshot of `snap_len` bytes at `lsn`.
pub(crate) fn encode_checkpoint_header(lsn: u64, snap_len: u64) -> [u8; CKPT_HEADER] {
    let mut h = [0u8; CKPT_HEADER];
    h[..8].copy_from_slice(&CKPT_MAGIC);
    h[8..16].copy_from_slice(&lsn.to_le_bytes());
    h[16..24].copy_from_slice(&snap_len.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a checkpoint file's header; returns `(lsn, snapshot bytes)`.
pub(crate) fn parse_checkpoint<'a>(
    bytes: &'a [u8],
    name_lsn: u64,
    path: &Path,
) -> Result<(u64, &'a [u8]), PersistError> {
    if bytes.len() < CKPT_HEADER || bytes[..8] != CKPT_MAGIC {
        return Err(PersistError::corrupt("bad checkpoint header", Some(path)));
    }
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if crc32(&bytes[..24]) != crc {
        return Err(PersistError::corrupt(
            "checkpoint header checksum mismatch",
            Some(path),
        ));
    }
    let lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let snap_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if lsn != name_lsn {
        return Err(PersistError::corrupt(
            "checkpoint header lsn disagrees with file name",
            Some(path),
        ));
    }
    let body = &bytes[CKPT_HEADER..];
    if body.len() as u64 != snap_len {
        return Err(PersistError::corrupt(
            "checkpoint snapshot length mismatch",
            Some(path),
        ));
    }
    Ok((lsn, body))
}

/// Sorted (by LSN, ascending) list of the segment files in `dir`.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_by(dir, is_segment_file)
}

/// Sorted (by LSN, ascending) list of the checkpoint files in `dir`.
pub(crate) fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_by(dir, is_checkpoint_file)
}

fn list_by(dir: &Path, matches: fn(&str) -> Option<u64>) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(lsn) = name.to_str().and_then(matches) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Best-effort directory fsync, so renames/creates survive power loss.
/// Some filesystems/platforms refuse to sync directories; that only
/// weakens the power-loss story, never process-crash recovery, so
/// failures are ignored.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_lexicographically() {
        let dir = Path::new("/x");
        for lsn in [0u64, 1, 99, 10_000_000_007, u64::MAX] {
            let seg = segment_path(dir, lsn);
            let name = seg.file_name().unwrap().to_str().unwrap();
            assert_eq!(is_segment_file(name), Some(lsn), "{name}");
            let ck = checkpoint_path(dir, lsn);
            let name = ck.file_name().unwrap().to_str().unwrap();
            assert_eq!(is_checkpoint_file(name), Some(lsn), "{name}");
        }
        // Zero padding makes the string sort the numeric sort.
        let a = segment_path(dir, 9);
        let b = segment_path(dir, 10);
        assert!(a.file_name().unwrap() < b.file_name().unwrap());
    }

    #[test]
    fn foreign_names_are_ignored() {
        for name in [
            "wal-1.seg",
            "wal-0000000000000000000x.seg",
            "ckpt-00000000000000000001.seg",
            "wal-00000000000000000001.ck",
            "snapshot.bin",
            "wal-.seg",
        ] {
            assert_eq!(is_segment_file(name), None, "{name}");
            assert_eq!(is_checkpoint_file(name), None, "{name}");
        }
    }

    #[test]
    fn segment_header_roundtrip_and_mismatch() {
        let p = Path::new("/x/wal-00000000000000000007.seg");
        let mut bytes = encode_segment_header(7).to_vec();
        bytes.extend_from_slice(b"records");
        assert_eq!(parse_segment(&bytes, 7, p).unwrap(), b"records");
        assert!(parse_segment(&bytes, 8, p).is_err());
        bytes[0] = b'X';
        assert!(parse_segment(&bytes, 7, p).is_err());
        assert!(parse_segment(&bytes[..10], 7, p).is_err());
    }

    #[test]
    fn checkpoint_header_roundtrip_and_corruption() {
        let p = Path::new("/x/ckpt-00000000000000000005.ck");
        let snap = b"snapshot-bytes";
        let mut bytes = encode_checkpoint_header(5, snap.len() as u64).to_vec();
        bytes.extend_from_slice(snap);
        let (lsn, body) = parse_checkpoint(&bytes, 5, p).unwrap();
        assert_eq!((lsn, body), (5, &snap[..]));
        // Name/lsn mismatch, header flip, truncation: all typed errors.
        assert!(parse_checkpoint(&bytes, 6, p).is_err());
        let mut flipped = bytes.clone();
        flipped[9] ^= 1;
        assert!(parse_checkpoint(&flipped, 5, p).is_err());
        assert!(parse_checkpoint(&bytes[..bytes.len() - 1], 5, p).is_err());
    }
}
