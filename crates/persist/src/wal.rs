//! The WAL writer: append, group-commit, rotate, checkpoint, prune.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::WalMetrics;
use crate::record::{encode_record, record_size};
use crate::segment::{
    checkpoint_path, encode_checkpoint_header, encode_segment_header, fsync_dir, list_checkpoints,
    list_segments, segment_path, SEG_HEADER,
};
use crate::{PersistError, SyncPolicy};
use sprofile::Tuple;

/// Construction knobs for a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory holding segments and checkpoints (created if absent).
    pub dir: PathBuf,
    /// fsync cadence; see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes.
    pub segment_bytes: u64,
    /// How many checkpoints to retain when pruning (at least 1; the
    /// default of 2 keeps one fallback should the newest ever fail
    /// validation).
    pub keep_checkpoints: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            dir: PathBuf::from("wal"),
            sync: SyncPolicy::Interval(std::time::Duration::from_millis(50)),
            segment_bytes: 8 << 20,
            keep_checkpoints: 2,
        }
    }
}

/// An open, append-only write-ahead log.
///
/// Not internally synchronised: the server serialises appends (and the
/// checkpointer) through a mutex, which is also what makes a checkpoint
/// LSN and the profile state it captures atomic with respect to appends.
pub struct Wal {
    opts: WalOptions,
    file: BufWriter<File>,
    seg_bytes: u64,
    next_lsn: u64,
    last_sync: Instant,
    metrics: Arc<WalMetrics>,
    record_buf: Vec<u8>,
    /// Set after an append-path I/O error. A partial record may sit at
    /// the segment tail, and anything written after it would be
    /// unreachable to recovery (replay stops at the first bad record) —
    /// so the log fails stop: every later append/sync/checkpoint
    /// returns an error instead of silently losing acknowledged data.
    poisoned: bool,
    /// Advisory exclusive lock on `<dir>/wal.lock`, held for the Wal's
    /// lifetime so a second writer (another server, or an "offline"
    /// `checkpoint` compaction) cannot truncate or prune a live log.
    _lock: File,
}

impl Wal {
    /// Opens `opts.dir` for appending, starting at `next_lsn` (use
    /// [`recover`](crate::recover)'s `next_lsn`; `1` for a fresh log). A
    /// fresh segment is always started: the previous tail segment — torn
    /// or not — is never appended to, which is what keeps torn tails
    /// strictly at segment ends.
    ///
    /// Takes an exclusive advisory lock on `<dir>/wal.lock` (released
    /// on drop); a directory already locked by a live writer is
    /// refused.
    pub fn open(opts: WalOptions, next_lsn: u64) -> Result<Wal, PersistError> {
        assert!(next_lsn >= 1, "LSNs start at 1");
        fs::create_dir_all(&opts.dir)?;
        let lock = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(opts.dir.join("wal.lock"))?;
        if lock.try_lock().is_err() {
            return Err(PersistError::Locked {
                dir: opts.dir.clone(),
            });
        }
        let metrics = Arc::new(WalMetrics::default());
        // A segment file with this first LSN can already exist if a
        // previous run opened it and crashed before appending anything
        // durable; recovery assigned the same next_lsn precisely because
        // it held no valid records, so truncating it is safe.
        let path = segment_path(&opts.dir, next_lsn);
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(&encode_segment_header(next_lsn))?;
        file.flush()?;
        file.get_ref().sync_all()?;
        fsync_dir(&opts.dir);
        metrics.on_header(SEG_HEADER as u64);
        metrics.on_fsync();
        metrics.set_segments(list_segments(&opts.dir)?.len() as u64);
        Ok(Wal {
            opts,
            file,
            seg_bytes: SEG_HEADER as u64,
            next_lsn,
            last_sync: Instant::now(),
            metrics,
            record_buf: Vec::new(),
            poisoned: false,
            _lock: lock,
        })
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }

    /// The LSN the next append will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Shared live counters (readable without holding the WAL lock).
    pub fn metrics(&self) -> Arc<WalMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Appends one record holding `tuples` and commits it according to
    /// the sync policy; returns the record's LSN. On return the record
    /// bytes have always reached the kernel (`write`-flushed), so a
    /// crashed *process* loses nothing; whether they survived power loss
    /// is the [`SyncPolicy`]'s call.
    pub fn append(&mut self, tuples: &[Tuple]) -> Result<u64, PersistError> {
        self.check_poisoned()?;
        let result = self.append_inner(tuples);
        if result.is_err() {
            // The failed write may have left a partial record at the
            // tail; anything appended after it would be unreachable to
            // replay. Fail stop instead of silently losing acked data.
            self.poisoned = true;
        }
        result
    }

    fn append_inner(&mut self, tuples: &[Tuple]) -> Result<u64, PersistError> {
        if self.seg_bytes + record_size(tuples.len()) as u64 > self.opts.segment_bytes
            && self.seg_bytes > SEG_HEADER as u64
        {
            self.rotate()?;
        }
        self.record_buf.clear();
        encode_record(tuples, &mut self.record_buf);
        self.file.write_all(&self.record_buf)?;
        self.seg_bytes += self.record_buf.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.metrics
            .on_append(tuples.len() as u64, self.record_buf.len() as u64);
        self.file.flush()?;
        match self.opts.sync {
            SyncPolicy::Always => self.fsync()?,
            SyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.fsync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Whether the log has fail-stopped after an append error.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    #[cfg(test)]
    fn poison_for_test(&mut self) {
        self.poisoned = true;
    }

    fn check_poisoned(&self) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::corrupt(
                "wal fail-stopped after an earlier append error",
                Some(&self.opts.dir),
            ));
        }
        Ok(())
    }

    /// Forces everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.check_poisoned()?;
        self.file.flush()?;
        self.fsync()
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        self.file.get_ref().sync_data()?;
        self.metrics.on_fsync();
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the current segment (fully synced) and starts the next one.
    fn rotate(&mut self) -> Result<(), PersistError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.metrics.on_fsync();
        let path = segment_path(&self.opts.dir, self.next_lsn);
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(&encode_segment_header(self.next_lsn))?;
        file.flush()?;
        file.get_ref().sync_all()?;
        fsync_dir(&self.opts.dir);
        self.metrics.on_header(SEG_HEADER as u64);
        self.metrics.on_fsync();
        self.metrics.add_segments(1);
        self.file = file;
        self.seg_bytes = SEG_HEADER as u64;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Writes a checkpoint covering every record appended so far (the
    /// caller supplies `snapshot` — [`sprofile::SProfile`] snapshot
    /// bytes capturing exactly that state), then prunes fully covered
    /// segments and superseded checkpoints. Returns the checkpoint LSN.
    ///
    /// Crash-ordering: the WAL is fsynced first, the checkpoint is
    /// written to a temp file, fsynced, renamed into place, and the
    /// directory fsynced — only then is anything deleted. A crash at any
    /// point leaves either the old state (checkpoint absent/ignored) or
    /// the new one (checkpoint durable), never a hole.
    pub fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, PersistError> {
        self.check_poisoned()?;
        self.sync()?;
        let lsn = self.next_lsn - 1;
        let final_path = checkpoint_path(&self.opts.dir, lsn);
        let tmp_path = final_path.with_extension("ck.tmp");
        {
            let mut f = BufWriter::new(File::create(&tmp_path)?);
            f.write_all(&encode_checkpoint_header(lsn, snapshot.len() as u64))?;
            f.write_all(snapshot)?;
            f.flush()?;
            f.get_ref().sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        fsync_dir(&self.opts.dir);
        self.metrics.on_checkpoint();
        self.prune()?;
        Ok(lsn)
    }

    /// Deletes checkpoints beyond the newest `keep_checkpoints` and
    /// every segment fully covered by the *oldest retained* checkpoint
    /// (so falling back one checkpoint always finds the records it
    /// needs). The current segment is never deleted.
    fn prune(&mut self) -> Result<(), PersistError> {
        let checkpoints = list_checkpoints(&self.opts.dir)?;
        let keep = self.opts.keep_checkpoints.max(1);
        let cut = checkpoints.len().saturating_sub(keep);
        for (_, path) in &checkpoints[..cut] {
            fs::remove_file(path)?;
        }
        let Some((floor, _)) = checkpoints.get(cut) else {
            return Ok(());
        };
        let segments = list_segments(&self.opts.dir)?;
        let mut deleted = 0i64;
        for i in 0..segments.len() {
            // Segment i's records all precede segment i+1's first LSN;
            // the last segment (the live one) has no successor and is
            // always kept.
            let Some((next_first, _)) = segments.get(i + 1) else {
                break;
            };
            if *next_first <= floor + 1 {
                fs::remove_file(&segments[i].1)?;
                deleted += 1;
            }
        }
        if deleted > 0 {
            self.metrics.add_segments(-deleted);
            fsync_dir(&self.opts.dir);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::{dump_records, recover};
    use sprofile::SProfile;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sprofile-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> WalOptions {
        WalOptions {
            dir: dir.to_path_buf(),
            sync: SyncPolicy::Never,
            ..WalOptions::default()
        }
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let dir = temp_dir("basic");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        assert_eq!(wal.append(&[Tuple::add(1), Tuple::add(1)]).unwrap(), 1);
        assert_eq!(wal.append(&[Tuple::remove(4)]).unwrap(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.next_lsn(), 3);
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.profile.frequency(1), 2);
        assert_eq!(r.profile.frequency(4), -1);
        assert_eq!(r.checkpoint_lsn, None);
        assert_eq!((r.replayed_records, r.replayed_tuples), (2, 3));
        assert_eq!(r.next_lsn, 3);
        assert!(!r.torn_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = temp_dir("rotate");
        let mut o = opts(&dir);
        o.segment_bytes = 64; // tiny: rotate every couple of records
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..40u32 {
            wal.append(&[Tuple::add(i % 8)]).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(
            segs.len() > 2,
            "expected rotation, got {} segment(s)",
            segs.len()
        );
        assert_eq!(wal.metrics().segments(), segs.len() as u64);
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.replayed_records, 40);
        for x in 0..8 {
            assert_eq!(r.profile.frequency(x), 5, "object {x}");
        }
        // Dump agrees record-for-record.
        let (records, torn) = dump_records(&dir).unwrap();
        assert_eq!(records.len(), 40);
        assert!(!torn);
        assert_eq!(records[0].lsn, 1);
        assert_eq!(records[39].lsn, 40);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_prunes_covered_segments_and_old_checkpoints() {
        let dir = temp_dir("checkpoint");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        o.keep_checkpoints = 2;
        let mut wal = Wal::open(o, 1).unwrap();
        let mut oracle = SProfile::new(8);
        for round in 0..4 {
            for i in 0..20u32 {
                let t = Tuple::add((i + round) % 8);
                oracle.apply(t);
                wal.append(&[t]).unwrap();
            }
            wal.checkpoint(&oracle.to_snapshot_bytes()).unwrap();
        }
        let checkpoints = list_checkpoints(&dir).unwrap();
        assert_eq!(checkpoints.len(), 2, "retains exactly keep_checkpoints");
        assert_eq!(checkpoints.last().unwrap().0, 80);
        let segments = list_segments(&dir).unwrap();
        // Everything below the *older* retained checkpoint (lsn 60) is
        // gone; the live segment survives.
        assert!(
            segments.iter().all(|&(first, _)| first > 40),
            "{segments:?}"
        );
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(80));
        assert_eq!(r.replayed_records, 0);
        assert_eq!(r.next_lsn, 81);
        assert_eq!(
            sprofile::verify::derive_frequencies(&r.profile),
            sprofile::verify::derive_frequencies(&oracle)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_when_the_newest_checkpoint_is_corrupt() {
        let dir = temp_dir("fallback");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let mut wal = Wal::open(o, 1).unwrap();
        let mut oracle = SProfile::new(8);
        for i in 0..30u32 {
            let t = Tuple::add(i % 8);
            oracle.apply(t);
            wal.append(&[t]).unwrap();
            if i == 9 || i == 19 {
                wal.checkpoint(&oracle.to_snapshot_bytes()).unwrap();
            }
        }
        wal.sync().unwrap();
        drop(wal);
        // Corrupt the newest checkpoint's snapshot body.
        let newest = list_checkpoints(&dir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        // Recovery falls back to the lsn-10 checkpoint and replays 20
        // records on top — ending in the exact same state.
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(10));
        assert_eq!(r.replayed_records, 20);
        assert_eq!(
            sprofile::verify::derive_frequencies(&r.profile),
            sprofile::verify::derive_frequencies(&oracle)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_but_cross_segment_corruption_is_fatal() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        for i in 0..10u32 {
            wal.append(&[Tuple::add(i % 4), Tuple::add((i + 1) % 4)])
                .unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let full = fs::read(&seg).unwrap();
        // Truncate mid-final-record: a torn tail; the first 9 records
        // survive.
        fs::write(&seg, &full[..full.len() - 3]).unwrap();
        let r = recover(&dir, 4).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.replayed_records, 9);
        assert_eq!(r.next_lsn, 10);
        fs::remove_dir_all(&dir).ok();

        // Now the multi-segment shape: corruption inside a *non-last*
        // segment is fatal, because the next segment proves records were
        // lost (its first LSN does not chain from the stop point).
        let dir = temp_dir("torn-interior");
        let mut o = opts(&dir);
        o.segment_bytes = 80; // a few records per segment
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..12u32 {
            wal.append(&[Tuple::add(i % 4)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 2, "{segments:?}");
        let first_seg = &segments[0].1;
        let mut bytes = fs::read(first_seg).unwrap();
        let at = SEG_HEADER + 10; // inside the first record's payload
        bytes[at] ^= 1;
        fs::write(first_seg, &bytes).unwrap();
        match recover(&dir, 4) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_after_torn_tail_resumes_and_rerecovers() {
        let dir = temp_dir("resume");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        for i in 0..6u32 {
            wal.append(&[Tuple::add(i % 4)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Tear the tail (lose record 6).
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();
        // Restart: recovery sees 5 records; the resumed writer continues
        // at LSN 6 in a fresh segment.
        let r = recover(&dir, 4).unwrap();
        assert_eq!((r.replayed_records, r.next_lsn), (5, 6));
        let mut wal = Wal::open(opts(&dir), r.next_lsn).unwrap();
        assert_eq!(wal.append(&[Tuple::add(0)]).unwrap(), 6);
        wal.sync().unwrap();
        drop(wal);
        // The second recovery chains across the torn boundary.
        let r = recover(&dir, 4).unwrap();
        assert_eq!(r.replayed_records, 6);
        assert!(!r.torn_tail);
        assert_eq!(r.profile.frequency(0), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn universe_mismatch_is_a_typed_error() {
        let dir = temp_dir("mismatch");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(3)]).unwrap();
        wal.checkpoint(&SProfile::new(8).to_snapshot_bytes())
            .unwrap();
        drop(wal);
        match recover(&dir, 16) {
            Err(PersistError::UniverseMismatch { wal_m, requested_m }) => {
                assert_eq!((wal_m, requested_m), (8, 16));
            }
            other => panic!("expected UniverseMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_record_object_is_corrupt() {
        let dir = temp_dir("oor");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(100)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert!(recover(&dir, 8).is_err());
        assert!(recover(&dir, 128).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_parse_and_always_fsyncs_per_append() {
        assert_eq!(SyncPolicy::parse("ALWAYS", 0), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never", 0), Some(SyncPolicy::Never));
        assert!(matches!(
            SyncPolicy::parse("interval", 25),
            Some(SyncPolicy::Interval(d)) if d.as_millis() == 25
        ));
        assert_eq!(SyncPolicy::parse("sometimes", 0), None);

        let dir = temp_dir("sync-always");
        let mut o = opts(&dir);
        o.sync = SyncPolicy::Always;
        let mut wal = Wal::open(o, 1).unwrap();
        let before = wal.metrics().fsyncs();
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.append(&[Tuple::add(2)]).unwrap();
        assert_eq!(wal.metrics().fsyncs(), before + 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_locked_directory_refuses_a_second_writer() {
        let dir = temp_dir("lock");
        let first = Wal::open(opts(&dir), 1).unwrap();
        match Wal::open(opts(&dir), 1) {
            Err(e @ PersistError::Locked { .. }) => {
                assert!(e.to_string().contains("locked"), "{e}")
            }
            Err(other) => panic!("expected a lock refusal, got {other:?}"),
            Ok(_) => panic!("second writer must be refused"),
        }
        drop(first);
        // Released on drop: the next writer gets in.
        let _second = Wal::open(opts(&dir), 1).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_poisoned_wal_fails_stop_instead_of_writing_past_garbage() {
        let dir = temp_dir("poison");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.poison_for_test();
        assert!(wal.is_poisoned());
        assert!(wal.append(&[Tuple::add(2)]).is_err());
        assert!(wal.sync().is_err());
        assert!(wal
            .checkpoint(&SProfile::new(4).to_snapshot_bytes())
            .is_err());
        drop(wal);
        // Only the pre-poison record is recoverable — and nothing was
        // ever written after the (simulated) bad bytes.
        let r = recover(&dir, 4).unwrap();
        assert_eq!(r.replayed_records, 1);
        assert_eq!(r.profile.frequency(1), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_recovers_fresh_and_missing_dir_is_fresh() {
        let dir = temp_dir("fresh");
        // Missing directory entirely.
        let r = recover(&dir, 5).unwrap();
        assert_eq!((r.next_lsn, r.replayed_records), (1, 0));
        assert!(r.profile.is_empty());
        // Opened but never appended to.
        let wal = Wal::open(opts(&dir), 1).unwrap();
        drop(wal);
        let r = recover(&dir, 5).unwrap();
        assert_eq!((r.next_lsn, r.replayed_records), (1, 0));
        fs::remove_dir_all(&dir).ok();
    }
}
