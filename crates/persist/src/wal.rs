//! The WAL writer: append, group-commit, rotate, checkpoint, prune —
//! plus the read-side hooks log shipping needs (tail subscriptions and
//! a replica-aware pruning floor).

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::epoch::{read_epoch, write_epoch};
use crate::metrics::WalMetrics;
use crate::record::{encode_record, record_size};
use crate::retention::ReplicaRegistry;
use crate::segment::{
    checkpoint_path, encode_checkpoint_header, encode_segment_header, fsync_dir, list_checkpoints,
    list_segments, segment_path, SEG_HEADER,
};
use crate::{PersistError, SyncPolicy};
use sprofile::Tuple;

/// Bounded capacity of one tail subscription. A subscriber that falls
/// this many records behind is dropped (its receiver disconnects) and
/// must catch up from the segment files instead — appends never block
/// on a slow replica.
pub const TAIL_CAPACITY: usize = 1024;

/// One freshly appended record, as delivered to tail subscribers. The
/// tuples are shared (`Arc`), so fanning a record out to several
/// replicas copies nothing.
#[derive(Clone, Debug)]
pub struct TailRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// Its tuples.
    pub tuples: Arc<[Tuple]>,
}

/// A live tail subscription (from [`Wal::subscribe`]). Dropping it
/// marks the subscriber dead so the writer prunes it on its next append
/// *or* subscribe — an idle writer facing a reconnect-looping reader
/// must not accumulate stale senders unboundedly.
pub struct TailSubscription {
    rx: Receiver<TailRecord>,
    alive: Arc<AtomicBool>,
}

impl TailSubscription {
    /// Non-blocking receive of the next committed record.
    pub fn try_recv(&self) -> Result<TailRecord, TryRecvError> {
        self.rx.try_recv()
    }

    /// Receive with a timeout. `Disconnected` means the writer dropped
    /// this subscriber (it lagged past [`TAIL_CAPACITY`]); re-subscribe
    /// and catch up from the files.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<TailRecord, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Blocking iterator over the remaining records (tests/tools).
    pub fn iter(&self) -> mpsc::Iter<'_, TailRecord> {
        self.rx.iter()
    }
}

impl Drop for TailSubscription {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
    }
}

/// Construction knobs for a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Directory holding segments and checkpoints (created if absent).
    pub dir: PathBuf,
    /// fsync cadence; see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes.
    pub segment_bytes: u64,
    /// How many checkpoints to retain when pruning (at least 1; the
    /// default of 2 keeps one fallback should the newest ever fail
    /// validation).
    pub keep_checkpoints: usize,
    /// Attached-replica positions; pruning keeps every segment holding
    /// records the slowest registered replica has not acknowledged
    /// (subject to [`max_retain_bytes`](Self::max_retain_bytes)).
    /// `None`: prune on checkpoints alone.
    pub registry: Option<Arc<ReplicaRegistry>>,
    /// Escape hatch for the replica floor: once the checkpoint-covered
    /// segments pinned *only* by replicas exceed this many bytes, the
    /// oldest are pruned anyway (a stalled replica re-bootstraps from a
    /// checkpoint instead of pinning the disk forever). `u64::MAX`:
    /// unlimited.
    pub max_retain_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            dir: PathBuf::from("wal"),
            sync: SyncPolicy::Interval(std::time::Duration::from_millis(50)),
            segment_bytes: 8 << 20,
            keep_checkpoints: 2,
            registry: None,
            max_retain_bytes: u64::MAX,
        }
    }
}

/// An open, append-only write-ahead log.
///
/// Not internally synchronised: the server serialises appends (and the
/// checkpointer) through a mutex, which is also what makes a checkpoint
/// LSN and the profile state it captures atomic with respect to appends.
pub struct Wal {
    opts: WalOptions,
    file: BufWriter<File>,
    seg_bytes: u64,
    next_lsn: u64,
    last_sync: Instant,
    metrics: Arc<WalMetrics>,
    record_buf: Vec<u8>,
    /// Live tail subscriptions; pruned lazily on fan-out (send failed:
    /// full channel or dropped receiver) and on every new subscribe
    /// (dead `alive` flag).
    subscribers: Vec<(SyncSender<TailRecord>, Arc<AtomicBool>)>,
    /// Whether records were appended since the last fsync — drives the
    /// idle-sync timer ([`Wal::sync_if_stale`]).
    dirty: bool,
    /// Test hook: fail this many upcoming append *writes* after leaving
    /// a torn half-record on disk, to exercise the rotate-and-retry
    /// path.
    #[cfg(test)]
    inject_write_failures: u32,
    /// The replication epoch (generation id) this log last wrote for or
    /// followed; durable in the `epoch` marker file. Only ever moves up.
    epoch: u64,
    /// Set after an append-path I/O error. A partial record may sit at
    /// the segment tail, and anything written after it would be
    /// unreachable to recovery (replay stops at the first bad record) —
    /// so the log fails stop: every later append/sync/checkpoint
    /// returns an error instead of silently losing acknowledged data.
    poisoned: bool,
    /// Advisory exclusive lock on `<dir>/wal.lock`, held for the Wal's
    /// lifetime so a second writer (another server, or an "offline"
    /// `checkpoint` compaction) cannot truncate or prune a live log.
    _lock: File,
}

impl Wal {
    /// Opens `opts.dir` for appending, starting at `next_lsn` (use
    /// [`recover`](crate::recover)'s `next_lsn`; `1` for a fresh log). A
    /// fresh segment is always started: the previous tail segment — torn
    /// or not — is never appended to, which is what keeps torn tails
    /// strictly at segment ends.
    ///
    /// Takes an exclusive advisory lock on `<dir>/wal.lock` (released
    /// on drop); a directory already locked by a live writer is
    /// refused.
    pub fn open(opts: WalOptions, next_lsn: u64) -> Result<Wal, PersistError> {
        assert!(next_lsn >= 1, "LSNs start at 1");
        fs::create_dir_all(&opts.dir)?;
        let lock = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(opts.dir.join("wal.lock"))?;
        if lock.try_lock().is_err() {
            return Err(PersistError::Locked {
                dir: opts.dir.clone(),
            });
        }
        let metrics = Arc::new(WalMetrics::default());
        // A segment file with this first LSN can already exist if a
        // previous run opened it and crashed before appending anything
        // durable; recovery assigned the same next_lsn precisely because
        // it held no valid records, so truncating it is safe.
        let path = segment_path(&opts.dir, next_lsn);
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(&encode_segment_header(next_lsn))?;
        file.flush()?;
        let t = Instant::now();
        file.get_ref().sync_all()?;
        fsync_dir(&opts.dir);
        metrics.on_header(SEG_HEADER as u64);
        metrics.on_fsync(t.elapsed().as_micros() as u64);
        metrics.set_segments(list_segments(&opts.dir)?.len() as u64);
        metrics.set_head_lsn(next_lsn - 1);
        let epoch = read_epoch(&opts.dir);
        metrics.set_epoch(epoch);
        Ok(Wal {
            opts,
            file,
            seg_bytes: SEG_HEADER as u64,
            next_lsn,
            last_sync: Instant::now(),
            metrics,
            record_buf: Vec::new(),
            subscribers: Vec::new(),
            epoch,
            dirty: false,
            #[cfg(test)]
            inject_write_failures: 0,
            poisoned: false,
            _lock: lock,
        })
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }

    /// The LSN the next append will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Shared live counters (readable without holding the WAL lock).
    pub fn metrics(&self) -> Arc<WalMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The replication epoch (generation id) this log carries; read from
    /// the durable `epoch` marker at open (1 for a marker-less log).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Durably advances the epoch to `max(local, floor) + 1` — the
    /// promotion path. `floor` is the highest epoch observed anywhere in
    /// the cluster (so a winner promoting over a peer that already saw a
    /// later generation still lands above it). Returns the new epoch.
    pub fn bump_epoch(&mut self, floor: u64) -> Result<u64, PersistError> {
        let next = self.epoch.max(floor) + 1;
        write_epoch(&self.opts.dir, next)?;
        self.epoch = next;
        self.metrics.set_epoch(next);
        Ok(next)
    }

    /// Durably adopts `epoch` when a followed primary reports a newer
    /// generation; a lower or equal epoch is a no-op (the marker only
    /// moves up). Returns the (possibly unchanged) local epoch.
    pub fn adopt_epoch(&mut self, epoch: u64) -> Result<u64, PersistError> {
        if epoch > self.epoch {
            write_epoch(&self.opts.dir, epoch)?;
            self.epoch = epoch;
            self.metrics.set_epoch(epoch);
        }
        Ok(self.epoch)
    }

    /// Appends one record holding `tuples` and commits it according to
    /// the sync policy; returns the record's LSN. On return the record
    /// bytes have always reached the kernel (`write`-flushed), so a
    /// crashed *process* loses nothing; whether they survived power loss
    /// is the [`SyncPolicy`]'s call.
    ///
    /// A failed *write* (which may leave a torn record at the segment
    /// tail) is retried once on a freshly created segment starting at
    /// the same LSN — the exact chain shape recovery already accepts
    /// after a crash-and-restart — so a transient I/O error resumes
    /// durability without a server restart. If the retry (or an fsync,
    /// whose failure leaves the record's durability unknowable) also
    /// fails, the log fail-stops: every later call errors rather than
    /// writing records recovery could never reach.
    pub fn append(&mut self, tuples: &[Tuple]) -> Result<u64, PersistError> {
        self.check_poisoned()?;
        let result = match self.append_inner(tuples) {
            Ok(lsn) => Ok(lsn),
            Err(AppendError {
                retriable: true, ..
            }) => self
                .reopen_segment()
                .and_then(|()| self.append_inner(tuples).map_err(|e| e.error)),
            Err(AppendError { error, .. }) => Err(error),
        };
        match result {
            Ok(lsn) => {
                self.fan_out(lsn, tuples);
                Ok(lsn)
            }
            Err(e) => {
                // A partial record may sit at the tail and the rotate
                // retry is exhausted; anything appended after it would
                // be unreachable to replay. Fail stop instead of
                // silently losing acked data.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn append_inner(&mut self, tuples: &[Tuple]) -> Result<u64, AppendError> {
        if self.seg_bytes + record_size(tuples.len()) as u64 > self.opts.segment_bytes
            && self.seg_bytes > SEG_HEADER as u64
        {
            // Rotation failures are not retried by another rotation:
            // nothing of the new record has been written yet.
            self.rotate().map_err(AppendError::fatal)?;
        }
        self.record_buf.clear();
        encode_record(self.epoch, tuples, &mut self.record_buf);
        #[cfg(test)]
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            // Simulate a torn write: half the record reaches the file.
            let _ = self
                .file
                .write_all(&self.record_buf[..self.record_buf.len() / 2]);
            let _ = self.file.flush();
            return Err(AppendError {
                error: PersistError::Io(std::io::Error::other("injected write failure")),
                retriable: true,
            });
        }
        // Write phase: a failure here may tear the segment tail, which a
        // fresh segment can recover from — retriable.
        self.file
            .write_all(&self.record_buf)
            .and_then(|()| self.file.flush())
            .map_err(|e| AppendError {
                error: e.into(),
                retriable: true,
            })?;
        // The record is fully in the kernel: commit the writer state.
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.seg_bytes += self.record_buf.len() as u64;
        self.dirty = true;
        self.metrics
            .on_append(tuples.len() as u64, self.record_buf.len() as u64);
        self.metrics.set_head_lsn(lsn);
        // Sync phase: an fsync failure is *not* retriable — the record
        // is already durably-queued, and appending it again would
        // duplicate it.
        match self.opts.sync {
            SyncPolicy::Always => self.fsync().map_err(AppendError::fatal)?,
            SyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.fsync().map_err(AppendError::fatal)?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Delivers a committed record to every live tail subscription,
    /// dropping subscribers that are full (lagging past
    /// [`TAIL_CAPACITY`]) or gone.
    fn fan_out(&mut self, lsn: u64, tuples: &[Tuple]) {
        if self.subscribers.is_empty() {
            return;
        }
        let shared: Arc<[Tuple]> = tuples.into();
        self.subscribers.retain(|(tx, alive)| {
            alive.load(Ordering::Acquire)
                && tx
                    .try_send(TailRecord {
                        lsn,
                        tuples: Arc::clone(&shared),
                    })
                    .is_ok()
        });
    }

    /// Subscribes to the live tail: every record committed from now on
    /// is delivered on the returned channel. Also returns the current
    /// `next_lsn` — every record *below* it is fully flushed to the
    /// segment files (read them with
    /// [`SegmentReader`](crate::SegmentReader)), every record at or
    /// above it arrives on the channel, with no gap and no overlap. Call
    /// this under whatever lock serialises appends to make that split
    /// atomic.
    ///
    /// A subscriber that falls more than [`TAIL_CAPACITY`] records
    /// behind is dropped (the receiver disconnects) and must
    /// re-subscribe and catch up from the files.
    pub fn subscribe(&mut self) -> (u64, TailSubscription) {
        // Prune dropped subscriptions here too: fan-out only runs on
        // append, so an *idle* log facing a reconnect-looping reader
        // would otherwise grow this vector without bound.
        self.subscribers
            .retain(|(_, alive)| alive.load(Ordering::Acquire));
        let (tx, rx) = sync_channel(TAIL_CAPACITY);
        let alive = Arc::new(AtomicBool::new(true));
        self.subscribers.push((tx, Arc::clone(&alive)));
        (self.next_lsn, TailSubscription { rx, alive })
    }

    /// Fsyncs if records were appended since the last fsync and the
    /// [`SyncPolicy::Interval`] cadence has elapsed — the idle-timer
    /// companion to the append-piggybacked interval sync, bounding the
    /// crash-loss window even when appends stop arriving. Returns
    /// whether an fsync was issued. No-op under `Always` (never dirty)
    /// and `Never` (never syncs).
    ///
    /// A failed fsync fail-stops the log, exactly like a failed
    /// append-path fsync: the kernel may have dropped the dirty pages,
    /// after which a later fsync would report success without the acked
    /// records ever reaching disk — continuing would silently void the
    /// durability contract.
    pub fn sync_if_stale(&mut self) -> Result<bool, PersistError> {
        // An already-poisoned log is a no-op, not an error: the failure
        // is recorded once, and a periodic caller hammering this would
        // otherwise inflate the error count forever.
        if self.poisoned {
            return Ok(false);
        }
        let SyncPolicy::Interval(every) = self.opts.sync else {
            return Ok(false);
        };
        if !self.dirty || self.last_sync.elapsed() < every {
            return Ok(false);
        }
        let result = self
            .file
            .flush()
            .map_err(PersistError::from)
            .and_then(|()| self.fsync());
        match result {
            Ok(()) => Ok(true),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Whether the log has fail-stopped after an append error.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    #[cfg(test)]
    fn poison_for_test(&mut self) {
        self.poisoned = true;
    }

    fn check_poisoned(&self) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::corrupt(
                "wal fail-stopped after an earlier append error",
                Some(&self.opts.dir),
            ));
        }
        Ok(())
    }

    /// Forces everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.check_poisoned()?;
        self.file.flush()?;
        self.fsync()
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        let t = Instant::now();
        self.file.get_ref().sync_data()?;
        self.metrics.on_fsync(t.elapsed().as_micros() as u64);
        self.last_sync = Instant::now();
        self.dirty = false;
        Ok(())
    }

    /// Creates (truncating if present) the segment file for the current
    /// `next_lsn` and makes it the live write target, without touching
    /// the previous file. Updates the header/fsync metrics but not the
    /// segment count — callers know whether the path is new.
    fn start_segment(&mut self) -> Result<(), PersistError> {
        let path = segment_path(&self.opts.dir, self.next_lsn);
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(&encode_segment_header(self.next_lsn))?;
        file.flush()?;
        let t = Instant::now();
        file.get_ref().sync_all()?;
        fsync_dir(&self.opts.dir);
        self.metrics.on_header(SEG_HEADER as u64);
        self.metrics.on_fsync(t.elapsed().as_micros() as u64);
        self.file = file;
        self.seg_bytes = SEG_HEADER as u64;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the current segment (fully synced) and starts the next one.
    fn rotate(&mut self) -> Result<(), PersistError> {
        self.file.flush()?;
        let t = Instant::now();
        self.file.get_ref().sync_data()?;
        self.metrics.on_fsync(t.elapsed().as_micros() as u64);
        self.dirty = false;
        self.start_segment()?;
        self.metrics.add_segments(1);
        Ok(())
    }

    /// Abandons the current segment *without* flushing it (its tail may
    /// hold the torn bytes of a failed write) and starts a fresh one at
    /// the still-unassigned `next_lsn`. Recovery accepts the resulting
    /// shape — a torn segment whose successor resumes at exactly the
    /// torn LSN — as the crash-and-restart signature. When the current
    /// segment holds no committed records, the fresh file truncates the
    /// same path (the partial bytes are simply erased).
    fn reopen_segment(&mut self) -> Result<(), PersistError> {
        // Best-effort fsync of the abandoned segment first: its
        // *committed* records (already write-flushed at their append)
        // may not have been fsynced yet under an interval policy, and no
        // future fsync will ever target this file again. The torn bytes
        // of the failed write don't matter — recovery tolerates the
        // tear. If this sync also fails, the interval loss window for
        // those records widens; the record that triggered the retry is
        // still protected by its own append-path sync.
        let t = Instant::now();
        if let Ok(()) = self.file.get_ref().sync_data() {
            self.metrics.on_fsync(t.elapsed().as_micros() as u64);
        }
        let new_path = self.seg_bytes > SEG_HEADER as u64;
        self.start_segment()?;
        if new_path {
            self.metrics.add_segments(1);
        }
        Ok(())
    }

    /// Writes a checkpoint covering every record appended so far (the
    /// caller supplies `snapshot` — [`sprofile::SProfile`] snapshot
    /// bytes capturing exactly that state), then prunes fully covered
    /// segments and superseded checkpoints. Returns the checkpoint LSN.
    ///
    /// Crash-ordering: the WAL is fsynced first, the checkpoint is
    /// written to a temp file, fsynced, renamed into place, and the
    /// directory fsynced — only then is anything deleted. A crash at any
    /// point leaves either the old state (checkpoint absent/ignored) or
    /// the new one (checkpoint durable), never a hole.
    pub fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, PersistError> {
        self.check_poisoned()?;
        self.sync()?;
        let lsn = self.next_lsn - 1;
        self.write_checkpoint_file(lsn, snapshot)?;
        self.prune()?;
        Ok(lsn)
    }

    /// Durably writes the checkpoint file for `lsn` (temp + rename +
    /// directory fsync).
    fn write_checkpoint_file(&mut self, lsn: u64, snapshot: &[u8]) -> Result<(), PersistError> {
        let t = Instant::now();
        let final_path = checkpoint_path(&self.opts.dir, lsn);
        let tmp_path = final_path.with_extension("ck.tmp");
        {
            let mut f = BufWriter::new(File::create(&tmp_path)?);
            f.write_all(&encode_checkpoint_header(lsn, snapshot.len() as u64))?;
            f.write_all(snapshot)?;
            f.flush()?;
            f.get_ref().sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        fsync_dir(&self.opts.dir);
        self.metrics.on_checkpoint(t.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Replaces the *entire* log with an externally supplied checkpoint
    /// covering `1..=lsn` — the replica bootstrap path, when the
    /// primary's log no longer reaches back to this replica's position
    /// (so `lsn` is always at or past the local head; anything else is
    /// refused). Crash-ordering: the checkpoint is written durably
    /// **first**, then the old segments and superseded checkpoints are
    /// deleted, then a fresh live segment starts at `lsn + 1`. Every
    /// crash point leaves a recoverable directory — before the
    /// checkpoint lands, the old log is intact (the replica simply
    /// re-bootstraps); after it, recovery loads the new checkpoint and
    /// skips any old files still present (their LSNs all precede it).
    /// Clears a poisoned flag: the torn tail it guarded is deleted with
    /// everything else.
    pub fn reset_to_checkpoint(&mut self, lsn: u64, snapshot: &[u8]) -> Result<(), PersistError> {
        if lsn + 1 < self.next_lsn {
            return Err(PersistError::corrupt(
                "bootstrap checkpoint predates the local head",
                Some(&self.opts.dir),
            ));
        }
        self.write_checkpoint_file(lsn, snapshot)?;
        for (_, path) in list_segments(&self.opts.dir)? {
            fs::remove_file(path)?;
        }
        for (l, path) in list_checkpoints(&self.opts.dir)? {
            if l != lsn {
                fs::remove_file(path)?;
            }
        }
        fsync_dir(&self.opts.dir);
        self.next_lsn = lsn + 1;
        self.start_segment()?;
        self.metrics.set_segments(1);
        self.metrics.set_head_lsn(lsn);
        self.poisoned = false;
        self.dirty = false;
        Ok(())
    }

    /// Deletes checkpoints beyond the newest `keep_checkpoints` and
    /// every segment fully covered by the *oldest retained* checkpoint
    /// (so falling back one checkpoint always finds the records it
    /// needs) — except segments a registered replica still needs: the
    /// pruning floor drops to the slowest replica's acknowledged LSN,
    /// subject to the `max_retain_bytes` budget on replica-pinned bytes.
    /// The current segment is never deleted.
    fn prune(&mut self) -> Result<(), PersistError> {
        let checkpoints = list_checkpoints(&self.opts.dir)?;
        let keep = self.opts.keep_checkpoints.max(1);
        let cut = checkpoints.len().saturating_sub(keep);
        for (_, path) in &checkpoints[..cut] {
            fs::remove_file(path)?;
        }
        let Some((ckpt_floor, _)) = checkpoints.get(cut) else {
            return Ok(());
        };
        let replica_floor = self
            .opts
            .registry
            .as_ref()
            .and_then(|r| r.floor())
            .unwrap_or(u64::MAX);
        let segments = list_segments(&self.opts.dir)?;
        let mut deleted = 0i64;
        // Checkpoint-covered segments pinned only by replicas, oldest
        // first — candidates for the byte-budget escape hatch.
        let mut pinned: Vec<(&PathBuf, u64)> = Vec::new();
        for i in 0..segments.len() {
            // Segment i's records all precede segment i+1's first LSN;
            // the last segment (the live one) has no successor and is
            // always kept.
            let Some((next_first, _)) = segments.get(i + 1) else {
                break;
            };
            if *next_first > ckpt_floor + 1 {
                continue; // holds records past the checkpoint: kept
            }
            if *next_first <= replica_floor.saturating_add(1) {
                fs::remove_file(&segments[i].1)?;
                deleted += 1;
            } else {
                let bytes = fs::metadata(&segments[i].1).map(|m| m.len()).unwrap_or(0);
                pinned.push((&segments[i].1, bytes));
            }
        }
        // Escape hatch: a stalled replica must not pin unbounded disk.
        // Once the pinned bytes exceed the budget, prune oldest-first
        // until back under it (the replica will bootstrap from a
        // checkpoint when it next catches up).
        let mut pinned_bytes: u64 = pinned.iter().map(|&(_, b)| b).sum();
        for (path, bytes) in pinned {
            if pinned_bytes <= self.opts.max_retain_bytes {
                break;
            }
            fs::remove_file(path)?;
            deleted += 1;
            pinned_bytes -= bytes;
        }
        if deleted > 0 {
            self.metrics.add_segments(-deleted);
            fsync_dir(&self.opts.dir);
        }
        Ok(())
    }
}

/// Internal append failure, tagged with whether rotating to a fresh
/// segment and retrying can salvage it.
struct AppendError {
    error: PersistError,
    retriable: bool,
}

impl AppendError {
    fn fatal(error: PersistError) -> AppendError {
        AppendError {
            error,
            retriable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::{dump_records, recover};
    use sprofile::SProfile;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sprofile-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> WalOptions {
        WalOptions {
            dir: dir.to_path_buf(),
            sync: SyncPolicy::Never,
            ..WalOptions::default()
        }
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let dir = temp_dir("basic");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        assert_eq!(wal.append(&[Tuple::add(1), Tuple::add(1)]).unwrap(), 1);
        assert_eq!(wal.append(&[Tuple::remove(4)]).unwrap(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.next_lsn(), 3);
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.profile.frequency(1), 2);
        assert_eq!(r.profile.frequency(4), -1);
        assert_eq!(r.checkpoint_lsn, None);
        assert_eq!((r.replayed_records, r.replayed_tuples), (2, 3));
        assert_eq!(r.next_lsn, 3);
        assert!(!r.torn_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = temp_dir("rotate");
        let mut o = opts(&dir);
        o.segment_bytes = 64; // tiny: rotate every couple of records
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..40u32 {
            wal.append(&[Tuple::add(i % 8)]).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(
            segs.len() > 2,
            "expected rotation, got {} segment(s)",
            segs.len()
        );
        assert_eq!(wal.metrics().segments(), segs.len() as u64);
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.replayed_records, 40);
        for x in 0..8 {
            assert_eq!(r.profile.frequency(x), 5, "object {x}");
        }
        // Dump agrees record-for-record.
        let (records, torn) = dump_records(&dir).unwrap();
        assert_eq!(records.len(), 40);
        assert!(!torn);
        assert_eq!(records[0].lsn, 1);
        assert_eq!(records[39].lsn, 40);
        assert!(records.iter().all(|r| r.epoch == 1), "epoch-1 stamps");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_prunes_covered_segments_and_old_checkpoints() {
        let dir = temp_dir("checkpoint");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        o.keep_checkpoints = 2;
        let mut wal = Wal::open(o, 1).unwrap();
        let mut oracle = SProfile::new(8);
        for round in 0..4 {
            for i in 0..20u32 {
                let t = Tuple::add((i + round) % 8);
                oracle.apply(t);
                wal.append(&[t]).unwrap();
            }
            wal.checkpoint(&oracle.to_snapshot_bytes()).unwrap();
        }
        let checkpoints = list_checkpoints(&dir).unwrap();
        assert_eq!(checkpoints.len(), 2, "retains exactly keep_checkpoints");
        assert_eq!(checkpoints.last().unwrap().0, 80);
        let segments = list_segments(&dir).unwrap();
        // Everything below the *older* retained checkpoint (lsn 60) is
        // gone; the live segment survives.
        assert!(
            segments.iter().all(|&(first, _)| first > 40),
            "{segments:?}"
        );
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(80));
        assert_eq!(r.replayed_records, 0);
        assert_eq!(r.next_lsn, 81);
        assert_eq!(
            sprofile::verify::derive_frequencies(&r.profile),
            sprofile::verify::derive_frequencies(&oracle)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_when_the_newest_checkpoint_is_corrupt() {
        let dir = temp_dir("fallback");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let mut wal = Wal::open(o, 1).unwrap();
        let mut oracle = SProfile::new(8);
        for i in 0..30u32 {
            let t = Tuple::add(i % 8);
            oracle.apply(t);
            wal.append(&[t]).unwrap();
            if i == 9 || i == 19 {
                wal.checkpoint(&oracle.to_snapshot_bytes()).unwrap();
            }
        }
        wal.sync().unwrap();
        drop(wal);
        // Corrupt the newest checkpoint's snapshot body.
        let newest = list_checkpoints(&dir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        // Recovery falls back to the lsn-10 checkpoint and replays 20
        // records on top — ending in the exact same state.
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(10));
        assert_eq!(r.replayed_records, 20);
        assert_eq!(
            sprofile::verify::derive_frequencies(&r.profile),
            sprofile::verify::derive_frequencies(&oracle)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_but_cross_segment_corruption_is_fatal() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        for i in 0..10u32 {
            wal.append(&[Tuple::add(i % 4), Tuple::add((i + 1) % 4)])
                .unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let full = fs::read(&seg).unwrap();
        // Truncate mid-final-record: a torn tail; the first 9 records
        // survive.
        fs::write(&seg, &full[..full.len() - 3]).unwrap();
        let r = recover(&dir, 4).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.replayed_records, 9);
        assert_eq!(r.next_lsn, 10);
        fs::remove_dir_all(&dir).ok();

        // Now the multi-segment shape: corruption inside a *non-last*
        // segment is fatal, because the next segment proves records were
        // lost (its first LSN does not chain from the stop point).
        let dir = temp_dir("torn-interior");
        let mut o = opts(&dir);
        o.segment_bytes = 80; // a few records per segment
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..12u32 {
            wal.append(&[Tuple::add(i % 4)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 2, "{segments:?}");
        let first_seg = &segments[0].1;
        let mut bytes = fs::read(first_seg).unwrap();
        let at = SEG_HEADER + 10; // inside the first record's payload
        bytes[at] ^= 1;
        fs::write(first_seg, &bytes).unwrap();
        match recover(&dir, 4) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_after_torn_tail_resumes_and_rerecovers() {
        let dir = temp_dir("resume");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        for i in 0..6u32 {
            wal.append(&[Tuple::add(i % 4)]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Tear the tail (lose record 6).
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();
        // Restart: recovery sees 5 records; the resumed writer continues
        // at LSN 6 in a fresh segment.
        let r = recover(&dir, 4).unwrap();
        assert_eq!((r.replayed_records, r.next_lsn), (5, 6));
        let mut wal = Wal::open(opts(&dir), r.next_lsn).unwrap();
        assert_eq!(wal.append(&[Tuple::add(0)]).unwrap(), 6);
        wal.sync().unwrap();
        drop(wal);
        // The second recovery chains across the torn boundary.
        let r = recover(&dir, 4).unwrap();
        assert_eq!(r.replayed_records, 6);
        assert!(!r.torn_tail);
        assert_eq!(r.profile.frequency(0), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn universe_mismatch_is_a_typed_error() {
        let dir = temp_dir("mismatch");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(3)]).unwrap();
        wal.checkpoint(&SProfile::new(8).to_snapshot_bytes())
            .unwrap();
        drop(wal);
        match recover(&dir, 16) {
            Err(PersistError::UniverseMismatch { wal_m, requested_m }) => {
                assert_eq!((wal_m, requested_m), (8, 16));
            }
            other => panic!("expected UniverseMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_record_object_is_corrupt() {
        let dir = temp_dir("oor");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(100)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert!(recover(&dir, 8).is_err());
        assert!(recover(&dir, 128).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_parse_and_always_fsyncs_per_append() {
        assert_eq!(SyncPolicy::parse("ALWAYS", 0), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never", 0), Some(SyncPolicy::Never));
        assert!(matches!(
            SyncPolicy::parse("interval", 25),
            Some(SyncPolicy::Interval(d)) if d.as_millis() == 25
        ));
        assert_eq!(SyncPolicy::parse("sometimes", 0), None);

        let dir = temp_dir("sync-always");
        let mut o = opts(&dir);
        o.sync = SyncPolicy::Always;
        let mut wal = Wal::open(o, 1).unwrap();
        let before = wal.metrics().fsyncs();
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.append(&[Tuple::add(2)]).unwrap();
        assert_eq!(wal.metrics().fsyncs(), before + 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_locked_directory_refuses_a_second_writer() {
        let dir = temp_dir("lock");
        let first = Wal::open(opts(&dir), 1).unwrap();
        match Wal::open(opts(&dir), 1) {
            Err(e @ PersistError::Locked { .. }) => {
                assert!(e.to_string().contains("locked"), "{e}")
            }
            Err(other) => panic!("expected a lock refusal, got {other:?}"),
            Ok(_) => panic!("second writer must be refused"),
        }
        drop(first);
        // Released on drop: the next writer gets in.
        let _second = Wal::open(opts(&dir), 1).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_poisoned_wal_fails_stop_instead_of_writing_past_garbage() {
        let dir = temp_dir("poison");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.poison_for_test();
        assert!(wal.is_poisoned());
        assert!(wal.append(&[Tuple::add(2)]).is_err());
        assert!(wal.sync().is_err());
        assert!(wal
            .checkpoint(&SProfile::new(4).to_snapshot_bytes())
            .is_err());
        drop(wal);
        // Only the pre-poison record is recoverable — and nothing was
        // ever written after the (simulated) bad bytes.
        let r = recover(&dir, 4).unwrap();
        assert_eq!(r.replayed_records, 1);
        assert_eq!(r.profile.frequency(1), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_failed_append_write_rotates_and_retries_once() {
        let dir = temp_dir("retry");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.append(&[Tuple::add(2)]).unwrap();
        // The next append's write fails, leaving half a record at the
        // tail; the retry lands it on a fresh segment at the same LSN.
        wal.inject_write_failures = 1;
        assert_eq!(wal.append(&[Tuple::add(3)]).unwrap(), 3);
        assert!(!wal.is_poisoned());
        // The log keeps going normally afterwards.
        assert_eq!(wal.append(&[Tuple::add(3)]).unwrap(), 4);
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert_eq!(segs[1].0, 3, "fresh segment resumes at the torn LSN");
        assert_eq!(wal.metrics().segments(), 2);
        drop(wal);
        // Recovery chains across the abandoned torn tail: all four
        // records survive.
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.replayed_records, 4);
        assert!(!r.torn_tail);
        assert_eq!(r.profile.frequency(3), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_failed_retry_fail_stops_with_only_durable_records_recoverable() {
        let dir = temp_dir("retry-poison");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(1)]).unwrap();
        // Both the append and its rotate-retry fail: fail stop.
        wal.inject_write_failures = 2;
        assert!(wal.append(&[Tuple::add(2)]).is_err());
        assert!(wal.is_poisoned());
        assert!(wal.append(&[Tuple::add(3)]).is_err());
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.replayed_records, 1);
        assert_eq!(r.profile.frequency(1), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_sync_fires_only_when_dirty_and_stale() {
        let dir = temp_dir("idle-sync");
        let mut o = opts(&dir);
        o.sync = SyncPolicy::Interval(std::time::Duration::from_millis(40));
        let mut wal = Wal::open(o, 1).unwrap();
        // Clean log: nothing to sync no matter how long it idles.
        assert!(!wal.sync_if_stale().unwrap());
        // An append inside the interval neither piggybacks an fsync nor
        // trips the idle timer yet.
        wal.append(&[Tuple::add(1)]).unwrap();
        let fsyncs = wal.metrics().fsyncs();
        assert!(!wal.sync_if_stale().unwrap());
        assert_eq!(wal.metrics().fsyncs(), fsyncs);
        // The idle timer catches the unsynced tail once the interval
        // elapses — even though no further append ever arrives.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(wal.sync_if_stale().unwrap());
        assert_eq!(wal.metrics().fsyncs(), fsyncs + 1);
        // Now clean again: the timer stays quiet.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!wal.sync_if_stale().unwrap());

        // Never / Always policies never idle-sync.
        for sync in [SyncPolicy::Never, SyncPolicy::Always] {
            let dir = temp_dir(&format!("idle-{}", sync.name()));
            let mut o = opts(&dir);
            o.sync = sync;
            let mut wal = Wal::open(o, 1).unwrap();
            wal.append(&[Tuple::add(1)]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(!wal.sync_if_stale().unwrap(), "{sync:?}");
            fs::remove_dir_all(&dir).ok();
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_subscription_sees_every_later_append_and_drops_laggards() {
        let dir = temp_dir("tail");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        wal.append(&[Tuple::add(1)]).unwrap();
        let (next, rx) = wal.subscribe();
        assert_eq!(next, 2, "record 1 is on disk, not on the channel");
        wal.append(&[Tuple::add(2), Tuple::add(3)]).unwrap();
        wal.append(&[Tuple::remove(4)]).unwrap();
        let rec = rx.try_recv().unwrap();
        assert_eq!(rec.lsn, 2);
        assert_eq!(&rec.tuples[..], &[Tuple::add(2), Tuple::add(3)]);
        assert_eq!(rx.try_recv().unwrap().lsn, 3);
        // A subscriber that stops draining is dropped once the channel
        // fills; the sender side never blocks an append.
        for i in 0..(TAIL_CAPACITY as u32 + 10) {
            wal.append(&[Tuple::add(i % 8)]).unwrap();
        }
        let drained = rx.iter().count();
        assert_eq!(drained, TAIL_CAPACITY, "channel held exactly its bound");
        // A dropped receiver is pruned on the next fan-out.
        let (_, rx2) = wal.subscribe();
        drop(rx2);
        wal.append(&[Tuple::add(0)]).unwrap();
        assert!(wal.subscribers.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_resubscribes_do_not_accumulate_dead_senders() {
        let dir = temp_dir("sub-churn");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        // A reconnect-looping reader against an *idle* log: no appends
        // ever run fan-out, so subscribe() itself must prune.
        for _ in 0..100 {
            let (_, sub) = wal.subscribe();
            drop(sub);
        }
        assert!(
            wal.subscribers.len() <= 1,
            "{} stale subscribers retained",
            wal.subscribers.len()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_to_checkpoint_is_recoverable_at_every_crash_point() {
        // The bootstrap write order is checkpoint-first; emulate the
        // worst crash window — checkpoint landed, old files not yet
        // deleted, no fresh segment — and require recovery to pick the
        // new checkpoint and ignore the stale history.
        let dir = temp_dir("reset-ckpt");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..20u32 {
            wal.append(&[Tuple::add(i % 8)]).unwrap();
        }
        wal.sync().unwrap();
        let mut target = SProfile::new(8);
        for _ in 0..3 {
            target.apply(Tuple::add(5));
        }
        // Hand-write the bootstrap checkpoint at lsn 100 next to the
        // old segments, exactly what a crash mid-reset leaves behind.
        let snap = target.to_snapshot_bytes();
        let mut bytes = encode_checkpoint_header(100, snap.len() as u64).to_vec();
        bytes.extend_from_slice(&snap);
        fs::write(checkpoint_path(&dir, 100), &bytes).unwrap();
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(100));
        assert_eq!(r.replayed_records, 0);
        assert_eq!(r.next_lsn, 101);
        assert_eq!(r.profile.frequency(5), 3);
        fs::remove_dir_all(&dir).ok();

        // The completed reset leaves the same recoverable state, with
        // the old files gone and appends chaining at lsn 101.
        let dir = temp_dir("reset-ckpt-done");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let mut wal = Wal::open(o, 1).unwrap();
        for i in 0..20u32 {
            wal.append(&[Tuple::add(i % 8)]).unwrap();
        }
        // A checkpoint below the local head is refused (divergence, not
        // bootstrap).
        assert!(wal.reset_to_checkpoint(3, &snap).is_err());
        wal.reset_to_checkpoint(100, &snap).unwrap();
        assert_eq!(wal.next_lsn(), 101);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        assert_eq!(wal.append(&[Tuple::add(0)]).unwrap(), 101);
        wal.sync().unwrap();
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(100));
        assert_eq!((r.replayed_records, r.next_lsn), (1, 102));
        assert_eq!(r.profile.frequency(5), 3);
        assert_eq!(r.profile.frequency(0), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_checkpoints_boundary_of_one_retains_exactly_the_newest() {
        let dir = temp_dir("keep-one");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        o.keep_checkpoints = 1;
        let mut wal = Wal::open(o, 1).unwrap();
        let mut state = SProfile::new(8);
        for round in 0..3 {
            for i in 0..20u32 {
                let t = Tuple::add((i + round) % 8);
                state.apply(t);
                wal.append(&[t]).unwrap();
            }
            wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
        }
        let checkpoints = list_checkpoints(&dir).unwrap();
        assert_eq!(checkpoints.len(), 1);
        assert_eq!(checkpoints[0].0, 60);
        // Every non-live segment is covered by that checkpoint and gone.
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "{segments:?}");
        drop(wal);
        let r = recover(&dir, 8).unwrap();
        assert_eq!(r.checkpoint_lsn, Some(60));
        assert_eq!(
            sprofile::verify::derive_frequencies(&r.profile),
            sprofile::verify::derive_frequencies(&state)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_registered_replica_pins_segments_past_its_acked_lsn() {
        let dir = temp_dir("replica-pin");
        let registry = ReplicaRegistry::new();
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        o.registry = Some(Arc::clone(&registry));
        let mut wal = Wal::open(o, 1).unwrap();
        let slot = registry.register(4); // needs every record past lsn 4
        let mut state = SProfile::new(8);
        for i in 0..40u32 {
            let t = Tuple::add(i % 8);
            state.apply(t);
            wal.append(&[t]).unwrap();
        }
        wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
        // The checkpoint covers everything, but the replica has only
        // acked lsn 4: records 5.. (and the segments holding them) stay.
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "{segments:?}");
        assert!(
            segments[0].0 <= 5,
            "record 5 must still be on disk: {segments:?}"
        );
        let reader = crate::SegmentReader::new(&dir);
        assert_eq!(reader.collect_range(5, 41).unwrap().len(), 36);
        // Once the replica catches up, the next checkpoint prunes fully.
        slot.ack(40);
        wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_retain_bytes_unpins_a_stalled_replica() {
        let dir = temp_dir("retain-cap");
        let registry = ReplicaRegistry::new();
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        o.registry = Some(Arc::clone(&registry));
        o.max_retain_bytes = 200; // a couple of tiny segments
        let mut wal = Wal::open(o, 1).unwrap();
        let _slot = registry.register(0); // stalled: never acks anything
        let mut state = SProfile::new(8);
        for i in 0..80u32 {
            let t = Tuple::add(i % 8);
            state.apply(t);
            wal.append(&[t]).unwrap();
        }
        wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
        // The stalled replica wanted everything retained, but the byte
        // budget capped it: oldest pinned segments were pruned, and what
        // remains (live segment excluded) fits the budget.
        let segments = list_segments(&dir).unwrap();
        let pinned_bytes: u64 = segments
            .iter()
            .take(segments.len() - 1)
            .map(|(_, p)| fs::metadata(p).unwrap().len())
            .sum();
        assert!(
            pinned_bytes <= 200,
            "pinned {pinned_bytes} bytes over budget: {segments:?}"
        );
        assert!(
            segments[0].0 > 1,
            "oldest segments must be gone: {segments:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_bumps_and_adoptions_survive_a_restart() {
        let dir = temp_dir("epoch");
        let mut wal = Wal::open(opts(&dir), 1).unwrap();
        assert_eq!(wal.epoch(), 1, "fresh log starts at generation 1");
        assert_eq!(wal.metrics().epoch(), 1);
        // Promotion over a cluster that already saw epoch 4 lands at 5.
        assert_eq!(wal.bump_epoch(4).unwrap(), 5);
        assert_eq!(wal.epoch(), 5);
        // Adoption only moves up.
        assert_eq!(wal.adopt_epoch(3).unwrap(), 5);
        assert_eq!(wal.adopt_epoch(9).unwrap(), 9);
        assert_eq!(wal.metrics().epoch(), 9);
        // Records appended from here on carry the live epoch stamp.
        wal.append(&[Tuple::add(1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // The marker is durable: reopen and recover both see it.
        let mut wal = Wal::open(opts(&dir), 2).unwrap();
        assert_eq!(wal.epoch(), 9);
        assert_eq!(wal.bump_epoch(0).unwrap(), 10);
        wal.append(&[Tuple::add(2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(recover(&dir, 8).unwrap().epoch, 10);
        // Per-record stamps expose which generation wrote what.
        let (records, _) = dump_records(&dir).unwrap();
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![9, 10]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_recovers_fresh_and_missing_dir_is_fresh() {
        let dir = temp_dir("fresh");
        // Missing directory entirely.
        let r = recover(&dir, 5).unwrap();
        assert_eq!((r.next_lsn, r.replayed_records), (1, 0));
        assert!(r.profile.is_empty());
        // Opened but never appended to.
        let wal = Wal::open(opts(&dir), 1).unwrap();
        drop(wal);
        let r = recover(&dir, 5).unwrap();
        assert_eq!((r.next_lsn, r.replayed_records), (1, 0));
        fs::remove_dir_all(&dir).ok();
    }
}
