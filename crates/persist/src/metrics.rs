//! WAL metrics: lock-free counters the server renders into `STATS`
//! without taking the WAL mutex.

use std::sync::atomic::{AtomicU64, Ordering};

use sprofile_obs::hist::AtomicLogHistogram;

/// Counters describing a [`Wal`](crate::Wal)'s lifetime activity. One
/// instance is shared (`Arc`) between the writer and any observers; all
/// loads/stores are relaxed — these are diagnostics, not
/// synchronisation.
#[derive(Debug, Default)]
pub struct WalMetrics {
    records: AtomicU64,
    tuples: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    segments: AtomicU64,
    checkpoints: AtomicU64,
    head_lsn: AtomicU64,
    epoch: AtomicU64,
    fsync_us: AtomicLogHistogram,
    checkpoint_us: AtomicLogHistogram,
    lock_wait_us: AtomicLogHistogram,
    group_batch: AtomicLogHistogram,
    checkpoint_pause_us: AtomicLogHistogram,
}

macro_rules! counter {
    ($(#[$doc:meta])* $get:ident, $field:ident) => {
        $(#[$doc])*
        pub fn $get(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        }
    };
}

impl WalMetrics {
    counter!(
        /// Records appended.
        records,
        records
    );
    counter!(
        /// Tuples inside appended records.
        tuples,
        tuples
    );
    counter!(
        /// Bytes written to segments (headers + records).
        bytes,
        bytes
    );
    counter!(
        /// `fsync` calls issued.
        fsyncs,
        fsyncs
    );
    counter!(
        /// Live segment files (gauge).
        segments,
        segments
    );
    counter!(
        /// Checkpoints written.
        checkpoints,
        checkpoints
    );
    counter!(
        /// Newest committed LSN (gauge; 0 for an empty log). Mirrored
        /// here so observers (`STATS`, replication lag) never take the
        /// WAL mutex — a checkpoint holds it across an O(m) snapshot.
        head_lsn,
        head_lsn
    );
    counter!(
        /// The replication epoch this log was last opened or bumped at
        /// (gauge; 0 until the Wal sets it). Mirrored for the same
        /// reason as `head_lsn`: `STATS` must not take the WAL mutex.
        epoch,
        epoch
    );

    /// Wall-clock latency of each `fsync` issued, in microseconds.
    pub fn fsync_us(&self) -> &AtomicLogHistogram {
        &self.fsync_us
    }

    /// Wall-clock latency of each durable checkpoint write (temp file +
    /// fsync + rename + directory fsync), in microseconds.
    pub fn checkpoint_us(&self) -> &AtomicLogHistogram {
        &self.checkpoint_us
    }

    /// Time spent waiting to acquire the WAL mutex, in microseconds.
    /// Recorded by the mutex *holders* (the server's durability layer,
    /// the checkpointer), not by the Wal itself — the Wal has no view
    /// of its callers' lock acquisition.
    pub fn lock_wait_us(&self) -> &AtomicLogHistogram {
        &self.lock_wait_us
    }

    /// Group-commit batch size: tuples carried by each appended record.
    /// `sum() / count()` is the average batch the log absorbs per
    /// append — the number the group-commit work in ROADMAP item 4 is
    /// meant to grow.
    pub fn group_batch(&self) -> &AtomicLogHistogram {
        &self.group_batch
    }

    /// Wall-clock duration the WAL mutex was held across a whole
    /// checkpoint (drain + snapshot + durable write) — the pause every
    /// concurrent writer observes as lock wait, in microseconds.
    pub fn checkpoint_pause_us(&self) -> &AtomicLogHistogram {
        &self.checkpoint_pause_us
    }

    /// Records one wait for the WAL mutex. Public: the lock lives
    /// above the Wal (the server's `Arc<Mutex<Wal>>`), so its callers
    /// time the acquisition and report it here.
    pub fn on_lock_wait(&self, us: u64) {
        self.lock_wait_us.record(us);
    }

    /// Records one full-pause checkpoint critical section. Public for
    /// the same reason as [`WalMetrics::on_lock_wait`]: the caller owns
    /// the critical section, not the Wal.
    pub fn on_checkpoint_pause(&self, us: u64) {
        self.checkpoint_pause_us.record(us);
    }

    pub(crate) fn on_append(&self, tuples: u64, bytes: u64) {
        self.records.fetch_add(1, Ordering::Relaxed);
        self.tuples.fetch_add(tuples, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.group_batch.record(tuples);
    }

    pub(crate) fn on_header(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn on_fsync(&self, us: u64) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_us.record(us);
    }

    pub(crate) fn on_checkpoint(&self, us: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_us.record(us);
    }

    pub(crate) fn set_segments(&self, n: u64) {
        self.segments.store(n, Ordering::Relaxed);
    }

    pub(crate) fn set_head_lsn(&self, lsn: u64) {
        self.head_lsn.store(lsn, Ordering::Relaxed);
    }

    pub(crate) fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    pub(crate) fn add_segments(&self, delta: i64) {
        if delta >= 0 {
            self.segments.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.segments.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = WalMetrics::default();
        m.on_append(5, 33);
        m.on_append(2, 18);
        m.on_header(16);
        m.on_fsync(120);
        m.on_checkpoint(4500);
        m.on_lock_wait(9);
        m.on_checkpoint_pause(700);
        m.set_segments(3);
        m.add_segments(-2);
        assert_eq!(m.records(), 2);
        assert_eq!(m.tuples(), 7);
        assert_eq!(m.bytes(), 67);
        assert_eq!(m.fsyncs(), 1);
        assert_eq!(m.segments(), 1);
        assert_eq!(m.checkpoints(), 1);
        assert_eq!(m.fsync_us().count(), 1);
        assert_eq!(m.fsync_us().max(), 120);
        assert_eq!(m.checkpoint_us().count(), 1);
        assert_eq!(m.checkpoint_us().max(), 4500);
        assert_eq!(m.lock_wait_us().count(), 1);
        assert_eq!(m.lock_wait_us().max(), 9);
        assert_eq!(m.checkpoint_pause_us().max(), 700);
        // Each append records its tuple count into the group-batch
        // histogram: (5 + 2) / 2 appends.
        assert_eq!(m.group_batch().count(), 2);
        assert_eq!(m.group_batch().sum(), 7);
        assert_eq!(m.group_batch().max(), 5);
    }
}
