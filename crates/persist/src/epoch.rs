//! The replication epoch (generation id) marker.
//!
//! Failover fencing needs one durable integer per WAL directory: the
//! newest primary generation this node has ever written for (as a
//! primary) or followed (as a replica). A node that crashes and comes
//! back must remember it, or a restarted stale primary could quietly
//! re-accept writes — so the epoch lives in its own tiny marker file
//! (`epoch`), written with the same temp + rename + directory-fsync
//! discipline as checkpoints.
//!
//! File format (20 bytes, little-endian):
//!
//! ```text
//! magic  8 bytes  "SPEPOCH\x01"
//! epoch  u64 LE
//! crc    u32 LE   CRC-32 (IEEE) of the first 16 bytes
//! ```
//!
//! A missing or corrupt marker reads as epoch 1 — the first generation.
//! (Corrupt is safe to default: the epoch only ever moves up, and a
//! fenced handshake fails loudly rather than losing data, so the worst
//! a lost marker costs is one refused reconnect.)

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use sprofile::crc32::crc32;

use crate::segment::fsync_dir;
use crate::PersistError;

const EPOCH_MAGIC: [u8; 8] = *b"SPEPOCH\x01";
const EPOCH_LEN: usize = 20;

/// Name of the marker file inside a WAL directory.
pub const EPOCH_FILE: &str = "epoch";

/// Reads the durable epoch marker in `dir`. Missing, short, or corrupt
/// markers read as `1` (the first generation).
pub fn read_epoch(dir: &Path) -> u64 {
    let Ok(bytes) = fs::read(dir.join(EPOCH_FILE)) else {
        return 1;
    };
    if bytes.len() != EPOCH_LEN || bytes[..8] != EPOCH_MAGIC {
        return 1;
    }
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[..16]) != crc {
        return 1;
    }
    u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")).max(1)
}

/// Durably writes the epoch marker for `dir` (created if absent):
/// temp file + fsync + rename + directory fsync, so every crash point
/// leaves either the old marker or the new one, never a torn mix.
pub fn write_epoch(dir: &Path, epoch: u64) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let mut bytes = [0u8; EPOCH_LEN];
    bytes[..8].copy_from_slice(&EPOCH_MAGIC);
    bytes[8..16].copy_from_slice(&epoch.to_le_bytes());
    let crc = crc32(&bytes[..16]);
    bytes[16..20].copy_from_slice(&crc.to_le_bytes());
    let final_path = dir.join(EPOCH_FILE);
    let tmp_path = dir.join("epoch.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sprofile-epoch-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_marker_reads_as_the_first_generation() {
        let dir = temp_dir("missing");
        assert_eq!(read_epoch(&dir), 1);
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = temp_dir("roundtrip");
        write_epoch(&dir, 7).unwrap();
        assert_eq!(read_epoch(&dir), 7);
        write_epoch(&dir, 8).unwrap();
        assert_eq!(read_epoch(&dir), 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_short_markers_fall_back_to_one() {
        let dir = temp_dir("corrupt");
        write_epoch(&dir, 42).unwrap();
        let path = dir.join(EPOCH_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_epoch(&dir), 1, "bad crc");
        fs::write(&path, b"short").unwrap();
        assert_eq!(read_epoch(&dir), 1, "truncated");
        fs::remove_dir_all(&dir).ok();
    }
}
