//! The WAL record encoding: one record per applied batch.
//!
//! ```text
//! len      u32 LE    payload length in bytes
//! crc      u32 LE    CRC-32 (IEEE) of the payload
//! payload  len bytes:
//!   epoch  u64 LE    replication epoch the record was written under
//!   count  u32 LE    number of tuples
//!   tuple  count × { op: u8 (1 = add, 0 = remove), object: u32 LE }
//! ```
//!
//! The epoch stamp (PR 8) turns the directory-level epoch marker into
//! per-record provenance: forensics can tell exactly which promotion a
//! record predates, and filtered catch-up across ownership changes can
//! reason per record instead of per directory. Records written before
//! the stamp existed fail the count/length cross-check and read as
//! corruption — the format is not backward compatible.
//!
//! The checksum covers the payload only; a corrupt `len` either fails
//! the tuple-count cross-check, runs past the end of the segment
//! (indistinguishable from a torn tail, handled identically), or lands
//! on bytes whose CRC cannot match. Decoding is slice-based — segments
//! are bounded by the rotation threshold, so a whole segment is read
//! into memory at once during recovery.

use sprofile::crc32::crc32;
use sprofile::Tuple;

/// Hard upper bound on tuples per record, so a corrupt header cannot
/// make recovery allocate unbounded memory (mirrors the TCP protocol's
/// `MAX_BATCH`).
pub const MAX_RECORD_TUPLES: usize = 1 << 22;

/// Record header size: `len` + `crc`.
pub(crate) const RECORD_HEADER: usize = 8;

/// Fixed payload prefix: `epoch` + `count`.
pub(crate) const PAYLOAD_FIXED: usize = 12;

/// Bytes one tuple occupies in a payload.
pub(crate) const TUPLE_BYTES: usize = 5;

/// Serialised size of a record holding `n` tuples.
pub(crate) fn record_size(n: usize) -> usize {
    RECORD_HEADER + PAYLOAD_FIXED + n * TUPLE_BYTES
}

/// Appends the encoded record for `tuples`, stamped with `epoch`, to
/// `out`.
pub(crate) fn encode_record(epoch: u64, tuples: &[Tuple], out: &mut Vec<u8>) {
    let payload_len = PAYLOAD_FIXED + tuples.len() * TUPLE_BYTES;
    out.reserve(RECORD_HEADER + payload_len);
    let header_at = out.len();
    out.extend_from_slice(&[0u8; RECORD_HEADER]); // patched below
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        out.push(u8::from(t.is_add));
        out.extend_from_slice(&t.object.to_le_bytes());
    }
    let payload = &out[header_at + RECORD_HEADER..];
    let crc = crc32(payload);
    let len = payload.len() as u32;
    out[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
    out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Outcome of decoding one record at the head of `bytes`.
pub(crate) enum Decoded {
    /// A complete, checksum-valid record: the epoch it was written
    /// under, the tuples, and the total bytes consumed.
    Record {
        /// Replication epoch stamped at append time.
        epoch: u64,
        /// Decoded tuples.
        tuples: Vec<Tuple>,
        /// Bytes the record occupied (header + payload).
        consumed: usize,
    },
    /// The slice is empty: clean end of segment.
    End,
    /// The record is cut short, fails its checksum, or has an internally
    /// inconsistent header — a torn tail (or corruption; the caller
    /// decides based on whether anything follows).
    Torn(&'static str),
}

/// Decodes the record at the head of `bytes`.
pub(crate) fn decode_record(bytes: &[u8]) -> Decoded {
    if bytes.is_empty() {
        return Decoded::End;
    }
    if bytes.len() < RECORD_HEADER {
        return Decoded::Torn("record header cut short");
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(PAYLOAD_FIXED..=PAYLOAD_FIXED + MAX_RECORD_TUPLES * TUPLE_BYTES).contains(&len) {
        return Decoded::Torn("record length out of range");
    }
    let Some(payload) = bytes.get(RECORD_HEADER..RECORD_HEADER + len) else {
        return Decoded::Torn("record payload cut short");
    };
    if crc32(payload) != crc {
        return Decoded::Torn("record checksum mismatch");
    }
    let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
    if payload.len() != PAYLOAD_FIXED + count * TUPLE_BYTES {
        return Decoded::Torn("record tuple count disagrees with length");
    }
    let mut tuples = Vec::with_capacity(count);
    for chunk in payload[PAYLOAD_FIXED..].chunks_exact(TUPLE_BYTES) {
        tuples.push(Tuple {
            object: u32::from_le_bytes(chunk[1..5].try_into().expect("4 bytes")),
            is_add: chunk[0] != 0,
        });
    }
    Decoded::Record {
        epoch,
        tuples,
        consumed: RECORD_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Tuple> {
        vec![Tuple::add(7), Tuple::remove(0), Tuple::add(u32::MAX)]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        encode_record(42, &sample(), &mut buf);
        assert_eq!(buf.len(), record_size(3));
        match decode_record(&buf) {
            Decoded::Record {
                epoch,
                tuples,
                consumed,
            } => {
                assert_eq!(epoch, 42);
                assert_eq!(tuples, sample());
                assert_eq!(consumed, buf.len());
            }
            _ => panic!("expected a record"),
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let mut buf = Vec::new();
        encode_record(u64::MAX, &[], &mut buf);
        match decode_record(&buf) {
            Decoded::Record {
                epoch,
                tuples,
                consumed,
            } => {
                assert_eq!(epoch, u64::MAX);
                assert!(tuples.is_empty());
                assert_eq!(consumed, buf.len());
            }
            _ => panic!("expected a record"),
        }
    }

    #[test]
    fn every_truncation_is_torn_not_panic() {
        let mut buf = Vec::new();
        encode_record(3, &sample(), &mut buf);
        for cut in 1..buf.len() {
            match decode_record(&buf[..cut]) {
                Decoded::Torn(_) => {}
                Decoded::End => panic!("cut {cut}: End on non-empty slice"),
                Decoded::Record { .. } => panic!("cut {cut}: decoded a truncated record"),
            }
        }
        assert!(matches!(decode_record(&[]), Decoded::End));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        encode_record(7, &sample(), &mut buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                match decode_record(&buf) {
                    Decoded::Torn(_) => {}
                    _ => panic!("flip byte {byte} bit {bit} went undetected"),
                }
                buf[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn back_to_back_records_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_record(1, &[Tuple::add(1)], &mut buf);
        encode_record(2, &[Tuple::remove(2), Tuple::add(3)], &mut buf);
        let Decoded::Record {
            epoch,
            tuples,
            consumed,
        } = decode_record(&buf)
        else {
            panic!("first record");
        };
        assert_eq!(epoch, 1);
        assert_eq!(tuples, vec![Tuple::add(1)]);
        let Decoded::Record {
            epoch,
            tuples,
            consumed: c2,
        } = decode_record(&buf[consumed..])
        else {
            panic!("second record");
        };
        assert_eq!(epoch, 2);
        assert_eq!(tuples, vec![Tuple::remove(2), Tuple::add(3)]);
        assert!(matches!(decode_record(&buf[consumed + c2..]), Decoded::End));
    }
}
