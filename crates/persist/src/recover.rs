//! Crash recovery: newest valid checkpoint + WAL tail replay.
//!
//! The invariant recovery restores: **the recovered profile equals an
//! oracle that replayed exactly the durable prefix of appended
//! records.** A torn or truncated record at the very tail of the log —
//! what a crash mid-append leaves behind — ends replay cleanly (those
//! tuples were never durable). Like every append-only log, the "tail"
//! is defined by the first invalid record in the **last** segment —
//! everything after it is unreachable, because record boundaries cannot
//! be re-synchronised past a bad length. Corruption in any *earlier*
//! segment is a hard [`PersistError`]: the next segment's first LSN
//! proves records went missing, and silently skipping acknowledged
//! records is strictly worse than failing loudly.
//!
//! A torn tail mid-chain is still accepted in one specific shape: when
//! the *next* segment picks up at exactly the LSN where the tear
//! stopped. That is the signature of a previous crash-and-restart (the
//! restarted writer opens a fresh segment at the recovered LSN and
//! never appends to the torn one).

use std::path::Path;

use sprofile::{SProfile, Tuple};

use crate::record::{decode_record, Decoded};
use crate::segment::{list_checkpoints, list_segments, parse_checkpoint, parse_segment};
use crate::PersistError;

/// The outcome of [`recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The restored profile: checkpoint state plus the replayed tail.
    pub profile: SProfile,
    /// LSN of the checkpoint recovery started from (`None`: replayed
    /// the whole log from scratch).
    pub checkpoint_lsn: Option<u64>,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Tuples inside those records.
    pub replayed_tuples: u64,
    /// The first LSN a resumed writer should assign.
    pub next_lsn: u64,
    /// Whether the log ended in a torn/corrupt record (crash signature).
    pub torn_tail: bool,
    /// The replication epoch from the durable marker (1 when absent).
    pub epoch: u64,
}

/// One decoded WAL record, for `wal-dump`-style inspection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordInfo {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The replication epoch stamped into the record at append time.
    pub epoch: u64,
    /// Its tuples.
    pub tuples: Vec<Tuple>,
}

/// How one pass over the segment chain ended.
pub(crate) struct ScanEnd {
    /// First unassigned LSN after the last good record.
    pub next_lsn: u64,
    /// Records passed to the callback (i.e. with `lsn > skip_upto`).
    pub records: u64,
    /// Tuples inside those records.
    pub tuples: u64,
    /// Whether the final segment ended in a torn record.
    pub torn_tail: bool,
}

/// Walks every segment in `dir` in LSN order, invoking `apply` for each
/// checksum-valid record with `lsn > skip_upto`, enforcing chain
/// continuity, and tolerating exactly one torn tail per segment *iff*
/// the following segment resumes at the torn LSN (or the segment is the
/// last).
pub(crate) fn scan_records(
    dir: &Path,
    skip_upto: u64,
    mut apply: impl FnMut(u64, u64, Vec<Tuple>) -> Result<(), PersistError>,
) -> Result<ScanEnd, PersistError> {
    let segments = list_segments(dir)?;
    let mut end = ScanEnd {
        next_lsn: skip_upto + 1,
        records: 0,
        tuples: 0,
        torn_tail: false,
    };
    // Chain continuity: once a segment has been scanned, the next one
    // must resume exactly where it stopped. `None` until the first
    // scanned segment.
    let mut expected: Option<u64> = None;
    for (i, (first_lsn, path)) in segments.iter().enumerate() {
        // A segment is skippable without scanning when its successor
        // starts at or below skip_upto + 1 — every record in it is
        // covered by the checkpoint.
        if let Some((next_first, _)) = segments.get(i + 1) {
            if *next_first <= skip_upto + 1 && expected.is_none() {
                continue;
            }
        }
        if let Some(exp) = expected {
            if *first_lsn != exp {
                return Err(PersistError::corrupt(
                    "gap between segments (missing records)",
                    Some(path),
                ));
            }
        } else if *first_lsn > skip_upto + 1 {
            return Err(PersistError::corrupt(
                "gap between checkpoint and first segment",
                Some(path),
            ));
        }
        let bytes = std::fs::read(path)?;
        // A crash can tear even the 16-byte header of a freshly created
        // segment; if that segment is the last one it simply holds no
        // durable records. Anywhere else it is corruption.
        let mut rest = match parse_segment(&bytes, *first_lsn, path) {
            Ok(rest) => rest,
            Err(e) => {
                // (Chain continuity against `expected` was already
                // checked above, so only tail position matters here.)
                if i == segments.len() - 1 {
                    end.torn_tail = true;
                    break;
                }
                return Err(e);
            }
        };
        let mut lsn = *first_lsn;
        let mut torn: Option<&'static str> = None;
        loop {
            match decode_record(rest) {
                Decoded::End => break,
                Decoded::Torn(why) => {
                    torn = Some(why);
                    break;
                }
                Decoded::Record {
                    epoch,
                    tuples,
                    consumed,
                } => {
                    rest = &rest[consumed..];
                    if lsn > skip_upto {
                        end.records += 1;
                        end.tuples += tuples.len() as u64;
                        apply(lsn, epoch, tuples)?;
                    }
                    lsn += 1;
                }
            }
        }
        expected = Some(lsn);
        end.next_lsn = end.next_lsn.max(lsn);
        if let Some(why) = torn {
            match segments.get(i + 1) {
                // Crash-and-restart shape: the next segment resumes at
                // the torn LSN, so nothing durable was lost.
                Some((next_first, _)) if *next_first == lsn => {}
                Some(_) => return Err(PersistError::corrupt(why, Some(path))),
                None => end.torn_tail = true,
            }
        }
    }
    Ok(end)
}

/// Recovers the profile state persisted in `dir` for a universe of `m`
/// objects: loads the newest valid checkpoint (falling back to the
/// retained previous one if the newest fails validation, provided the
/// WAL still covers the difference) and replays the record tail.
///
/// A directory with no checkpoint and no segments recovers to a fresh
/// `SProfile::new(m)` with `next_lsn` 1 — so first boot and restart are
/// the same code path.
pub fn recover(dir: &Path, m: u32) -> Result<Recovered, PersistError> {
    if !dir.exists() {
        return Ok(Recovered {
            profile: SProfile::new(m),
            checkpoint_lsn: None,
            replayed_records: 0,
            replayed_tuples: 0,
            next_lsn: 1,
            torn_tail: false,
            epoch: 1,
        });
    }
    let epoch = crate::epoch::read_epoch(dir);
    let mut checkpoints = list_checkpoints(dir)?;
    checkpoints.reverse(); // newest first
    let mut first_error: Option<PersistError> = None;
    // Candidate starting points: each checkpoint newest-first, then
    // "replay everything from scratch".
    for candidate in checkpoints.iter().map(Some).chain(std::iter::once(None)) {
        let (base_lsn, profile) = match candidate {
            Some((lsn, path)) => {
                let loaded = std::fs::read(path).map_err(PersistError::from).and_then(
                    |bytes| -> Result<SProfile, PersistError> {
                        let (_, snap) = parse_checkpoint(&bytes, *lsn, path)?;
                        Ok(SProfile::from_snapshot_bytes(snap)?)
                    },
                );
                match loaded {
                    Ok(p) => (Some(*lsn), p),
                    Err(e) => {
                        first_error.get_or_insert(e);
                        continue;
                    }
                }
            }
            None => (None, SProfile::new(m)),
        };
        if profile.num_objects() != m {
            return Err(PersistError::UniverseMismatch {
                wal_m: profile.num_objects(),
                requested_m: m,
            });
        }
        let skip = base_lsn.unwrap_or(0);
        // Falling back past a checkpoint only works if the WAL still
        // reaches back far enough; a gap error here tries the next
        // candidate rather than failing outright.
        let mut p = profile;
        match scan_records(dir, skip, |_lsn, _epoch, tuples| {
            for t in &tuples {
                if t.object >= m {
                    return Err(PersistError::corrupt(
                        "record object outside the universe",
                        None,
                    ));
                }
            }
            p.apply_batch(&tuples);
            Ok(())
        }) {
            Ok(end) => {
                return Ok(Recovered {
                    profile: p,
                    checkpoint_lsn: base_lsn,
                    replayed_records: end.records,
                    replayed_tuples: end.tuples,
                    next_lsn: end.next_lsn,
                    torn_tail: end.torn_tail,
                    epoch,
                });
            }
            Err(e) => {
                first_error.get_or_insert(e);
                continue;
            }
        }
    }
    Err(first_error.expect("scan-from-scratch either succeeds or errors"))
}

/// The newest checkpoint in `dir` that passes full validation — header,
/// structure, *and* snapshot round-trip — as `(lsn, snapshot bytes)`.
/// Corrupt newer checkpoints are skipped (mirroring recovery's
/// fallback); `None` when no valid checkpoint exists. The replication
/// source bootstraps from this when a replica requests records the
/// segment files no longer reach.
pub fn newest_checkpoint(dir: &Path) -> Result<Option<(u64, Vec<u8>)>, PersistError> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut checkpoints = list_checkpoints(dir)?;
    checkpoints.reverse(); // newest first
    for (lsn, path) in checkpoints {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Ok((_, snap)) = parse_checkpoint(&bytes, lsn, &path) else {
            continue;
        };
        if SProfile::from_snapshot_bytes(snap).is_ok() {
            return Ok(Some((lsn, snap.to_vec())));
        }
    }
    Ok(None)
}

/// Decodes every record still present in `dir`'s segments (regardless of
/// checkpoints), for `wal-dump`. Returns the records and whether the log
/// ends in a torn tail.
pub fn dump_records(dir: &Path) -> Result<(Vec<RecordInfo>, bool), PersistError> {
    // Start wherever the (possibly pruned) log starts, not at LSN 1.
    let start = match list_segments(dir)?.first() {
        Some((first_lsn, _)) => first_lsn.saturating_sub(1),
        None => return Ok((Vec::new(), false)),
    };
    let mut out = Vec::new();
    let end = scan_records(dir, start, |lsn, epoch, tuples| {
        out.push(RecordInfo { lsn, epoch, tuples });
        Ok(())
    })?;
    Ok((out, end.torn_tail))
}
