//! # sprofile-persist — durability for the profile service
//!
//! The TCP server acknowledges writes from in-memory state; before this
//! crate, a crash lost everything since the last manually requested
//! `SNAPSHOT`. This crate is the missing durability layer, built from
//! three pieces that compose into standard write-ahead logging:
//!
//! * **Segmented WAL** ([`Wal`]) — applied batches are appended as
//!   CRC-32-checksummed records to numbered segment files
//!   (`wal-<first_lsn>.seg`), rotated at a size threshold. Appends are
//!   *group-committed*: one record (and at most one fsync) per applied
//!   batch, with the fsync cadence picked by [`SyncPolicy`].
//! * **Checkpoints** ([`Wal::checkpoint`]) — the profile's snapshot
//!   (the [`SProfile::write_snapshot`] format, which carries its own
//!   CRC-32 footer) is written atomically (temp file + rename) as
//!   `ckpt-<lsn>.ck`, covering every record up to `lsn`. Fully covered
//!   segments and superseded checkpoints are then pruned.
//! * **Recovery** ([`recover`]) — loads the newest *valid* checkpoint
//!   (falling back to the retained previous one if the newest is
//!   corrupt) and replays the WAL tail on top. A torn or truncated
//!   final record — the signature of a crash mid-write — ends replay
//!   cleanly rather than failing it; a gap or corruption *before* the
//!   tail is a hard error, because silently skipping acknowledged
//!   records would un-acknowledge them.
//!
//! Every multi-byte integer is little-endian. The log is append-only;
//! no record is ever rewritten in place, so the only partially written
//! bytes possible are at the tail of the newest segment.
//!
//! Since PR 5 the crate also carries the read-side hooks log shipping
//! needs: [`SegmentReader`] (range reads of durable records without
//! touching the in-flight tail), [`Wal::subscribe`] (a bounded live-tail
//! broadcast of freshly committed records), [`ReplicaRegistry`] (a
//! pruning floor at the slowest replica's acknowledged LSN, with a
//! [`WalOptions::max_retain_bytes`] escape hatch), [`Wal::sync_if_stale`]
//! (an idle timer bounding the crash-loss window of a quiescent
//! interval-sync log), and [`Wal::reset_to_checkpoint`] (replica
//! checkpoint bootstrap — checkpoint-first, so every crash point leaves
//! a recoverable directory). A failed append *write* now rotates to a
//! fresh segment and retries once before fail-stopping.
//!
//! ```
//! use sprofile::Tuple;
//! use sprofile_persist::{recover, SyncPolicy, Wal, WalOptions};
//!
//! let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
//! let opts = WalOptions { dir: dir.clone(), ..WalOptions::default() };
//!
//! // Writer side: append acknowledged batches.
//! let mut wal = Wal::open(opts.clone(), 1).unwrap();
//! wal.append(&[Tuple::add(3), Tuple::add(3), Tuple::remove(9)]).unwrap();
//! wal.sync().unwrap();
//! drop(wal);
//!
//! // After a crash: rebuild the profile from the log.
//! let recovered = recover(&dir, 16).unwrap();
//! assert_eq!(recovered.profile.frequency(3), 2);
//! assert_eq!(recovered.profile.frequency(9), -1);
//! assert_eq!(recovered.replayed_records, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod epoch;
mod metrics;
mod partition;
mod reader;
mod record;
mod recover;
mod retention;
mod segment;
mod wal;

pub use epoch::{read_epoch, write_epoch, EPOCH_FILE};
pub use metrics::WalMetrics;
pub use partition::{
    read_partition_map, slice_snapshot_bytes, write_partition_map, PartitionMap, PARTITION_FILE,
};
pub use reader::SegmentReader;
pub use record::MAX_RECORD_TUPLES;
pub use recover::{dump_records, newest_checkpoint, recover, RecordInfo, Recovered};
pub use retention::{ReplicaRegistry, ReplicaSlot};
pub use segment::{checkpoint_path, is_checkpoint_file, is_segment_file, segment_path};
pub use wal::{TailRecord, Wal, WalOptions, TAIL_CAPACITY};

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use sprofile::SnapshotError;

/// When the WAL forces appended records onto stable storage.
///
/// Regardless of policy, every committed record is `write(2)`-flushed to
/// the kernel before the append returns — a killed *process* loses
/// nothing committed. The policy only chooses how often `fsync` is paid,
/// i.e. what an *OS crash or power loss* can take with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync before every append returns: an acknowledged batch survives
    /// even power loss. One fsync per applied batch (group commit).
    Always,
    /// fsync at most once per interval, piggybacked on appends; power
    /// loss can cost up to one interval of acknowledged records.
    Interval(Duration),
    /// Never fsync during operation (only on clean shutdown); the OS
    /// decides when dirty pages hit disk.
    Never,
}

impl SyncPolicy {
    /// Parses `always` / `interval` / `never` (case-insensitive);
    /// `interval_ms` is the cadence an interval policy uses.
    pub fn parse(s: &str, interval_ms: u64) -> Option<SyncPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Some(SyncPolicy::Always),
            "interval" => Some(SyncPolicy::Interval(Duration::from_millis(
                interval_ms.max(1),
            ))),
            "never" => Some(SyncPolicy::Never),
            _ => None,
        }
    }

    /// Short name for reports (`always` / `interval` / `never`).
    pub fn name(&self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Interval(_) => "interval",
            SyncPolicy::Never => "never",
        }
    }
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A structural validation failed; the message says which and where.
    Corrupt {
        /// What was wrong.
        what: &'static str,
        /// The file it was found in, when known.
        path: Option<PathBuf>,
    },
    /// A checkpoint's embedded snapshot failed to load.
    Snapshot(SnapshotError),
    /// Another live writer holds the WAL directory's advisory lock.
    Locked {
        /// The contested WAL directory.
        dir: PathBuf,
    },
    /// The log was written for a different universe size than requested.
    UniverseMismatch {
        /// Universe size recorded in the log/checkpoint.
        wal_m: u32,
        /// Universe size the caller asked to recover into.
        requested_m: u32,
    },
}

impl PersistError {
    pub(crate) fn corrupt(what: &'static str, path: Option<&std::path::Path>) -> Self {
        PersistError::Corrupt {
            what,
            path: path.map(|p| p.to_path_buf()),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "wal i/o error: {e}"),
            PersistError::Corrupt { what, path } => match path {
                Some(p) => write!(f, "corrupt wal: {what} ({})", p.display()),
                None => write!(f, "corrupt wal: {what}"),
            },
            PersistError::Snapshot(e) => write!(f, "corrupt checkpoint: {e}"),
            PersistError::Locked { dir } => write!(
                f,
                "wal directory {} is locked by another live writer (a running server?)",
                dir.display()
            ),
            PersistError::UniverseMismatch { wal_m, requested_m } => write!(
                f,
                "universe mismatch: log holds m={wal_m}, requested m={requested_m}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Snapshot(e)
    }
}
