//! The cluster partition map: which node owns which hash slice.
//!
//! A cluster (PR 8) splits the object universe `[0, m)` into `slices`
//! hash slices — `slice_of(x) = x % slices`, the same modulo placement
//! [`ShardedProfile`](https://docs.rs/) uses across threads — and
//! assigns every slice to one of `nodes` (primary addresses). The
//! assignment is versioned: every rebalance bumps `version`, and a
//! writer holding an older version gets a typed `ERR moved <ver>`
//! redirect instead of a silently misplaced write.
//!
//! Each node persists its current map in its WAL directory (`partmap`
//! marker, same temp + rename + directory-fsync discipline as the
//! [`epoch`](crate::read_epoch) marker) so a restart resumes with the
//! ownership it last acknowledged, not the bootstrap default.
//!
//! File format (little-endian):
//!
//! ```text
//! magic    8 bytes  "SPPMAPV\x01"
//! version  u64 LE
//! slices   u32 LE
//! nodes    u32 LE   node count
//!          nodes × { len: u16 LE, addr: len UTF-8 bytes }
//! owners   slices × u32 LE   node index owning each slice
//! crc      u32 LE   CRC-32 (IEEE) of everything before it
//! ```
//!
//! A missing or corrupt marker reads as `None` — the caller falls back
//! to the canonical bootstrap map ([`PartitionMap::round_robin`]),
//! which every node and router derives identically from the shared
//! `--cluster` topology flags.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use sprofile::crc32::crc32;

use crate::segment::fsync_dir;
use crate::PersistError;

const PMAP_MAGIC: [u8; 8] = *b"SPPMAPV\x01";

/// Name of the partition-map marker file inside a WAL directory.
pub const PARTITION_FILE: &str = "partmap";

/// A versioned assignment of hash slices to cluster nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    /// Monotonic map version; every rebalance bumps it by one.
    pub version: u64,
    /// Number of hash slices the universe is split into.
    pub slices: u32,
    /// Primary address of every node, indexed by node id.
    pub nodes: Vec<String>,
    /// `owners[s]` is the node index owning slice `s`; length `slices`.
    pub owners: Vec<u32>,
}

impl PartitionMap {
    /// The canonical bootstrap map: version 1, slice `s` owned by node
    /// `s % nodes.len()`. Every cluster participant derives this
    /// identically from the shared topology flags, so a fresh cluster
    /// needs no coordination to agree on ownership.
    pub fn round_robin(slices: u32, nodes: Vec<String>) -> PartitionMap {
        let n = nodes.len().max(1) as u32;
        PartitionMap {
            version: 1,
            slices,
            owners: (0..slices).map(|s| s % n).collect(),
            nodes,
        }
    }

    /// The hash slice object `x` belongs to.
    #[inline]
    pub fn slice_of(&self, x: u32) -> u32 {
        x % self.slices.max(1)
    }

    /// The node index owning object `x`.
    #[inline]
    pub fn owner_of(&self, x: u32) -> u32 {
        self.owners[self.slice_of(x) as usize]
    }

    /// Structural validity: at least one slice and one node, one owner
    /// per slice, every owner a real node index, and every address
    /// non-empty without the wire format's separator characters.
    pub fn validate(&self) -> Result<(), String> {
        if self.slices == 0 {
            return Err("partition map needs at least one slice".into());
        }
        if self.nodes.is_empty() {
            return Err("partition map needs at least one node".into());
        }
        if self.owners.len() != self.slices as usize {
            return Err(format!(
                "partition map has {} owner(s) for {} slice(s)",
                self.owners.len(),
                self.slices
            ));
        }
        if let Some(bad) = self
            .owners
            .iter()
            .find(|&&o| o as usize >= self.nodes.len())
        {
            return Err(format!(
                "owner index {bad} out of range ({} node(s))",
                self.nodes.len()
            ));
        }
        for addr in &self.nodes {
            if addr.is_empty() || addr.contains([',', ' ', '\t', '\r', '\n']) {
                return Err(format!("bad node address {addr:?}"));
            }
        }
        Ok(())
    }

    /// The single-line wire encoding (`MAP`/`MAPSET` payload):
    /// `<version> <slices> <nodes_csv> <owners_csv>`.
    pub fn to_wire(&self) -> String {
        let owners: Vec<String> = self.owners.iter().map(|o| o.to_string()).collect();
        format!(
            "{} {} {} {}",
            self.version,
            self.slices,
            self.nodes.join(","),
            owners.join(",")
        )
    }

    /// Parses [`to_wire`](Self::to_wire) output, validating the result.
    pub fn from_wire(s: &str) -> Result<PartitionMap, String> {
        let mut words = s.split_ascii_whitespace();
        let mut next = |what: &str| words.next().ok_or_else(|| format!("missing {what}"));
        let version: u64 = next("version")?
            .parse()
            .map_err(|_| "bad map version".to_string())?;
        let slices: u32 = next("slices")?
            .parse()
            .map_err(|_| "bad slice count".to_string())?;
        let nodes: Vec<String> = next("nodes")?.split(',').map(str::to_owned).collect();
        let owners = next("owners")?
            .split(',')
            .map(|w| w.parse::<u32>().map_err(|_| "bad owner index".to_string()))
            .collect::<Result<Vec<u32>, String>>()?;
        if words.next().is_some() {
            return Err("trailing words after partition map".into());
        }
        let map = PartitionMap {
            version,
            slices,
            nodes,
            owners,
        };
        map.validate()?;
        Ok(map)
    }
}

/// The key-filtered checkpoint emit for slice migration: a serialized
/// [`SProfile`](sprofile::SProfile) snapshot carrying only the
/// frequencies of objects in hash slice `slice` (out of `slices`),
/// every other object zeroed. Shipping this to a slice's new owner and
/// delta-applying it there moves exactly the slice's state — the same
/// snapshot format the checkpoint/bootstrap paths already speak.
pub fn slice_snapshot_bytes(freqs: &[i64], slices: u32, slice: u32) -> Vec<u8> {
    let slices = slices.max(1);
    let filtered: Vec<i64> = freqs
        .iter()
        .enumerate()
        .map(|(x, &f)| if x as u32 % slices == slice { f } else { 0 })
        .collect();
    sprofile::SProfile::from_frequencies(&filtered).to_snapshot_bytes()
}

/// Reads the durable partition-map marker in `dir`. Missing, short, or
/// corrupt markers read as `None` (fall back to the bootstrap map).
pub fn read_partition_map(dir: &Path) -> Option<PartitionMap> {
    let bytes = fs::read(dir.join(PARTITION_FILE)).ok()?;
    if bytes.len() < PMAP_MAGIC.len() + 4 || bytes[..8] != PMAP_MAGIC {
        return None;
    }
    let crc_at = bytes.len() - 4;
    let crc = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4 bytes"));
    if crc32(&bytes[..crc_at]) != crc {
        return None;
    }
    let mut rest = &bytes[8..crc_at];
    let mut take = |n: usize| -> Option<&[u8]> {
        let (head, tail) = rest.split_at_checked(n)?;
        rest = tail;
        Some(head)
    };
    let version = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let slices = u32::from_le_bytes(take(4)?.try_into().ok()?);
    let node_count = u32::from_le_bytes(take(4)?.try_into().ok()?);
    // Bound before allocating: a corrupt count must not OOM the reader.
    if slices > 1 << 20 || node_count > 1 << 16 {
        return None;
    }
    let mut nodes = Vec::with_capacity(node_count as usize);
    for _ in 0..node_count {
        let len = u16::from_le_bytes(take(2)?.try_into().ok()?) as usize;
        nodes.push(String::from_utf8(take(len)?.to_vec()).ok()?);
    }
    let mut owners = Vec::with_capacity(slices as usize);
    for _ in 0..slices {
        owners.push(u32::from_le_bytes(take(4)?.try_into().ok()?));
    }
    if !rest.is_empty() {
        return None;
    }
    let map = PartitionMap {
        version,
        slices,
        nodes,
        owners,
    };
    map.validate().ok()?;
    Some(map)
}

/// Durably writes the partition-map marker for `dir` (created if
/// absent): temp file + fsync + rename + directory fsync, so every
/// crash point leaves either the old marker or the new one.
pub fn write_partition_map(dir: &Path, map: &PartitionMap) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(32 + map.nodes.len() * 24 + map.owners.len() * 4);
    bytes.extend_from_slice(&PMAP_MAGIC);
    bytes.extend_from_slice(&map.version.to_le_bytes());
    bytes.extend_from_slice(&map.slices.to_le_bytes());
    bytes.extend_from_slice(&(map.nodes.len() as u32).to_le_bytes());
    for addr in &map.nodes {
        bytes.extend_from_slice(&(addr.len() as u16).to_le_bytes());
        bytes.extend_from_slice(addr.as_bytes());
    }
    for &o in &map.owners {
        bytes.extend_from_slice(&o.to_le_bytes());
    }
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let final_path = dir.join(PARTITION_FILE);
    let tmp_path = dir.join("partmap.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartitionMap {
        PartitionMap {
            version: 7,
            slices: 5,
            nodes: vec!["127.0.0.1:7979".into(), "127.0.0.1:7980".into()],
            owners: vec![0, 1, 0, 1, 1],
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sprofile-pmap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_robin_is_canonical() {
        let map = PartitionMap::round_robin(8, vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        assert_eq!(map.version, 1);
        assert_eq!(map.owners, vec![0, 1, 2, 0, 1, 2, 0, 1]);
        map.validate().unwrap();
        // Placement follows the same modulo rule as ShardedProfile.
        assert_eq!(map.slice_of(13), 13 % 8);
        assert_eq!(map.owner_of(13), (13 % 8) % 3);
    }

    #[test]
    fn wire_round_trips_and_rejects_garbage() {
        let map = sample();
        let wire = map.to_wire();
        assert_eq!(wire, "7 5 127.0.0.1:7979,127.0.0.1:7980 0,1,0,1,1");
        assert_eq!(PartitionMap::from_wire(&wire).unwrap(), map);
        for bad in [
            "",
            "7",
            "7 5",
            "7 5 a:1",
            "7 5 a:1 0,0,0,0,9",      // owner out of range
            "7 5 a:1 0,0,0,0",        // owner count != slices
            "7 zero a:1 0,0,0,0,0",   // non-numeric
            "7 5 a:1 0,0,0,0,0 tail", // trailing junk
        ] {
            assert!(PartitionMap::from_wire(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn slice_snapshot_keeps_only_the_slice() {
        let freqs: Vec<i64> = vec![3, -1, 4, 0, 5, 9, 2, 6];
        let bytes = slice_snapshot_bytes(&freqs, 3, 1);
        let snap = sprofile::SProfile::from_snapshot_bytes(&bytes).unwrap();
        for x in 0..freqs.len() as u32 {
            let want = if x % 3 == 1 { freqs[x as usize] } else { 0 };
            assert_eq!(snap.frequency(x), want, "object {x}");
        }
    }

    #[test]
    fn marker_round_trips_and_corruption_reads_as_none() {
        let dir = temp_dir("roundtrip");
        assert_eq!(read_partition_map(&dir), None, "missing marker");
        let map = sample();
        write_partition_map(&dir, &map).unwrap();
        assert_eq!(read_partition_map(&dir), Some(map.clone()));
        // Newer version overwrites in place.
        let mut next = map.clone();
        next.version = 8;
        next.owners[0] = 1;
        write_partition_map(&dir, &next).unwrap();
        assert_eq!(read_partition_map(&dir), Some(next));
        // Any bit flip fails the CRC and falls back to None.
        let path = dir.join(PARTITION_FILE);
        let mut bytes = fs::read(&path).unwrap();
        for byte in 0..bytes.len() {
            bytes[byte] ^= 1;
            fs::write(&path, &bytes).unwrap();
            assert_eq!(read_partition_map(&dir), None, "flip at {byte}");
            bytes[byte] ^= 1;
        }
        fs::write(&path, b"short").unwrap();
        assert_eq!(read_partition_map(&dir), None, "truncated");
        fs::remove_dir_all(&dir).ok();
    }
}
