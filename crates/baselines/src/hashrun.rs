//! Hash-indexed-runs ablation of the S-Profile idea.
//!
//! The paper's block set finds the boundary of an equal-frequency run via
//! a per-position pointer array (`PtrB`). The same O(1) update is possible
//! with a different layout: keep the sorted frequency array explicitly
//! and index each run's `(left, right)` boundary by its *frequency value*
//! in a hash map — the trick classically used for O(1) LFU caches.
//!
//! Comparing this against [`sprofile::SProfile`] isolates the cost of the
//! paper's pointer-array + arena layout versus hashing: both are O(1) per
//! update, but the hash map pays hashing and probing on every access while
//! the block set pays pointer-chasing and arena bookkeeping.

use std::collections::HashMap;

use sprofile::{FrequencyProfiler, RankQueries};

/// S-Profile-equivalent structure with runs indexed by a `HashMap`
/// keyed on frequency value.
#[derive(Clone, Debug)]
pub struct HashRunProfiler {
    /// The sorted frequency array `T` (ascending).
    sorted: Vec<i64>,
    /// position → object.
    to_obj: Vec<u32>,
    /// object → position.
    to_pos: Vec<u32>,
    /// frequency value → (leftmost, rightmost) position of its run.
    runs: HashMap<i64, (u32, u32)>,
}

impl HashRunProfiler {
    /// Creates the profiler over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        let mut runs = HashMap::new();
        if m > 0 {
            runs.insert(0, (0, m - 1));
        }
        HashRunProfiler {
            sorted: vec![0; m as usize],
            to_obj: (0..m).collect(),
            to_pos: (0..m).collect(),
            runs,
        }
    }

    /// Builds from starting frequencies. O(m log m).
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        let m = freqs.len() as u32;
        let mut to_obj: Vec<u32> = (0..m).collect();
        to_obj.sort_by_key(|&x| freqs[x as usize]);
        let mut to_pos = vec![0u32; m as usize];
        for (pos, &obj) in to_obj.iter().enumerate() {
            to_pos[obj as usize] = pos as u32;
        }
        let sorted: Vec<i64> = to_obj.iter().map(|&x| freqs[x as usize]).collect();
        let mut runs: HashMap<i64, (u32, u32)> = HashMap::new();
        for (pos, &f) in sorted.iter().enumerate() {
            runs.entry(f)
                .and_modify(|e| e.1 = pos as u32)
                .or_insert((pos as u32, pos as u32));
        }
        HashRunProfiler {
            sorted,
            to_obj,
            to_pos,
            runs,
        }
    }

    #[inline]
    fn swap_positions(&mut self, p: usize, q: usize) {
        if p == q {
            return;
        }
        let a = self.to_obj[p];
        let b = self.to_obj[q];
        self.to_obj.swap(p, q);
        self.to_pos[a as usize] = q as u32;
        self.to_pos[b as usize] = p as u32;
    }

    /// O(m) validation for tests: sortedness, permutation, run index.
    pub fn check_structure(&self) -> Result<(), String> {
        for w in self.sorted.windows(2) {
            if w[0] > w[1] {
                return Err(format!("not sorted: {} before {}", w[0], w[1]));
            }
        }
        for (pos, &obj) in self.to_obj.iter().enumerate() {
            if self.to_pos[obj as usize] as usize != pos {
                return Err(format!("permutation broken at {pos}"));
            }
        }
        // Rebuild the run index and compare.
        let mut want: HashMap<i64, (u32, u32)> = HashMap::new();
        for (pos, &f) in self.sorted.iter().enumerate() {
            want.entry(f)
                .and_modify(|e| e.1 = pos as u32)
                .or_insert((pos as u32, pos as u32));
        }
        if want != self.runs {
            return Err("run index desynced from sorted array".into());
        }
        Ok(())
    }
}

impl FrequencyProfiler for HashRunProfiler {
    fn num_objects(&self) -> u32 {
        self.sorted.len() as u32
    }

    /// O(1): hash-lookup the run's right boundary, swap, shift boundaries.
    fn add(&mut self, x: u32) {
        let p = self.to_pos[x as usize] as usize;
        let f = self.sorted[p];
        let &(l, r) = self.runs.get(&f).expect("run index must cover every value");
        self.swap_positions(p, r as usize);
        // Shrink f's run from the right.
        if l == r {
            self.runs.remove(&f);
        } else {
            self.runs.insert(f, (l, r - 1));
        }
        // Extend (or create) the f+1 run leftwards to include r.
        self.sorted[r as usize] = f + 1;
        match self.runs.get_mut(&(f + 1)) {
            Some(e) => e.0 = r,
            None => {
                self.runs.insert(f + 1, (r, r));
            }
        }
    }

    /// O(1): mirror image at the left boundary.
    fn remove(&mut self, x: u32) {
        let p = self.to_pos[x as usize] as usize;
        let f = self.sorted[p];
        let &(l, r) = self.runs.get(&f).expect("run index must cover every value");
        self.swap_positions(p, l as usize);
        if l == r {
            self.runs.remove(&f);
        } else {
            self.runs.insert(f, (l + 1, r));
        }
        self.sorted[l as usize] = f - 1;
        match self.runs.get_mut(&(f - 1)) {
            Some(e) => e.1 = l,
            None => {
                self.runs.insert(f - 1, (l, l));
            }
        }
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.sorted[self.to_pos[x as usize] as usize]
    }

    fn mode(&self) -> Option<(u32, i64)> {
        let m = self.sorted.len();
        if m == 0 {
            return None;
        }
        Some((self.to_obj[m - 1], self.sorted[m - 1]))
    }

    fn least(&self) -> Option<(u32, i64)> {
        if self.sorted.is_empty() {
            return None;
        }
        Some((self.to_obj[0], self.sorted[0]))
    }

    fn name(&self) -> &'static str {
        "hash-runs"
    }
}

impl RankQueries for HashRunProfiler {
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.sorted.len() as u32;
        if k == 0 || k > m {
            return None;
        }
        Some(self.sorted[(m - k) as usize])
    }

    fn count_at_least(&self, threshold: i64) -> u32 {
        let below = self.sorted.partition_point(|&v| v < threshold);
        (self.sorted.len() - below) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_updates_and_queries() {
        let mut h = HashRunProfiler::new(6);
        h.add(2);
        h.add(2);
        h.add(4);
        h.check_structure().unwrap();
        assert_eq!(h.frequency(2), 2);
        assert_eq!(h.mode(), Some((2, 2)));
        assert_eq!(h.kth_largest_frequency(2), Some(1));
        h.remove(2);
        h.remove(2);
        h.remove(2); // negative
        h.check_structure().unwrap();
        assert_eq!(h.least(), Some((2, -1)));
    }

    #[test]
    fn run_index_stays_consistent_under_churn() {
        let m = 20u32;
        let mut h = HashRunProfiler::new(m);
        let mut naive = vec![0i64; m as usize];
        let mut state = 77u64;
        for step in 0..8000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 5) % 10 < 6 {
                h.add(x);
                naive[x as usize] += 1;
            } else {
                h.remove(x);
                naive[x as usize] -= 1;
            }
            if step % 500 == 0 {
                h.check_structure().unwrap();
                for y in 0..m {
                    assert_eq!(h.frequency(y), naive[y as usize]);
                }
                assert_eq!(h.mode().unwrap().1, *naive.iter().max().unwrap());
                assert_eq!(h.least().unwrap().1, *naive.iter().min().unwrap());
            }
        }
    }

    #[test]
    fn matches_sprofile_exactly() {
        use sprofile::SProfile;
        let m = 15u32;
        let mut h = HashRunProfiler::new(m);
        let mut s = SProfile::new(m);
        let mut state = 11u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(12345);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 3) & 1 == 1 {
                FrequencyProfiler::add(&mut h, x);
                s.add(x);
            } else {
                FrequencyProfiler::remove(&mut h, x);
                s.remove(x);
            }
            assert_eq!(h.mode().unwrap().1, s.mode().unwrap().frequency);
            assert_eq!(
                h.kth_largest_frequency(m / 2 + 1),
                Some(s.kth_largest(m / 2 + 1).unwrap().1)
            );
        }
    }

    #[test]
    fn from_frequencies_builds_valid_index() {
        let h = HashRunProfiler::from_frequencies(&[3, -1, 3, 0, 0]);
        h.check_structure().unwrap();
        assert_eq!(h.mode().unwrap().1, 3);
        assert_eq!(h.least(), Some((1, -1)));
        assert_eq!(h.count_at_least(0), 4);
        assert_eq!(h.median_frequency(), Some(0));
    }

    #[test]
    fn empty_universe() {
        let h = HashRunProfiler::new(0);
        assert_eq!(h.mode(), None);
        assert_eq!(h.least(), None);
        assert_eq!(h.kth_largest_frequency(1), None);
    }
}
