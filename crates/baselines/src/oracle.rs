//! The deliberately-dumb reference oracle.
//!
//! Every query sorts from scratch. It is O(m log m) per query and
//! obviously correct by inspection, which is the whole point: property
//! tests compare every other structure (S-Profile included) against it.

use sprofile::{FrequencyProfiler, RankQueries};

/// Recompute-everything reference implementation for testing.
#[derive(Clone, Debug)]
pub struct Oracle {
    freq: Vec<i64>,
}

impl Oracle {
    /// Creates an oracle over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        Oracle {
            freq: vec![0; m as usize],
        }
    }

    /// Builds from starting frequencies.
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        Oracle {
            freq: freqs.to_vec(),
        }
    }

    /// The full sorted frequency array, ascending. O(m log m).
    pub fn sorted_frequencies(&self) -> Vec<i64> {
        let mut s = self.freq.clone();
        s.sort_unstable();
        s
    }

    /// All objects attaining the maximum frequency, ascending by id.
    pub fn all_modes(&self) -> Vec<u32> {
        match self.freq.iter().max() {
            None => Vec::new(),
            Some(&max) => self
                .freq
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f == max)
                .map(|(x, _)| x as u32)
                .collect(),
        }
    }

    /// The exact multiset of `(frequency, count)` pairs ascending.
    pub fn histogram(&self) -> Vec<(i64, u32)> {
        let mut sorted = self.sorted_frequencies();
        let mut out: Vec<(i64, u32)> = Vec::new();
        for f in sorted.drain(..) {
            match out.last_mut() {
                Some((g, c)) if *g == f => *c += 1,
                _ => out.push((f, 1)),
            }
        }
        out
    }
}

impl FrequencyProfiler for Oracle {
    fn num_objects(&self) -> u32 {
        self.freq.len() as u32
    }

    fn add(&mut self, x: u32) {
        self.freq[x as usize] += 1;
    }

    fn remove(&mut self, x: u32) {
        self.freq[x as usize] -= 1;
    }

    fn frequency(&self, x: u32) -> i64 {
        self.freq[x as usize]
    }

    fn mode(&self) -> Option<(u32, i64)> {
        self.freq
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(x, &f)| (x as u32, f))
    }

    fn least(&self) -> Option<(u32, i64)> {
        self.freq
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(x, &f)| (x as u32, f))
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

impl RankQueries for Oracle {
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.freq.len() as u32;
        if k == 0 || k > m {
            return None;
        }
        let sorted = self.sorted_frequencies();
        Some(sorted[(m - k) as usize])
    }

    fn count_at_least(&self, threshold: i64) -> u32 {
        self.freq.iter().filter(|&&f| f >= threshold).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_queries() {
        let mut o = Oracle::new(4);
        o.add(2);
        o.add(2);
        o.remove(0);
        assert_eq!(o.mode(), Some((2, 2)));
        assert_eq!(o.least(), Some((0, -1)));
        assert_eq!(o.sorted_frequencies(), vec![-1, 0, 0, 2]);
        assert_eq!(o.kth_largest_frequency(1), Some(2));
        assert_eq!(o.kth_largest_frequency(4), Some(-1));
        assert_eq!(o.median_frequency(), Some(0));
        assert_eq!(o.count_at_least(0), 3);
    }

    #[test]
    fn all_modes_and_histogram() {
        let o = Oracle::from_frequencies(&[3, 1, 3, 0, 3]);
        assert_eq!(o.all_modes(), vec![0, 2, 4]);
        assert_eq!(o.histogram(), vec![(0, 1), (1, 1), (3, 3)]);
        assert!(Oracle::new(0).all_modes().is_empty());
    }

    #[test]
    fn empty_universe() {
        let o = Oracle::new(0);
        assert_eq!(o.mode(), None);
        assert_eq!(o.least(), None);
        assert_eq!(o.kth_largest_frequency(1), None);
        assert_eq!(o.median_frequency(), None);
    }
}
