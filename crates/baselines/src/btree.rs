//! `std::collections::BTreeMap` frequency-multiset baseline.
//!
//! Keeps a `BTreeMap<frequency, count>` alongside the raw frequency array:
//! the idiomatic "just use the standard library" answer a Rust engineer
//! would reach for. Updates are O(log D) where D is the number of
//! *distinct* frequencies; extreme queries are O(log D); general rank
//! queries require walking entries (O(D) worst case) because the std
//! B-tree carries no subtree-size augmentation — precisely the feature
//! PBDS adds and our treap/AVL replicate.

use std::collections::BTreeMap;

use sprofile::{FrequencyProfiler, RankQueries};

/// Frequency profiler over `BTreeMap<frequency, #objects>`.
#[derive(Clone, Debug)]
pub struct BTreeProfiler {
    freq: Vec<i64>,
    /// frequency value → how many objects currently hold it.
    counts: BTreeMap<i64, u32>,
}

impl BTreeProfiler {
    /// Creates a profiler over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        let mut counts = BTreeMap::new();
        if m > 0 {
            counts.insert(0, m);
        }
        BTreeProfiler {
            freq: vec![0; m as usize],
            counts,
        }
    }

    /// Builds from starting frequencies.
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        let mut counts: BTreeMap<i64, u32> = BTreeMap::new();
        for &f in freqs {
            *counts.entry(f).or_insert(0) += 1;
        }
        BTreeProfiler {
            freq: freqs.to_vec(),
            counts,
        }
    }

    fn shift(&mut self, x: u32, delta: i64) {
        let old = self.freq[x as usize];
        let new = old + delta;
        self.freq[x as usize] = new;
        match self.counts.get_mut(&old) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&old);
            }
            None => unreachable!("count map desynced at frequency {old}"),
        }
        *self.counts.entry(new).or_insert(0) += 1;
    }

    /// A witness object for frequency `f`. O(m) — the count map stores no
    /// witnesses; only used by the extreme queries' public contract.
    fn witness(&self, f: i64) -> Option<u32> {
        self.freq.iter().position(|&g| g == f).map(|x| x as u32)
    }

    /// Number of distinct frequency values present.
    pub fn distinct_frequencies(&self) -> usize {
        self.counts.len()
    }
}

impl FrequencyProfiler for BTreeProfiler {
    fn num_objects(&self) -> u32 {
        self.freq.len() as u32
    }

    #[inline]
    fn add(&mut self, x: u32) {
        self.shift(x, 1);
    }

    #[inline]
    fn remove(&mut self, x: u32) {
        self.shift(x, -1);
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.freq[x as usize]
    }

    /// Max frequency in O(log D); witness lookup O(m).
    fn mode(&self) -> Option<(u32, i64)> {
        let (&f, _) = self.counts.last_key_value()?;
        self.witness(f).map(|x| (x, f))
    }

    /// Min frequency in O(log D); witness lookup O(m).
    fn least(&self) -> Option<(u32, i64)> {
        let (&f, _) = self.counts.first_key_value()?;
        self.witness(f).map(|x| (x, f))
    }

    fn name(&self) -> &'static str {
        "btreemap"
    }
}

impl RankQueries for BTreeProfiler {
    /// O(D) walk from the top — no size augmentation in std's B-tree.
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.freq.len() as u32;
        if k == 0 || k > m {
            return None;
        }
        let mut remaining = k;
        for (&f, &c) in self.counts.iter().rev() {
            if remaining <= c {
                return Some(f);
            }
            remaining -= c;
        }
        None
    }

    /// O(#entries at or above threshold).
    fn count_at_least(&self, threshold: i64) -> u32 {
        self.counts.range(threshold..).map(|(_, &c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_collapse_by_value() {
        let mut b = BTreeProfiler::new(5);
        assert_eq!(b.distinct_frequencies(), 1);
        b.add(0);
        b.add(1);
        assert_eq!(b.distinct_frequencies(), 2); // {0: 3, 1: 2}
        b.add(0);
        assert_eq!(b.distinct_frequencies(), 3); // {0: 3, 1: 1, 2: 1}
    }

    #[test]
    fn extremes_and_witnesses() {
        let b = BTreeProfiler::from_frequencies(&[2, -1, 2, 0]);
        let (x, f) = b.mode().unwrap();
        assert_eq!(f, 2);
        assert_eq!(b.frequency(x), 2);
        assert_eq!(b.least(), Some((1, -1)));
        assert_eq!(BTreeProfiler::new(0).mode(), None);
    }

    #[test]
    fn rank_queries_match_sorting() {
        let freqs = [5i64, -2, 0, 7, 5, 1, 5];
        let b = BTreeProfiler::from_frequencies(&freqs);
        let mut sorted = freqs.to_vec();
        sorted.sort_unstable();
        let m = freqs.len() as u32;
        for k in 1..=m {
            assert_eq!(
                b.kth_largest_frequency(k),
                Some(sorted[(m - k) as usize]),
                "k={k}"
            );
        }
        assert_eq!(b.kth_largest_frequency(0), None);
        assert_eq!(b.kth_largest_frequency(m + 1), None);
        for t in -3..=8 {
            let want = freqs.iter().filter(|&&f| f >= t).count() as u32;
            assert_eq!(b.count_at_least(t), want, "t={t}");
        }
    }

    #[test]
    fn long_mixed_sequence_matches_naive() {
        let m = 12u32;
        let mut b = BTreeProfiler::new(m);
        let mut naive = vec![0i64; m as usize];
        let mut state = 2024u64;
        for step in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 3) % 10 < 7 {
                b.add(x);
                naive[x as usize] += 1;
            } else {
                b.remove(x);
                naive[x as usize] -= 1;
            }
            if step % 250 == 0 {
                assert_eq!(
                    b.mode().unwrap().1,
                    *naive.iter().max().unwrap(),
                    "step {step}"
                );
                assert_eq!(b.least().unwrap().1, *naive.iter().min().unwrap());
                let total: u32 = b.counts.values().sum();
                assert_eq!(total, m, "count map must always cover all objects");
            }
        }
    }
}
