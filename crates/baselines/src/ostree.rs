//! Order-statistic tree abstraction and the profiler built on top of it.
//!
//! The paper's §3.2 baseline is the GNU C++ PBDS order-statistic tree:
//! a balanced BST over all `m` `(frequency, object)` pairs, where a ±1
//! update is an erase + insert (O(log m)) and any rank query is a `select`
//! (O(log m)). We substitute two independent Rust implementations — a
//! randomized treap ([`crate::Treap`]) and an AVL tree ([`crate::AvlTree`])
//! — behind the [`OrderStatTree`] trait, so the benchmark comparison does
//! not hinge on one implementation's constants (DESIGN.md §3).

use sprofile::{FrequencyProfiler, RankQueries};

/// Keys are `(frequency, object)` pairs: unique, totally ordered, and
/// sorted primarily by frequency.
pub type Key = (i64, u32);

/// A multiset-free ordered set of unique [`Key`]s with order statistics.
pub trait OrderStatTree {
    /// Display name for harness output.
    const NAME: &'static str;

    /// Creates an empty tree.
    fn new() -> Self;

    /// Inserts `key`; must not already be present.
    fn insert(&mut self, key: Key);

    /// Removes `key`, returning whether it was present.
    fn erase(&mut self, key: Key) -> bool;

    /// The k-th smallest key, 0-based.
    fn select(&self, k: u32) -> Option<Key>;

    /// Number of keys strictly smaller than `key`.
    fn rank(&self, key: Key) -> u32;

    /// Number of keys stored.
    fn len(&self) -> u32;

    /// Whether the tree stores no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Frequency profiler backed by an order-statistic tree over all `m`
/// `(frequency, object)` pairs — the paper's balanced-tree baseline.
///
/// Updates cost O(log m) (one erase + one insert); every rank query is a
/// O(log m) `select`.
#[derive(Clone, Debug)]
pub struct TreeProfiler<T: OrderStatTree> {
    freq: Vec<i64>,
    tree: T,
}

impl<T: OrderStatTree> TreeProfiler<T> {
    /// Creates the profiler over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        let mut tree = T::new();
        for x in 0..m {
            tree.insert((0, x));
        }
        TreeProfiler {
            freq: vec![0; m as usize],
            tree,
        }
    }

    /// Builds the profiler from starting frequencies.
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        let mut tree = T::new();
        for (x, &f) in freqs.iter().enumerate() {
            tree.insert((f, x as u32));
        }
        TreeProfiler {
            freq: freqs.to_vec(),
            tree,
        }
    }

    /// Direct read access to the underlying tree (diagnostics/tests).
    pub fn tree(&self) -> &T {
        &self.tree
    }

    #[inline]
    fn reinsert(&mut self, x: u32, delta: i64) {
        let old = self.freq[x as usize];
        let removed = self.tree.erase((old, x));
        debug_assert!(removed, "tree desynced from freq array at object {x}");
        let new = old + delta;
        self.freq[x as usize] = new;
        self.tree.insert((new, x));
    }
}

impl<T: OrderStatTree> FrequencyProfiler for TreeProfiler<T> {
    fn num_objects(&self) -> u32 {
        self.freq.len() as u32
    }

    #[inline]
    fn add(&mut self, x: u32) {
        self.reinsert(x, 1);
    }

    #[inline]
    fn remove(&mut self, x: u32) {
        self.reinsert(x, -1);
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.freq[x as usize]
    }

    fn mode(&self) -> Option<(u32, i64)> {
        let m = self.tree.len();
        if m == 0 {
            return None;
        }
        self.tree.select(m - 1).map(|(f, x)| (x, f))
    }

    fn least(&self) -> Option<(u32, i64)> {
        self.tree.select(0).map(|(f, x)| (x, f))
    }

    fn name(&self) -> &'static str {
        T::NAME
    }
}

impl<T: OrderStatTree> RankQueries for TreeProfiler<T> {
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.tree.len();
        if k == 0 || k > m {
            return None;
        }
        self.tree.select(m - k).map(|(f, _)| f)
    }

    fn count_at_least(&self, threshold: i64) -> u32 {
        // rank((threshold, 0)) counts keys strictly below every object at
        // `threshold`, i.e. exactly the keys with frequency < threshold.
        self.tree.len() - self.tree.rank((threshold, 0))
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared behavioural test battery run against every `OrderStatTree`.
    use super::*;

    pub fn ordered_set_semantics<T: OrderStatTree>() {
        let mut t = T::new();
        assert!(t.is_empty());
        assert_eq!(t.select(0), None);
        let keys: [Key; 6] = [(5, 1), (3, 0), (5, 0), (-2, 9), (0, 4), (7, 2)];
        for &k in &keys {
            t.insert(k);
        }
        assert_eq!(t.len(), 6);
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for (i, &k) in sorted.iter().enumerate() {
            assert_eq!(t.select(i as u32), Some(k), "select({i})");
            assert_eq!(t.rank(k), i as u32, "rank({k:?})");
        }
        assert_eq!(t.select(6), None);
        // rank of an absent key: number of smaller keys.
        assert_eq!(t.rank((4, 0)), 3); // (-2,9) (0,4) (3,0)
        assert_eq!(t.rank((i64::MIN, 0)), 0);
        assert_eq!(t.rank((i64::MAX, u32::MAX)), 6);
        // erase middle, absent, extremes.
        assert!(t.erase((5, 0)));
        assert!(!t.erase((5, 0)));
        assert!(!t.erase((100, 100)));
        assert_eq!(t.len(), 5);
        assert_eq!(t.select(3), Some((5, 1)));
        assert!(t.erase((-2, 9)));
        assert_eq!(t.select(0), Some((0, 4)));
        assert!(t.erase((7, 2)));
        assert_eq!(t.select(t.len() - 1), Some((5, 1)));
    }

    pub fn randomized_against_sorted_vec<T: OrderStatTree>() {
        let mut t = T::new();
        let mut reference: Vec<Key> = Vec::new();
        let mut state = 0xabcdef12345u64;
        for step in 0..4000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = ((state >> 40) % 17) as i64 - 8;
            let id = ((state >> 20) % 50) as u32;
            let key = (f, id);
            let present = reference.binary_search(&key).is_ok();
            if (state >> 5) & 1 == 0 && !present {
                t.insert(key);
                let idx = reference.binary_search(&key).unwrap_err();
                reference.insert(idx, key);
            } else {
                let erased = t.erase(key);
                assert_eq!(erased, present, "step {step} erase({key:?})");
                if present {
                    let idx = reference.binary_search(&key).unwrap();
                    reference.remove(idx);
                }
            }
            assert_eq!(t.len() as usize, reference.len());
            if step % 64 == 0 {
                for (i, &k) in reference.iter().enumerate() {
                    assert_eq!(t.select(i as u32), Some(k));
                    assert_eq!(t.rank(k), i as u32);
                }
            }
        }
    }

    pub fn profiler_tracks_naive<T: OrderStatTree>() {
        let m = 16u32;
        let mut p: TreeProfiler<T> = TreeProfiler::new(m);
        let mut naive = vec![0i64; m as usize];
        let mut state = 31u64;
        for step in 0..3000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 13) % 10 < 7 {
                p.add(x);
                naive[x as usize] += 1;
            } else {
                p.remove(x);
                naive[x as usize] -= 1;
            }
            if step % 100 == 0 {
                let max = naive.iter().copied().max().unwrap();
                let min = naive.iter().copied().min().unwrap();
                assert_eq!(p.mode().unwrap().1, max, "step {step}");
                assert_eq!(p.least().unwrap().1, min);
                let mut sorted = naive.clone();
                sorted.sort_unstable();
                for k in 1..=m {
                    assert_eq!(
                        p.kth_largest_frequency(k),
                        Some(sorted[(m - k) as usize]),
                        "step {step} k={k}"
                    );
                }
                assert_eq!(p.median_frequency(), Some(sorted[((m - 1) / 2) as usize]));
                for t in -4..=4i64 {
                    let want = naive.iter().filter(|&&f| f >= t).count() as u32;
                    assert_eq!(p.count_at_least(t), want, "step {step} t={t}");
                }
            }
        }
    }
}
