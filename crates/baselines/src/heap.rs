//! Indexed binary heap baseline (paper §3.1).
//!
//! The classical way to keep the extreme frequency under ±1 updates: a
//! binary heap over all `m` objects keyed by frequency, augmented with a
//! `pos[]` array so the heap slot of any object is known and its key can
//! be increased/decreased in **O(log m)** by sifting. The root yields the
//! mode (max-heap) or the least-frequent object (min-heap) in O(1).
//!
//! This is exactly the structure the paper's Figures 3–5 compare S-Profile
//! against. Its inherent limitation — also called out by the paper — is
//! that a heap only exposes its own extreme: the opposite extreme, ranks
//! and medians need an O(m) scan.

use std::marker::PhantomData;

use sprofile::FrequencyProfiler;

/// Heap ordering policy: which of two frequencies belongs closer to the root.
pub trait Direction {
    /// Display name used in harness output.
    const NAME: &'static str;
    /// Whether frequency `a` should sit above frequency `b`.
    fn prefer(a: i64, b: i64) -> bool;
}

/// Max-heap policy: the root holds a maximum frequency (mode).
#[derive(Clone, Copy, Debug, Default)]
pub struct Max;

/// Min-heap policy: the root holds a minimum frequency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Min;

impl Direction for Max {
    const NAME: &'static str = "heap(max)";
    #[inline]
    fn prefer(a: i64, b: i64) -> bool {
        a > b
    }
}

impl Direction for Min {
    const NAME: &'static str = "heap(min)";
    #[inline]
    fn prefer(a: i64, b: i64) -> bool {
        a < b
    }
}

/// Position-tracked binary heap over all `m` object frequencies.
///
/// `D` selects which extreme the root exposes; see [`Max`] and [`Min`].
#[derive(Clone, Debug)]
pub struct IndexedHeap<D: Direction> {
    /// Per-object frequency.
    freq: Vec<i64>,
    /// Heap array of object ids; `heap[0]` is the root.
    heap: Vec<u32>,
    /// `pos[x]` = index of object `x` inside `heap`.
    pos: Vec<u32>,
    _d: PhantomData<D>,
}

/// The paper's mode-maintenance heap: max-oriented.
pub type MaxHeapProfiler = IndexedHeap<Max>;

/// Min-oriented variant (useful for "find the low-degree node" shaving).
pub type MinHeapProfiler = IndexedHeap<Min>;

impl<D: Direction> IndexedHeap<D> {
    /// Creates a heap over universe `0..m` with all frequencies 0.
    pub fn new(m: u32) -> Self {
        IndexedHeap {
            freq: vec![0; m as usize],
            heap: (0..m).collect(),
            pos: (0..m).collect(),
            _d: PhantomData,
        }
    }

    /// Builds a heap with the given starting frequencies. O(m) (Floyd).
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        let m = u32::try_from(freqs.len()).expect("universe larger than u32");
        let mut h = IndexedHeap {
            freq: freqs.to_vec(),
            heap: (0..m).collect(),
            pos: (0..m).collect(),
            _d: PhantomData,
        };
        if m > 1 {
            for i in (0..m as usize / 2).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    /// The root's `(object, frequency)` — the heap's extreme. O(1).
    #[inline]
    pub fn root(&self) -> Option<(u32, i64)> {
        self.heap.first().map(|&x| (x, self.freq[x as usize]))
    }

    /// Universe size.
    #[inline]
    pub fn len(&self) -> u32 {
        self.freq.len() as u32
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }

    /// Current frequency of `x`. O(1).
    #[inline]
    pub fn frequency_of(&self, x: u32) -> i64 {
        self.freq[x as usize]
    }

    /// Increments `x`'s frequency and restores heap order. O(log m).
    #[inline]
    pub fn increment(&mut self, x: u32) -> i64 {
        self.freq[x as usize] += 1;
        self.restore(self.pos[x as usize] as usize);
        self.freq[x as usize]
    }

    /// Decrements `x`'s frequency and restores heap order. O(log m).
    #[inline]
    pub fn decrement(&mut self, x: u32) -> i64 {
        self.freq[x as usize] -= 1;
        self.restore(self.pos[x as usize] as usize);
        self.freq[x as usize]
    }

    /// Scans all m frequencies for the extreme *opposite* to the heap's
    /// orientation. O(m) — heaps cannot answer this cheaply, which is one
    /// of the paper's arguments for S-Profile.
    pub fn opposite_extreme(&self) -> Option<(u32, i64)> {
        let mut best: Option<(u32, i64)> = None;
        for (x, &f) in self.freq.iter().enumerate() {
            match best {
                // `f` is more extreme in the *opposite* sense exactly when
                // the current best would sit above it in this heap.
                Some((_, bf)) if D::prefer(bf, f) => best = Some((x as u32, f)),
                None => best = Some((x as u32, f)),
                _ => {}
            }
        }
        best
    }

    #[inline]
    fn key(&self, heap_idx: usize) -> i64 {
        self.freq[self.heap[heap_idx] as usize]
    }

    #[inline]
    fn swap_slots(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }

    /// Re-establishes heap order around `i` after its key changed by ±1.
    #[inline]
    fn restore(&mut self, i: usize) {
        if !self.sift_up(i) {
            self.sift_down(i);
        }
    }

    /// Returns true if any swap happened.
    fn sift_up(&mut self, mut i: usize) -> bool {
        let mut moved = false;
        while i > 0 {
            let parent = (i - 1) / 2;
            if D::prefer(self.key(i), self.key(parent)) {
                self.swap_slots(i, parent);
                i = parent;
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut best = i;
            if l < n && D::prefer(self.key(l), self.key(best)) {
                best = l;
            }
            if r < n && D::prefer(self.key(r), self.key(best)) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }

    /// O(m) structural validation for tests: heap order and pos/heap
    /// consistency.
    pub fn check_heap_property(&self) -> Result<(), String> {
        let n = self.heap.len();
        for (i, &x) in self.heap.iter().enumerate() {
            if self.pos[x as usize] as usize != i {
                return Err(format!(
                    "pos[{x}] = {} but heap[{i}] = {x}",
                    self.pos[x as usize]
                ));
            }
        }
        for i in 1..n {
            let parent = (i - 1) / 2;
            if D::prefer(self.key(i), self.key(parent)) {
                return Err(format!(
                    "heap order violated at {i}: child {} beats parent {}",
                    self.key(i),
                    self.key(parent)
                ));
            }
        }
        Ok(())
    }
}

impl FrequencyProfiler for IndexedHeap<Max> {
    fn num_objects(&self) -> u32 {
        self.len()
    }

    #[inline]
    fn add(&mut self, x: u32) {
        self.increment(x);
    }

    #[inline]
    fn remove(&mut self, x: u32) {
        self.decrement(x);
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.frequency_of(x)
    }

    #[inline]
    fn mode(&self) -> Option<(u32, i64)> {
        self.root()
    }

    /// O(m): a max-heap cannot locate its minimum cheaply.
    fn least(&self) -> Option<(u32, i64)> {
        self.opposite_extreme()
    }

    fn name(&self) -> &'static str {
        Max::NAME
    }
}

impl FrequencyProfiler for IndexedHeap<Min> {
    fn num_objects(&self) -> u32 {
        self.len()
    }

    #[inline]
    fn add(&mut self, x: u32) {
        self.increment(x);
    }

    #[inline]
    fn remove(&mut self, x: u32) {
        self.decrement(x);
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.frequency_of(x)
    }

    /// O(m): a min-heap cannot locate its maximum cheaply.
    fn mode(&self) -> Option<(u32, i64)> {
        self.opposite_extreme()
    }

    #[inline]
    fn least(&self) -> Option<(u32, i64)> {
        self.root()
    }

    fn name(&self) -> &'static str {
        Min::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_fresh() {
        let h = MaxHeapProfiler::new(0);
        assert!(h.is_empty());
        assert_eq!(h.root(), None);
        let h = MaxHeapProfiler::new(3);
        assert_eq!(h.root().unwrap().1, 0);
        h.check_heap_property().unwrap();
    }

    #[test]
    fn max_heap_tracks_mode() {
        let mut h = MaxHeapProfiler::new(6);
        h.increment(2);
        h.increment(2);
        h.increment(4);
        assert_eq!(h.root(), Some((2, 2)));
        h.decrement(2);
        h.decrement(2);
        // Now 4 has frequency 1, everything else 0 or less.
        assert_eq!(h.root(), Some((4, 1)));
        h.check_heap_property().unwrap();
    }

    #[test]
    fn min_heap_tracks_least() {
        let mut h = MinHeapProfiler::new(4);
        h.decrement(3);
        assert_eq!(h.root(), Some((3, -1)));
        h.increment(3);
        h.increment(0);
        h.increment(1);
        h.increment(2);
        h.increment(3);
        // All at 1 now.
        assert_eq!(h.root().unwrap().1, 1);
        h.check_heap_property().unwrap();
    }

    #[test]
    fn from_frequencies_heapifies() {
        let h = IndexedHeap::<Max>::from_frequencies(&[3, 9, 1, 9, 0]);
        h.check_heap_property().unwrap();
        let (obj, f) = h.root().unwrap();
        assert_eq!(f, 9);
        assert!(obj == 1 || obj == 3);
        let h = IndexedHeap::<Min>::from_frequencies(&[3, 9, 1, 9, 0]);
        h.check_heap_property().unwrap();
        assert_eq!(h.root(), Some((4, 0)));
    }

    #[test]
    fn opposite_extreme_scans() {
        let h = IndexedHeap::<Max>::from_frequencies(&[3, -5, 1]);
        assert_eq!(h.opposite_extreme(), Some((1, -5)));
        let h = IndexedHeap::<Min>::from_frequencies(&[3, -5, 1]);
        assert_eq!(h.opposite_extreme(), Some((0, 3)));
    }

    #[test]
    fn trait_impls_agree_with_inherent() {
        let mut h = MaxHeapProfiler::new(5);
        FrequencyProfiler::add(&mut h, 1);
        FrequencyProfiler::add(&mut h, 1);
        FrequencyProfiler::remove(&mut h, 2);
        assert_eq!(FrequencyProfiler::mode(&h), Some((1, 2)));
        assert_eq!(FrequencyProfiler::least(&h), Some((2, -1)));
        assert_eq!(FrequencyProfiler::frequency(&h, 1), 2);
        assert_eq!(h.name(), "heap(max)");
        let h = MinHeapProfiler::new(2);
        assert_eq!(h.name(), "heap(min)");
    }

    #[test]
    fn heap_property_holds_under_long_mixed_sequence() {
        let m = 24u32;
        let mut h = MaxHeapProfiler::new(m);
        let mut naive = vec![0i64; m as usize];
        let mut state = 777u64;
        for step in 0..10_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 9) % 5 < 3 {
                h.increment(x);
                naive[x as usize] += 1;
            } else {
                h.decrement(x);
                naive[x as usize] -= 1;
            }
            if step % 512 == 0 {
                h.check_heap_property().unwrap();
                let max = naive.iter().copied().max().unwrap();
                assert_eq!(h.root().unwrap().1, max, "step {step}");
                for y in 0..m {
                    assert_eq!(h.frequency_of(y), naive[y as usize]);
                }
            }
        }
    }
}
