//! Exponential histogram for sliding-window basic counting
//! (Datar, Gionis, Indyk, Motwani — SIAM J. Comput. 2002; the paper's
//! reference [5]).
//!
//! The S-Profile paper's §1 contrasts itself with the sliding-window
//! sketching line of work: those algorithms answer window statistics
//! *approximately* in o(W) space, while the §2.3 window adapter answers
//! them *exactly* in O(W + m) space. This module implements the classic
//! representative of that line — per-object event counting over the last
//! `W` time units with relative error ε in O((1/ε)·log²W) bits — so the
//! trade-off can be tested and benchmarked rather than asserted.

use std::collections::VecDeque;

/// Approximate count of events in a sliding time window.
///
/// Maintains buckets of power-of-two sizes; at most `k+1` buckets of each
/// size, merging the two oldest of a size on overflow. The estimate errs
/// only in the oldest (straddling) bucket, giving relative error ≤ 1/k.
///
/// # Example
/// ```
/// use sprofile_baselines::ExpHistogram;
///
/// let mut eh = ExpHistogram::new(100, 0.1); // window 100, ε = 0.1
/// for t in 0..50 {
///     eh.record(t);
/// }
/// let est = eh.estimate(49);
/// assert!((est as f64 - 50.0).abs() <= 0.1 * 50.0 + 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct ExpHistogram {
    /// Window length in time units.
    window: u64,
    /// Max buckets per size class before a merge (⌈1/ε⌉).
    k: usize,
    /// `(last_timestamp, size)` buckets, newest at the back.
    buckets: VecDeque<(u64, u64)>,
    /// Sum of all bucket sizes.
    total: u64,
    /// Newest timestamp observed.
    latest: u64,
}

impl ExpHistogram {
    /// Creates a histogram for a window of `window` time units with
    /// relative-error target `epsilon`.
    ///
    /// # Panics
    /// If `window == 0` or `epsilon` is not in `(0, 1]`.
    pub fn new(window: u64, epsilon: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        ExpHistogram {
            window,
            k: (1.0 / epsilon).ceil() as usize,
            buckets: VecDeque::new(),
            total: 0,
            latest: 0,
        }
    }

    /// Records one event at `ts` (non-decreasing).
    pub fn record(&mut self, ts: u64) {
        assert!(ts >= self.latest, "timestamps must be non-decreasing");
        self.latest = ts;
        self.expire();
        self.buckets.push_back((ts, 1));
        self.total += 1;
        self.merge_overflow();
    }

    /// Estimated number of events with timestamp in `(now − window, now]`.
    pub fn estimate(&self, now: u64) -> u64 {
        debug_assert!(now >= self.latest, "estimate at a past time");
        let cutoff = now.saturating_sub(self.window);
        let mut total = 0u64;
        let mut oldest_live: Option<u64> = None;
        for &(ts, size) in &self.buckets {
            // Bucket expired entirely if its newest element is too old.
            if ts > cutoff {
                total += size;
                if oldest_live.is_none() {
                    oldest_live = Some(size);
                }
            }
        }
        // The oldest live bucket straddles the boundary: count half of it.
        match oldest_live {
            Some(size) => total - size + size.div_ceil(2),
            None => 0,
        }
    }

    /// Number of buckets currently held — the O((1/ε)·logW) space bound.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The window length.
    pub fn window(&self) -> u64 {
        self.window
    }

    fn expire(&mut self) {
        let cutoff = self.latest.saturating_sub(self.window);
        while let Some(&(ts, size)) = self.buckets.front() {
            // A bucket is dropped once even its newest element has aged out.
            if ts.saturating_add(self.window) <= self.latest && ts <= cutoff {
                self.total -= size;
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Restores the "≤ k+1 buckets per size" invariant by cascading merges.
    fn merge_overflow(&mut self) {
        let mut size = 1u64;
        loop {
            // Count buckets of `size`, locating the two oldest.
            let mut idxs: Vec<usize> = Vec::new();
            for (i, &(_, s)) in self.buckets.iter().enumerate() {
                if s == size {
                    idxs.push(i);
                }
            }
            if idxs.len() <= self.k + 1 {
                break;
            }
            // Merge the two oldest buckets of this size (smallest indices).
            let a = idxs[0];
            let b = idxs[1];
            let (ts_b, _) = self.buckets[b];
            self.buckets[a] = (ts_b, size * 2);
            self.buckets.remove(b);
            size *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact reference: a queue of timestamps.
    struct Exact {
        window: u64,
        times: VecDeque<u64>,
    }

    impl Exact {
        fn new(window: u64) -> Self {
            Exact {
                window,
                times: VecDeque::new(),
            }
        }
        fn record(&mut self, ts: u64) {
            self.times.push_back(ts);
        }
        fn count(&mut self, now: u64) -> u64 {
            while let Some(&t) = self.times.front() {
                if t.saturating_add(self.window) <= now {
                    self.times.pop_front();
                } else {
                    break;
                }
            }
            self.times.len() as u64
        }
    }

    #[test]
    fn exact_while_window_not_full() {
        let mut eh = ExpHistogram::new(1000, 0.5);
        for t in 0..20 {
            eh.record(t);
        }
        // All events in window; estimate errs only by half the oldest
        // bucket, which is small here.
        let est = eh.estimate(19);
        assert!((est as i64 - 20).abs() <= 8, "estimate {est}");
    }

    #[test]
    fn error_stays_within_epsilon_bound() {
        for &eps in &[0.5f64, 0.2, 0.1] {
            let window = 500u64;
            let mut eh = ExpHistogram::new(window, eps);
            let mut exact = Exact::new(window);
            let mut state = 11u64;
            let mut now = 0u64;
            for _ in 0..5000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                now += (state >> 61) % 3;
                eh.record(now);
                exact.record(now);
                let want = exact.count(now) as f64;
                let got = eh.estimate(now) as f64;
                assert!(
                    (got - want).abs() <= eps * want + 1.0,
                    "eps {eps}: estimate {got} vs exact {want} at t={now}"
                );
            }
        }
    }

    #[test]
    fn space_is_logarithmic_not_linear() {
        let window = 1u64 << 20;
        let mut eh = ExpHistogram::new(window, 0.25);
        for t in 0..200_000u64 {
            eh.record(t);
        }
        // Exact storage would hold ~window timestamps; EH holds
        // O(k · log(count)) buckets.
        assert!(
            eh.num_buckets() < 150,
            "expected logarithmic bucket count, got {}",
            eh.num_buckets()
        );
    }

    #[test]
    fn everything_expires() {
        let mut eh = ExpHistogram::new(10, 0.5);
        for t in 0..5 {
            eh.record(t);
        }
        assert!(eh.estimate(100) == 0, "all events aged out");
        // Recording again after a gap works.
        eh.record(100);
        assert!(eh.estimate(100) >= 1);
        assert_eq!(eh.window(), 10);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut eh = ExpHistogram::new(10, 0.5);
        eh.record(5);
        eh.record(4);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = ExpHistogram::new(10, 0.0);
    }
}
