//! Binary-search sorted-array baseline.
//!
//! A middle ground the paper does not evaluate but that sharpens the
//! ablation story: keep the sorted frequency array `T` explicitly (like
//! S-Profile) but *without* the block set. A ±1 update then needs a
//! **binary search** (O(log m)) to find the boundary of the run of equal
//! values, followed by the same single swap S-Profile does. Queries are
//! identical O(1) array lookups.
//!
//! Comparing this against S-Profile isolates exactly what the block set
//! buys: replacing the O(log m) boundary search with an O(1) pointer
//! lookup.

use sprofile::{FrequencyProfiler, RankQueries};

/// Sorted frequency array maintained by binary-search + swap.
#[derive(Clone, Debug)]
pub struct SortedVecProfiler {
    /// The sorted frequency array `T` (ascending).
    sorted: Vec<i64>,
    /// position → object id.
    to_obj: Vec<u32>,
    /// object id → position.
    to_pos: Vec<u32>,
}

impl SortedVecProfiler {
    /// Creates a profiler over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        SortedVecProfiler {
            sorted: vec![0; m as usize],
            to_obj: (0..m).collect(),
            to_pos: (0..m).collect(),
        }
    }

    /// Builds from starting frequencies. O(m log m).
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        let m = freqs.len() as u32;
        let mut to_obj: Vec<u32> = (0..m).collect();
        to_obj.sort_by_key(|&x| freqs[x as usize]);
        let mut to_pos = vec![0u32; m as usize];
        for (pos, &obj) in to_obj.iter().enumerate() {
            to_pos[obj as usize] = pos as u32;
        }
        let sorted = to_obj.iter().map(|&x| freqs[x as usize]).collect();
        SortedVecProfiler {
            sorted,
            to_obj,
            to_pos,
        }
    }

    #[inline]
    fn swap_positions(&mut self, p: usize, q: usize) {
        if p == q {
            return;
        }
        let a = self.to_obj[p];
        let b = self.to_obj[q];
        self.to_obj.swap(p, q);
        self.to_pos[a as usize] = q as u32;
        self.to_pos[b as usize] = p as u32;
    }

    /// O(m) validation for tests.
    pub fn check_sorted(&self) -> Result<(), String> {
        for w in self.sorted.windows(2) {
            if w[0] > w[1] {
                return Err(format!("not sorted: {} before {}", w[0], w[1]));
            }
        }
        for (pos, &obj) in self.to_obj.iter().enumerate() {
            if self.to_pos[obj as usize] as usize != pos {
                return Err(format!("permutation broken at position {pos}"));
            }
        }
        Ok(())
    }
}

impl FrequencyProfiler for SortedVecProfiler {
    fn num_objects(&self) -> u32 {
        self.sorted.len() as u32
    }

    /// O(log m): binary search for the right boundary of x's run, then one
    /// swap — the "brute-force swap chain" of paper Fig. 1(b) collapsed by
    /// search instead of by blocks.
    fn add(&mut self, x: u32) {
        let p = self.to_pos[x as usize] as usize;
        let f = self.sorted[p];
        // partition_point: first index whose value is > f, i.e. one past
        // the run of f's; the run's last index is that − 1.
        let r = self.sorted.partition_point(|&v| v <= f) - 1;
        self.swap_positions(p, r);
        self.sorted[r] = f + 1;
    }

    /// O(log m): mirror image at the left boundary.
    fn remove(&mut self, x: u32) {
        let p = self.to_pos[x as usize] as usize;
        let f = self.sorted[p];
        let l = self.sorted.partition_point(|&v| v < f);
        self.swap_positions(p, l);
        self.sorted[l] = f - 1;
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.sorted[self.to_pos[x as usize] as usize]
    }

    fn mode(&self) -> Option<(u32, i64)> {
        let m = self.sorted.len();
        if m == 0 {
            return None;
        }
        Some((self.to_obj[m - 1], self.sorted[m - 1]))
    }

    fn least(&self) -> Option<(u32, i64)> {
        if self.sorted.is_empty() {
            return None;
        }
        Some((self.to_obj[0], self.sorted[0]))
    }

    fn name(&self) -> &'static str {
        "sorted-array(bsearch)"
    }
}

impl RankQueries for SortedVecProfiler {
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.sorted.len() as u32;
        if k == 0 || k > m {
            return None;
        }
        Some(self.sorted[(m - k) as usize])
    }

    fn count_at_least(&self, threshold: i64) -> u32 {
        let below = self.sorted.partition_point(|&v| v < threshold);
        (self.sorted.len() - below) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_keep_array_sorted() {
        let mut s = SortedVecProfiler::new(8);
        let script = [3u32, 3, 3, 1, 1, 5, 0, 3];
        for &x in &script {
            s.add(x);
            s.check_sorted().unwrap();
        }
        assert_eq!(s.frequency(3), 4);
        assert_eq!(s.frequency(1), 2);
        assert_eq!(s.mode(), Some((3, 4)));
        for &x in script.iter().rev() {
            s.remove(x);
            s.check_sorted().unwrap();
        }
        assert_eq!(s.mode().unwrap().1, 0);
    }

    #[test]
    fn negative_frequencies_supported() {
        let mut s = SortedVecProfiler::new(3);
        s.remove(1);
        s.remove(1);
        s.check_sorted().unwrap();
        assert_eq!(s.least(), Some((1, -2)));
        assert_eq!(s.frequency(1), -2);
    }

    #[test]
    fn from_frequencies_and_ranks() {
        let freqs = [4i64, -1, 2, 4, 0];
        let s = SortedVecProfiler::from_frequencies(&freqs);
        s.check_sorted().unwrap();
        let mut sorted = freqs.to_vec();
        sorted.sort_unstable();
        for k in 1..=5u32 {
            assert_eq!(s.kth_largest_frequency(k), Some(sorted[(5 - k) as usize]));
        }
        assert_eq!(s.median_frequency(), Some(2));
        assert_eq!(s.count_at_least(2), 3);
        assert_eq!(s.count_at_least(5), 0);
        assert_eq!(s.count_at_least(-10), 5);
    }

    #[test]
    fn long_random_sequence_matches_naive() {
        let m = 20u32;
        let mut s = SortedVecProfiler::new(m);
        let mut naive = vec![0i64; m as usize];
        let mut state = 55u64;
        for step in 0..8000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let x = ((state >> 33) % m as u64) as u32;
            if (state >> 3) % 10 < 6 {
                s.add(x);
                naive[x as usize] += 1;
            } else {
                s.remove(x);
                naive[x as usize] -= 1;
            }
            if step % 500 == 0 {
                s.check_sorted().unwrap();
                for y in 0..m {
                    assert_eq!(s.frequency(y), naive[y as usize]);
                }
                assert_eq!(s.mode().unwrap().1, *naive.iter().max().unwrap());
                assert_eq!(s.least().unwrap().1, *naive.iter().min().unwrap());
            }
        }
    }

    #[test]
    fn empty_universe() {
        let s = SortedVecProfiler::new(0);
        assert_eq!(s.mode(), None);
        assert_eq!(s.least(), None);
        assert_eq!(s.kth_largest_frequency(1), None);
        assert_eq!(s.count_at_least(0), 0);
    }
}
