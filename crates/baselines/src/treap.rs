//! Randomized order-statistic treap — PBDS substitute #1.
//!
//! A treap keeps BST order on the key and heap order on a random priority,
//! giving expected O(log n) insert/erase/select/rank. Nodes live in a slab
//! arena with `u32` links (no per-node boxing), and priorities come from a
//! deterministic SplitMix64 so runs are reproducible.

use crate::ostree::{Key, OrderStatTree};

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: Key,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// Order-statistic treap over unique `(frequency, object)` keys.
#[derive(Clone, Debug)]
pub struct Treap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
}

impl Treap {
    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn pull(&mut self, n: u32) {
        let l = self.nodes[n as usize].left;
        let r = self.nodes[n as usize].right;
        self.nodes[n as usize].size = 1 + self.size(l) + self.size(r);
    }

    #[inline]
    fn next_prio(&mut self) -> u64 {
        // SplitMix64.
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn new_node(&mut self, key: Key) -> u32 {
        let prio = self.next_prio();
        let node = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Splits `n` into (< key, >= key).
    fn split(&mut self, n: u32, key: Key) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.nodes[n as usize].key < key {
            let right = self.nodes[n as usize].right;
            let (a, b) = self.split(right, key);
            self.nodes[n as usize].right = a;
            self.pull(n);
            (n, b)
        } else {
            let left = self.nodes[n as usize].left;
            let (a, b) = self.split(left, key);
            self.nodes[n as usize].left = b;
            self.pull(n);
            (a, n)
        }
    }

    /// Merges trees `a` (all keys smaller) and `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let merged = self.merge(ar, b);
            self.nodes[a as usize].right = merged;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let merged = self.merge(a, bl);
            self.nodes[b as usize].left = merged;
            self.pull(b);
            b
        }
    }

    fn erase_rec(&mut self, n: u32, key: Key) -> (u32, bool) {
        if n == NIL {
            return (NIL, false);
        }
        let nk = self.nodes[n as usize].key;
        if nk == key {
            let l = self.nodes[n as usize].left;
            let r = self.nodes[n as usize].right;
            let merged = self.merge(l, r);
            self.free.push(n);
            return (merged, true);
        }
        let (child, erased) = if key < nk {
            let l = self.nodes[n as usize].left;
            let res = self.erase_rec(l, key);
            self.nodes[n as usize].left = res.0;
            res
        } else {
            let r = self.nodes[n as usize].right;
            let res = self.erase_rec(r, key);
            self.nodes[n as usize].right = res.0;
            res
        };
        let _ = child;
        if erased {
            self.pull(n);
        }
        (n, erased)
    }

    /// O(n) structural validation for tests: BST order, heap order on
    /// priorities, and size augmentation.
    pub fn check_structure(&self) -> Result<(), String> {
        fn walk(t: &Treap, n: u32, lo: Option<Key>, hi: Option<Key>) -> Result<u32, String> {
            if n == NIL {
                return Ok(0);
            }
            let node = &t.nodes[n as usize];
            if let Some(lo) = lo {
                if node.key <= lo {
                    return Err(format!(
                        "BST violation: {:?} <= lower bound {:?}",
                        node.key, lo
                    ));
                }
            }
            if let Some(hi) = hi {
                if node.key >= hi {
                    return Err(format!(
                        "BST violation: {:?} >= upper bound {:?}",
                        node.key, hi
                    ));
                }
            }
            for child in [node.left, node.right] {
                if child != NIL && t.nodes[child as usize].prio > node.prio {
                    return Err("priority heap order violated".into());
                }
            }
            let ls = walk(t, node.left, lo, Some(node.key))?;
            let rs = walk(t, node.right, Some(node.key), hi)?;
            if node.size != ls + rs + 1 {
                return Err(format!(
                    "size augmentation wrong at {:?}: stored {}, actual {}",
                    node.key,
                    node.size,
                    ls + rs + 1
                ));
            }
            Ok(node.size)
        }
        walk(self, self.root, None, None).map(|_| ())
    }
}

impl OrderStatTree for Treap {
    const NAME: &'static str = "treap";

    fn new() -> Self {
        Treap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: 0x5eed_5eed_5eed_5eed,
        }
    }

    fn insert(&mut self, key: Key) {
        let (a, b) = self.split(self.root, key);
        let n = self.new_node(key);
        let left = self.merge(a, n);
        self.root = self.merge(left, b);
    }

    fn erase(&mut self, key: Key) -> bool {
        let (root, erased) = self.erase_rec(self.root, key);
        self.root = root;
        erased
    }

    fn select(&self, k: u32) -> Option<Key> {
        if k >= self.size(self.root) {
            return None;
        }
        let mut n = self.root;
        let mut k = k;
        loop {
            let node = &self.nodes[n as usize];
            let ls = self.size(node.left);
            if k < ls {
                n = node.left;
            } else if k == ls {
                return Some(node.key);
            } else {
                k -= ls + 1;
                n = node.right;
            }
        }
    }

    fn rank(&self, key: Key) -> u32 {
        let mut n = self.root;
        let mut acc = 0u32;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.key < key {
                acc += self.size(node.left) + 1;
                n = node.right;
            } else {
                n = node.left;
            }
        }
        acc
    }

    fn len(&self) -> u32 {
        self.size(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ostree::conformance;

    #[test]
    fn ordered_set_semantics() {
        conformance::ordered_set_semantics::<Treap>();
    }

    #[test]
    fn randomized_against_sorted_vec() {
        conformance::randomized_against_sorted_vec::<Treap>();
    }

    #[test]
    fn profiler_tracks_naive() {
        conformance::profiler_tracks_naive::<Treap>();
    }

    #[test]
    fn structure_valid_under_churn() {
        let mut t = Treap::new();
        let mut present = Vec::new();
        let mut state = 99u64;
        for _ in 0..2000u32 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let key = (((state >> 35) % 64) as i64, ((state >> 10) % 64) as u32);
            if present.binary_search(&key).is_err() && (state & 3) != 0 {
                t.insert(key);
                let idx = present.binary_search(&key).unwrap_err();
                present.insert(idx, key);
            } else if let Ok(idx) = present.binary_search(&key) {
                assert!(t.erase(key));
                present.remove(idx);
            }
        }
        t.check_structure().unwrap();
        assert_eq!(t.len() as usize, present.len());
    }

    #[test]
    fn node_slab_reuses_freed_slots() {
        let mut t = Treap::new();
        for i in 0..100 {
            t.insert((i, 0));
        }
        let allocated = t.nodes.len();
        for i in 0..100 {
            assert!(t.erase((i, 0)));
        }
        for i in 0..100 {
            t.insert((i, 1));
        }
        assert_eq!(t.nodes.len(), allocated, "erased slots should be reused");
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut t = Treap::new();
            for i in 0..50 {
                t.insert((i * 7 % 23, i as u32));
            }
            t
        };
        let a = build();
        let b = build();
        for k in 0..a.len() {
            assert_eq!(a.select(k), b.select(k));
        }
    }
}
