//! Order-statistic AVL tree — PBDS substitute #2.
//!
//! Strictly height-balanced BST with subtree-size augmentation: worst-case
//! O(log n) insert/erase/select/rank. Implemented over a slab arena with
//! `u32` links, like [`crate::Treap`], so the two trees differ only in
//! their balancing strategy — which is exactly what the ablation benches
//! compare.

use crate::ostree::{Key, OrderStatTree};

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: Key,
    left: u32,
    right: u32,
    size: u32,
    height: i8,
}

/// Order-statistic AVL tree over unique `(frequency, object)` keys.
#[derive(Clone, Debug)]
pub struct AvlTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

impl AvlTree {
    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn height(&self, n: u32) -> i8 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].height
        }
    }

    #[inline]
    fn pull(&mut self, n: u32) {
        let node = &self.nodes[n as usize];
        let (l, r) = (node.left, node.right);
        let size = 1 + self.size(l) + self.size(r);
        let height = 1 + self.height(l).max(self.height(r));
        let node = &mut self.nodes[n as usize];
        node.size = size;
        node.height = height;
    }

    #[inline]
    fn balance_factor(&self, n: u32) -> i8 {
        let node = &self.nodes[n as usize];
        self.height(node.left) - self.height(node.right)
    }

    fn rotate_right(&mut self, n: u32) -> u32 {
        let l = self.nodes[n as usize].left;
        debug_assert_ne!(l, NIL);
        self.nodes[n as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = n;
        self.pull(n);
        self.pull(l);
        l
    }

    fn rotate_left(&mut self, n: u32) -> u32 {
        let r = self.nodes[n as usize].right;
        debug_assert_ne!(r, NIL);
        self.nodes[n as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = n;
        self.pull(n);
        self.pull(r);
        r
    }

    /// Rebalances `n` after an insert/erase beneath it.
    fn rebalance(&mut self, n: u32) -> u32 {
        self.pull(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            let l = self.nodes[n as usize].left;
            if self.balance_factor(l) < 0 {
                let new_l = self.rotate_left(l);
                self.nodes[n as usize].left = new_l;
            }
            self.rotate_right(n)
        } else if bf < -1 {
            let r = self.nodes[n as usize].right;
            if self.balance_factor(r) > 0 {
                let new_r = self.rotate_right(r);
                self.nodes[n as usize].right = new_r;
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn new_node(&mut self, key: Key) -> u32 {
        let node = Node {
            key,
            left: NIL,
            right: NIL,
            size: 1,
            height: 1,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn insert_rec(&mut self, n: u32, key: Key) -> u32 {
        if n == NIL {
            return self.new_node(key);
        }
        let nk = self.nodes[n as usize].key;
        debug_assert_ne!(nk, key, "duplicate key inserted into AVL tree");
        if key < nk {
            let l = self.nodes[n as usize].left;
            let new_l = self.insert_rec(l, key);
            self.nodes[n as usize].left = new_l;
        } else {
            let r = self.nodes[n as usize].right;
            let new_r = self.insert_rec(r, key);
            self.nodes[n as usize].right = new_r;
        }
        self.rebalance(n)
    }

    /// Removes and returns the minimum node of subtree `n` as
    /// `(new_subtree, detached_min)`.
    fn pop_min(&mut self, n: u32) -> (u32, u32) {
        let l = self.nodes[n as usize].left;
        if l == NIL {
            let r = self.nodes[n as usize].right;
            return (r, n);
        }
        let (new_l, min) = self.pop_min(l);
        self.nodes[n as usize].left = new_l;
        (self.rebalance(n), min)
    }

    fn erase_rec(&mut self, n: u32, key: Key) -> (u32, bool) {
        if n == NIL {
            return (NIL, false);
        }
        let nk = self.nodes[n as usize].key;
        let erased;
        if key < nk {
            let l = self.nodes[n as usize].left;
            let (new_l, e) = self.erase_rec(l, key);
            self.nodes[n as usize].left = new_l;
            erased = e;
        } else if key > nk {
            let r = self.nodes[n as usize].right;
            let (new_r, e) = self.erase_rec(r, key);
            self.nodes[n as usize].right = new_r;
            erased = e;
        } else {
            let l = self.nodes[n as usize].left;
            let r = self.nodes[n as usize].right;
            self.free.push(n);
            if r == NIL {
                return (l, true);
            }
            // Replace with the successor (min of the right subtree).
            let (new_r, succ) = self.pop_min(r);
            self.nodes[succ as usize].left = l;
            self.nodes[succ as usize].right = new_r;
            return (self.rebalance(succ), true);
        }
        if erased {
            (self.rebalance(n), true)
        } else {
            (n, false)
        }
    }

    /// O(n) structural validation for tests: BST order, AVL balance, and
    /// size/height augmentation.
    pub fn check_structure(&self) -> Result<(), String> {
        fn walk(
            t: &AvlTree,
            n: u32,
            lo: Option<Key>,
            hi: Option<Key>,
        ) -> Result<(u32, i8), String> {
            if n == NIL {
                return Ok((0, 0));
            }
            let node = &t.nodes[n as usize];
            if let Some(lo) = lo {
                if node.key <= lo {
                    return Err(format!("BST violation: {:?} <= {:?}", node.key, lo));
                }
            }
            if let Some(hi) = hi {
                if node.key >= hi {
                    return Err(format!("BST violation: {:?} >= {:?}", node.key, hi));
                }
            }
            let (ls, lh) = walk(t, node.left, lo, Some(node.key))?;
            let (rs, rh) = walk(t, node.right, Some(node.key), hi)?;
            if node.size != ls + rs + 1 {
                return Err(format!("size wrong at {:?}", node.key));
            }
            let h = 1 + lh.max(rh);
            if node.height != h {
                return Err(format!("height wrong at {:?}", node.key));
            }
            if (lh - rh).abs() > 1 {
                return Err(format!("AVL balance violated at {:?}", node.key));
            }
            Ok((node.size, h))
        }
        walk(self, self.root, None, None).map(|_| ())
    }
}

impl OrderStatTree for AvlTree {
    const NAME: &'static str = "avl";

    fn new() -> Self {
        AvlTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    fn insert(&mut self, key: Key) {
        self.root = self.insert_rec(self.root, key);
    }

    fn erase(&mut self, key: Key) -> bool {
        let (root, erased) = self.erase_rec(self.root, key);
        self.root = root;
        erased
    }

    fn select(&self, k: u32) -> Option<Key> {
        if k >= self.size(self.root) {
            return None;
        }
        let mut n = self.root;
        let mut k = k;
        loop {
            let node = &self.nodes[n as usize];
            let ls = self.size(node.left);
            if k < ls {
                n = node.left;
            } else if k == ls {
                return Some(node.key);
            } else {
                k -= ls + 1;
                n = node.right;
            }
        }
    }

    fn rank(&self, key: Key) -> u32 {
        let mut n = self.root;
        let mut acc = 0u32;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.key < key {
                acc += self.size(node.left) + 1;
                n = node.right;
            } else {
                n = node.left;
            }
        }
        acc
    }

    fn len(&self) -> u32 {
        self.size(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ostree::conformance;

    #[test]
    fn ordered_set_semantics() {
        conformance::ordered_set_semantics::<AvlTree>();
    }

    #[test]
    fn randomized_against_sorted_vec() {
        conformance::randomized_against_sorted_vec::<AvlTree>();
    }

    #[test]
    fn profiler_tracks_naive() {
        conformance::profiler_tracks_naive::<AvlTree>();
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut t = AvlTree::new();
        for i in 0..1024i64 {
            t.insert((i, 0));
        }
        t.check_structure().unwrap();
        // Height of a 1024-node AVL tree is at most 1.44·log2(1025) ≈ 14.
        assert!(t.height(t.root) <= 15, "height {}", t.height(t.root));
        for i in 0..1024i64 {
            assert_eq!(t.select(i as u32), Some((i, 0)));
        }
    }

    #[test]
    fn reverse_inserts_stay_balanced() {
        let mut t = AvlTree::new();
        for i in (0..512i64).rev() {
            t.insert((i, 0));
        }
        t.check_structure().unwrap();
        assert!(t.height(t.root) <= 14);
    }

    #[test]
    fn structure_valid_under_churn() {
        let mut t = AvlTree::new();
        let mut present: Vec<Key> = Vec::new();
        let mut state = 4242u64;
        for step in 0..3000u32 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let key = (
                ((state >> 35) % 96) as i64 - 48,
                ((state >> 10) % 16) as u32,
            );
            if present.binary_search(&key).is_err() && (state & 3) != 0 {
                t.insert(key);
                let idx = present.binary_search(&key).unwrap_err();
                present.insert(idx, key);
            } else if let Ok(idx) = present.binary_search(&key) {
                assert!(t.erase(key));
                present.remove(idx);
            }
            if step % 256 == 0 {
                t.check_structure().unwrap();
            }
        }
        t.check_structure().unwrap();
        assert_eq!(t.len() as usize, present.len());
    }

    #[test]
    fn erase_node_with_two_children() {
        let mut t = AvlTree::new();
        for i in [50i64, 25, 75, 10, 30, 60, 90] {
            t.insert((i, 0));
        }
        assert!(t.erase((50, 0)));
        t.check_structure().unwrap();
        assert_eq!(t.len(), 6);
        let remaining: Vec<i64> = (0..6).map(|k| t.select(k).unwrap().0).collect();
        assert_eq!(remaining, vec![10, 25, 30, 60, 75, 90]);
    }

    #[test]
    fn slab_reuse() {
        let mut t = AvlTree::new();
        for i in 0..64 {
            t.insert((i, 0));
        }
        let allocated = t.nodes.len();
        for i in 0..64 {
            assert!(t.erase((i, 0)));
        }
        for i in 100..164 {
            t.insert((i, 0));
        }
        assert_eq!(t.nodes.len(), allocated);
        t.check_structure().unwrap();
    }
}
