//! The "m buckets" strawman (paper §1).
//!
//! Keeps only the raw frequency array: updates are a single O(1) array
//! write, but *every* query is an O(m) scan (O(m) extra for selection).
//! This is the natural first answer to the paper's problem, included to
//! show the trade-off S-Profile removes: O(1) updates **and** O(1)
//! queries.

use sprofile::{FrequencyProfiler, RankQueries};

/// Frequency array with scan-based queries.
#[derive(Clone, Debug)]
pub struct BucketProfiler {
    freq: Vec<i64>,
}

impl BucketProfiler {
    /// Creates a profiler over universe `0..m`, all frequencies zero.
    pub fn new(m: u32) -> Self {
        BucketProfiler {
            freq: vec![0; m as usize],
        }
    }

    /// Builds from starting frequencies.
    pub fn from_frequencies(freqs: &[i64]) -> Self {
        BucketProfiler {
            freq: freqs.to_vec(),
        }
    }

    fn scan_extreme(&self, want_max: bool) -> Option<(u32, i64)> {
        let mut best: Option<(u32, i64)> = None;
        for (x, &f) in self.freq.iter().enumerate() {
            let better = match best {
                None => true,
                Some((_, bf)) => {
                    if want_max {
                        f > bf
                    } else {
                        f < bf
                    }
                }
            };
            if better {
                best = Some((x as u32, f));
            }
        }
        best
    }
}

impl FrequencyProfiler for BucketProfiler {
    fn num_objects(&self) -> u32 {
        self.freq.len() as u32
    }

    #[inline]
    fn add(&mut self, x: u32) {
        self.freq[x as usize] += 1;
    }

    #[inline]
    fn remove(&mut self, x: u32) {
        self.freq[x as usize] -= 1;
    }

    #[inline]
    fn frequency(&self, x: u32) -> i64 {
        self.freq[x as usize]
    }

    /// O(m) scan.
    fn mode(&self) -> Option<(u32, i64)> {
        self.scan_extreme(true)
    }

    /// O(m) scan.
    fn least(&self) -> Option<(u32, i64)> {
        self.scan_extreme(false)
    }

    fn name(&self) -> &'static str {
        "bucket-scan"
    }
}

impl RankQueries for BucketProfiler {
    /// O(m) via `select_nth_unstable` on a scratch copy.
    fn kth_largest_frequency(&self, k: u32) -> Option<i64> {
        let m = self.freq.len() as u32;
        if k == 0 || k > m {
            return None;
        }
        let mut scratch = self.freq.clone();
        let idx = (m - k) as usize;
        let (_, kth, _) = scratch.select_nth_unstable(idx);
        Some(*kth)
    }

    /// O(m) scan.
    fn count_at_least(&self, threshold: i64) -> u32 {
        self.freq.iter().filter(|&&f| f >= threshold).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_and_frequency() {
        let mut b = BucketProfiler::new(4);
        b.add(1);
        b.add(1);
        b.remove(3);
        assert_eq!(b.frequency(1), 2);
        assert_eq!(b.frequency(3), -1);
        assert_eq!(b.frequency(0), 0);
        assert_eq!(b.num_objects(), 4);
        assert_eq!(b.name(), "bucket-scan");
    }

    #[test]
    fn extremes() {
        let b = BucketProfiler::from_frequencies(&[3, -1, 3, 0]);
        let (x, f) = b.mode().unwrap();
        assert_eq!(f, 3);
        assert!(x == 0 || x == 2);
        assert_eq!(b.least(), Some((1, -1)));
        assert_eq!(BucketProfiler::new(0).mode(), None);
        assert_eq!(BucketProfiler::new(0).least(), None);
    }

    #[test]
    fn rank_queries_match_sorting() {
        let freqs = [5i64, -2, 0, 7, 5, 1];
        let b = BucketProfiler::from_frequencies(&freqs);
        let mut sorted = freqs.to_vec();
        sorted.sort_unstable();
        for k in 1..=6u32 {
            assert_eq!(
                b.kth_largest_frequency(k),
                Some(sorted[(6 - k) as usize]),
                "k={k}"
            );
        }
        assert_eq!(b.kth_largest_frequency(0), None);
        assert_eq!(b.kth_largest_frequency(7), None);
        assert_eq!(b.median_frequency(), Some(sorted[2]));
        for t in -3..=8 {
            let want = freqs.iter().filter(|&&f| f >= t).count() as u32;
            assert_eq!(b.count_at_least(t), want);
        }
    }
}
