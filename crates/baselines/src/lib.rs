//! # sprofile-baselines — the structures the S-Profile paper compares against
//!
//! Every baseline implements the [`sprofile::FrequencyProfiler`] trait (and
//! where the structure supports it, [`sprofile::RankQueries`]) so that
//! tests, integration suites, and the benchmark harness can swap
//! structures generically.
//!
//! | structure | update | mode | k-th / median | paper role |
//! |-----------|--------|------|---------------|------------|
//! | [`MaxHeapProfiler`] / [`MinHeapProfiler`] | O(log m) | O(1) (own extreme) | — | §3.1 comparator |
//! | [`TreapProfiler`] | O(log m) | O(log m) | O(log m) | §3.2 comparator (PBDS substitute #1) |
//! | [`AvlProfiler`] | O(log m) | O(log m) | O(log m) | §3.2 comparator (PBDS substitute #2) |
//! | [`BTreeProfiler`] | O(log D) | O(log D) | O(D) | idiomatic-std comparator |
//! | [`SortedVecProfiler`] | O(log m) | O(1) | O(1) | ablation: blocks vs binary search |
//! | [`HashRunProfiler`] | O(1) | O(1) | O(1) | ablation: blocks vs hash-indexed runs |
//! | [`BucketProfiler`] | O(1) | O(m) | O(m) | §1 strawman |
//! | [`Oracle`] | O(1) | O(m) | O(m log m) | test ground truth |
//!
//! (`D` = number of distinct frequency values.)
//!
//! Additionally, [`ExpHistogram`] implements the §1-cited sliding-window
//! sketching line of work (Datar et al. [5]): approximate window counts in
//! O((1/ε)·log²W) space, the space/exactness trade-off the paper's exact
//! window adapter sidesteps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod avl;
mod btree;
mod bucket;
mod eh;
mod hashrun;
mod heap;
mod oracle;
mod ostree;
mod sorted_vec;
mod treap;

pub use avl::AvlTree;
pub use btree::BTreeProfiler;
pub use bucket::BucketProfiler;
pub use eh::ExpHistogram;
pub use hashrun::HashRunProfiler;
pub use heap::{Direction, IndexedHeap, Max, MaxHeapProfiler, Min, MinHeapProfiler};
pub use oracle::Oracle;
pub use ostree::{Key, OrderStatTree, TreeProfiler};
pub use sorted_vec::SortedVecProfiler;
pub use treap::Treap;

/// The paper's §3.2 balanced-tree baseline, treap-flavoured.
pub type TreapProfiler = TreeProfiler<Treap>;

/// The paper's §3.2 balanced-tree baseline, AVL-flavoured.
pub type AvlProfiler = TreeProfiler<AvlTree>;

#[cfg(test)]
mod cross_structure_tests {
    use super::*;
    use sprofile::{FrequencyProfiler, RankQueries, SProfile};

    /// Replays one deterministic mixed stream into every structure and
    /// checks they agree with the oracle on every query after every batch.
    #[test]
    fn all_structures_agree_with_oracle() {
        let m = 18u32;
        let mut oracle = Oracle::new(m);
        let mut sp = SProfile::new(m);
        let mut heap = MaxHeapProfiler::new(m);
        let mut treap = TreapProfiler::new(m);
        let mut avl = AvlProfiler::new(m);
        let mut btree = BTreeProfiler::new(m);
        let mut sv = SortedVecProfiler::new(m);
        let mut bucket = BucketProfiler::new(m);
        let mut hashrun = HashRunProfiler::new(m);

        let mut state = 0xfeedu64;
        for step in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 33) % m as u64) as u32;
            let is_add = (state >> 11) % 10 < 7;
            for p in [
                &mut oracle as &mut dyn RankQueries,
                &mut sp,
                &mut treap,
                &mut avl,
                &mut btree,
                &mut sv,
                &mut bucket,
                &mut hashrun,
            ] {
                if is_add {
                    p.add(x);
                } else {
                    p.remove(x);
                }
            }
            if is_add {
                heap.add(x);
            } else {
                heap.remove(x);
            }

            if step % 200 != 0 {
                continue;
            }
            let want_mode = oracle.mode().unwrap().1;
            let want_least = oracle.least().unwrap().1;
            for p in [
                &sp as &dyn RankQueries,
                &treap,
                &avl,
                &btree,
                &sv,
                &bucket,
                &hashrun,
            ] {
                assert_eq!(
                    p.mode().unwrap().1,
                    want_mode,
                    "{} mode step {step}",
                    p.name()
                );
                assert_eq!(
                    p.least().unwrap().1,
                    want_least,
                    "{} least step {step}",
                    p.name()
                );
                for k in [1u32, 2, m / 2, m - 1, m] {
                    assert_eq!(
                        p.kth_largest_frequency(k),
                        oracle.kth_largest_frequency(k),
                        "{} k={k} step {step}",
                        p.name()
                    );
                }
                assert_eq!(
                    p.median_frequency(),
                    oracle.median_frequency(),
                    "{} median step {step}",
                    p.name()
                );
                for t in [-2i64, 0, 1, 3] {
                    assert_eq!(
                        p.count_at_least(t),
                        oracle.count_at_least(t),
                        "{} count_at_least({t}) step {step}",
                        p.name()
                    );
                }
                for y in 0..m {
                    assert_eq!(p.frequency(y), oracle.frequency(y), "{}", p.name());
                }
            }
            assert_eq!(heap.mode().unwrap().1, want_mode, "heap mode step {step}");
        }
    }
}
