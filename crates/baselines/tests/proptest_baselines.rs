//! Property-based tests: every baseline structure agrees with the oracle
//! on arbitrary operation sequences, and the tree implementations keep
//! their structural invariants.

use proptest::prelude::*;

use sprofile::{FrequencyProfiler, RankQueries};
use sprofile_baselines::{
    AvlProfiler, AvlTree, BTreeProfiler, BucketProfiler, MaxHeapProfiler, MinHeapProfiler, Oracle,
    OrderStatTree, SortedVecProfiler, Treap, TreapProfiler,
};

fn ops_strategy(m: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0..m, any::<bool>()), 0..max_len)
}

fn drive<P: FrequencyProfiler>(p: &mut P, ops: &[(u32, bool)]) {
    for &(x, add) in ops {
        if add {
            p.add(x);
        } else {
            p.remove(x);
        }
    }
}

fn assert_rank_parity<P: RankQueries>(p: &P, oracle: &Oracle, m: u32) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        p.mode().unwrap().1,
        oracle.mode().unwrap().1,
        "{} mode",
        p.name()
    );
    prop_assert_eq!(
        p.least().unwrap().1,
        oracle.least().unwrap().1,
        "{} least",
        p.name()
    );
    for k in 1..=m {
        prop_assert_eq!(
            p.kth_largest_frequency(k),
            oracle.kth_largest_frequency(k),
            "{} k={}",
            p.name(),
            k
        );
    }
    prop_assert_eq!(p.median_frequency(), oracle.median_frequency());
    for t in -5..=5i64 {
        prop_assert_eq!(
            p.count_at_least(t),
            oracle.count_at_least(t),
            "{} t={}",
            p.name(),
            t
        );
    }
    for x in 0..m {
        prop_assert_eq!(p.frequency(x), oracle.frequency(x));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rank_structures_agree_with_oracle(
        m in 1u32..16,
        ops in ops_strategy(16, 200),
    ) {
        let ops: Vec<(u32, bool)> = ops.into_iter().map(|(x, a)| (x % m, a)).collect();
        let mut oracle = Oracle::new(m);
        drive(&mut oracle, &ops);

        let mut treap = TreapProfiler::new(m);
        drive(&mut treap, &ops);
        assert_rank_parity(&treap, &oracle, m)?;

        let mut avl = AvlProfiler::new(m);
        drive(&mut avl, &ops);
        assert_rank_parity(&avl, &oracle, m)?;

        let mut btree = BTreeProfiler::new(m);
        drive(&mut btree, &ops);
        assert_rank_parity(&btree, &oracle, m)?;

        let mut sv = SortedVecProfiler::new(m);
        drive(&mut sv, &ops);
        sv.check_sorted().unwrap();
        assert_rank_parity(&sv, &oracle, m)?;

        let mut bucket = BucketProfiler::new(m);
        drive(&mut bucket, &ops);
        assert_rank_parity(&bucket, &oracle, m)?;
    }

    #[test]
    fn heaps_agree_with_oracle_on_their_extreme(
        m in 1u32..16,
        ops in ops_strategy(16, 200),
    ) {
        let ops: Vec<(u32, bool)> = ops.into_iter().map(|(x, a)| (x % m, a)).collect();
        let mut oracle = Oracle::new(m);
        drive(&mut oracle, &ops);

        let mut max_heap = MaxHeapProfiler::new(m);
        drive(&mut max_heap, &ops);
        max_heap.check_heap_property().unwrap();
        prop_assert_eq!(max_heap.mode().unwrap().1, oracle.mode().unwrap().1);
        prop_assert_eq!(max_heap.least().unwrap().1, oracle.least().unwrap().1);

        let mut min_heap = MinHeapProfiler::new(m);
        drive(&mut min_heap, &ops);
        min_heap.check_heap_property().unwrap();
        prop_assert_eq!(min_heap.least().unwrap().1, oracle.least().unwrap().1);
        prop_assert_eq!(min_heap.mode().unwrap().1, oracle.mode().unwrap().1);
    }

    #[test]
    fn trees_maintain_structure_under_churn(
        keys in prop::collection::vec((-30i64..30, 0u32..8), 1..120),
    ) {
        let mut treap = Treap::new();
        let mut avl = AvlTree::new();
        let mut reference: Vec<(i64, u32)> = Vec::new();
        for &key in &keys {
            match reference.binary_search(&key) {
                Ok(idx) => {
                    prop_assert!(treap.erase(key));
                    prop_assert!(avl.erase(key));
                    reference.remove(idx);
                }
                Err(idx) => {
                    treap.insert(key);
                    avl.insert(key);
                    reference.insert(idx, key);
                }
            }
        }
        treap.check_structure().unwrap();
        avl.check_structure().unwrap();
        prop_assert_eq!(treap.len() as usize, reference.len());
        prop_assert_eq!(avl.len() as usize, reference.len());
        for (i, &key) in reference.iter().enumerate() {
            prop_assert_eq!(treap.select(i as u32), Some(key));
            prop_assert_eq!(avl.select(i as u32), Some(key));
            prop_assert_eq!(treap.rank(key), i as u32);
            prop_assert_eq!(avl.rank(key), i as u32);
        }
    }

    #[test]
    fn from_frequencies_constructors_agree(
        freqs in prop::collection::vec(-10i64..10, 1..30),
    ) {
        let oracle = Oracle::from_frequencies(&freqs);
        let heap = MaxHeapProfiler::from_frequencies(&freqs);
        heap.check_heap_property().unwrap();
        prop_assert_eq!(heap.mode().unwrap().1, oracle.mode().unwrap().1);
        let treap = TreapProfiler::from_frequencies(&freqs);
        prop_assert_eq!(treap.mode().unwrap().1, oracle.mode().unwrap().1);
        let sv = SortedVecProfiler::from_frequencies(&freqs);
        sv.check_sorted().unwrap();
        prop_assert_eq!(sv.median_frequency(), oracle.median_frequency());
        let btree = BTreeProfiler::from_frequencies(&freqs);
        prop_assert_eq!(btree.least().unwrap().1, oracle.least().unwrap().1);
    }
}
