//! Property tests: the three range-mode structures are observationally
//! identical on arbitrary arrays, universes, and block widths.

use proptest::prelude::*;
use sprofile_rangequery::{
    MedianScan, NaiveScan, PrecomputedTable, PrefixCounts, RangeMedianQuery, RangeModeQuery,
    SqrtDecomposition, WaveletTree,
};

/// Arrays up to length 64 over small universes keep the O(n²) exhaustive
/// range sweep fast while exercising every block-boundary case.
fn small_array() -> impl Strategy<Value = (Vec<u32>, u32)> {
    (1u32..12).prop_flat_map(|m| (prop::collection::vec(0..m, 0..64), Just(m)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structures_agree_on_all_ranges((array, m) in small_array(), s in 1usize..12) {
        let naive = NaiveScan::new(&array, m);
        let table = PrecomputedTable::new(&array, m);
        let sqrt = SqrtDecomposition::with_block_size(&array, m, s);
        for l in 0..=array.len() {
            for r in 0..=array.len() {
                let a = naive.range_mode(l, r);
                prop_assert_eq!(a, table.range_mode(l, r), "table [{}, {})", l, r);
                prop_assert_eq!(a, sqrt.range_mode(l, r), "sqrt s={} [{}, {})", s, l, r);
            }
        }
    }

    #[test]
    fn mode_witness_is_truthful((array, m) in small_array()) {
        // The reported count must be the value's true count in the range,
        // and no value may occur more often.
        let naive = NaiveScan::new(&array, m);
        for l in 0..array.len() {
            for r in l + 1..=array.len() {
                let mode = naive.range_mode(l, r).unwrap();
                let count = |v: u32| {
                    array[l..r].iter().filter(|&&x| x == v).count() as u32
                };
                prop_assert_eq!(mode.count, count(mode.value));
                for v in 0..m {
                    prop_assert!(count(v) <= mode.count, "value {} beats the mode", v);
                }
            }
        }
    }

    #[test]
    fn range_kth_matches_sorting((array, m) in small_array()) {
        let scan = MedianScan::new(&array, m);
        let pref = PrefixCounts::new(&array, m);
        let wt = WaveletTree::new(&array, m);
        for l in 0..array.len() {
            for r in l + 1..=array.len() {
                let mut sorted: Vec<u32> = array[l..r].to_vec();
                sorted.sort_unstable();
                for (k, &expect) in sorted.iter().enumerate() {
                    prop_assert_eq!(scan.range_kth(l, r, k).unwrap().value, expect);
                    prop_assert_eq!(pref.range_kth(l, r, k).unwrap().value, expect);
                    prop_assert_eq!(wt.range_kth(l, r, k).unwrap().value, expect);
                }
                prop_assert_eq!(scan.range_kth(l, r, r - l), None);
                prop_assert_eq!(wt.range_kth(l, r, r - l), None);
                let med = scan.range_median(l, r).unwrap();
                prop_assert_eq!(med.value, sorted[(sorted.len() - 1) / 2]);
                prop_assert_eq!(med, pref.range_median(l, r).unwrap());
                prop_assert_eq!(med, wt.range_median(l, r).unwrap());
            }
        }
    }

    #[test]
    fn wavelet_access_and_rank_match_brute_force((array, m) in small_array()) {
        let wt = WaveletTree::new(&array, m);
        for (i, &x) in array.iter().enumerate() {
            prop_assert_eq!(wt.access(i), x, "access({})", i);
        }
        for v in 0..m {
            for i in 0..=array.len() {
                let expect = array[..i].iter().filter(|&&x| x == v).count();
                prop_assert_eq!(wt.rank(v, i), expect, "rank({}, {})", v, i);
            }
        }
        for l in 0..array.len() {
            for r in l + 1..=array.len() {
                for v in 0..=m {
                    let expect = array[l..r].iter().filter(|&&x| x < v).count();
                    prop_assert_eq!(wt.range_count_below(l, r, v), expect);
                }
            }
        }
    }

    #[test]
    fn prefix_modes_agree_with_static_queries((array, m) in small_array()) {
        prop_assume!(!array.is_empty());
        let naive = NaiveScan::new(&array, m);
        let prefixes = sprofile_rangequery::prefix_modes(&array, m);
        prop_assert_eq!(prefixes.len(), array.len());
        for (i, pm) in prefixes.iter().enumerate() {
            prop_assert_eq!(Some(*pm), naive.range_mode(0, i + 1), "prefix {}", i);
        }
    }
}
