//! √-decomposition range mode (the linear-space point of Chan et al. [4]).
//!
//! The array is cut into blocks of width `s` (default ⌈√n⌉). A t×t table
//! stores the mode of every *full-block span*; per-value occurrence lists
//! plus a position→rank index let the query extend that candidate with
//! the ≤ 2s boundary elements in amortised O(1) probes each. Query cost
//! is O(s) — O(√n) at the default width — with O(n + t²) space.

use std::cell::RefCell;

use crate::{check_universe, RangeMode, RangeModeQuery};

/// √-decomposition range-mode structure.
#[derive(Debug)]
pub struct SqrtDecomposition {
    array: Vec<u32>,
    /// Block width `s`.
    s: usize,
    /// Number of blocks `t = ⌈n/s⌉`.
    t: usize,
    /// `span_mode[bi * t + bj]` = mode of blocks `bi..=bj` (bi ≤ bj),
    /// smallest value on ties.
    span_mode: Vec<RangeMode>,
    /// Positions of each value, ascending: `occ[v]` lists where `v` occurs.
    occ: Vec<Vec<u32>>,
    /// `rank[i]` = index of position `i` inside `occ[array[i]]`.
    rank: Vec<u32>,
    /// Scratch counts for short (non-spanning) queries.
    counts: RefCell<Vec<u32>>,
}

impl SqrtDecomposition {
    /// Build with the default block width ⌈√n⌉.
    ///
    /// # Panics
    /// If any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        let s = (array.len() as f64).sqrt().ceil() as usize;
        Self::with_block_size(array, m, s.max(1))
    }

    /// Build with an explicit block width (exposed for the space/time
    /// sweep in the benches).
    ///
    /// # Panics
    /// If `block_size == 0` or any value is `>= m`.
    pub fn with_block_size(array: &[u32], m: u32, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        check_universe(array, m);
        let n = array.len();
        let s = block_size;
        let t = n.div_ceil(s);

        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); m as usize];
        let mut rank = Vec::with_capacity(n);
        for (i, &x) in array.iter().enumerate() {
            rank.push(occ[x as usize].len() as u32);
            occ[x as usize].push(i as u32);
        }

        // Fill the span table: one incremental counting sweep per start
        // block, O(t · n) total.
        let mut span_mode = vec![RangeMode { value: 0, count: 0 }; t * t];
        let mut counts = vec![0u32; m as usize];
        for bi in 0..t {
            let start = bi * s;
            let mut best = RangeMode {
                value: array[start],
                count: 0,
            };
            for (j, &x) in array.iter().enumerate().skip(start) {
                let c = &mut counts[x as usize];
                *c += 1;
                if *c > best.count || (*c == best.count && x < best.value) {
                    best = RangeMode {
                        value: x,
                        count: *c,
                    };
                }
                // j closes block bj when it is the last index of that block.
                if (j + 1) % s == 0 || j + 1 == n {
                    let bj = j / s;
                    span_mode[bi * t + bj] = best;
                }
            }
            for &x in &array[start..] {
                counts[x as usize] = 0;
            }
        }

        Self {
            array: array.to_vec(),
            s,
            t,
            span_mode,
            occ,
            rank,
            counts: RefCell::new(counts),
        }
    }

    /// Block width in elements.
    pub fn block_size(&self) -> usize {
        self.s
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.t
    }

    /// Short-range fallback: scratch-array scan, O(r − l).
    fn scan(&self, l: usize, r: usize) -> RangeMode {
        let mut counts = self.counts.borrow_mut();
        let mut best = RangeMode {
            value: self.array[l],
            count: 0,
        };
        for &x in &self.array[l..r] {
            let c = &mut counts[x as usize];
            *c += 1;
            if *c > best.count || (*c == best.count && x < best.value) {
                best = RangeMode {
                    value: x,
                    count: *c,
                };
            }
        }
        for &x in &self.array[l..r] {
            counts[x as usize] = 0;
        }
        best
    }

    /// Fold prefix element at position `p` into `best` (forward count).
    fn extend_prefix(&self, p: usize, l: usize, r: usize, best: &mut RangeMode) {
        let x = self.array[p];
        let occ = &self.occ[x as usize];
        let idx = self.rank[p] as usize;
        // Only the first in-range occurrence of x does the counting.
        if idx > 0 && occ[idx - 1] as usize >= l {
            return;
        }
        // Can x reach the current best count at all? One probe decides.
        if best.count > 1 {
            let probe = idx + best.count as usize - 1;
            if probe >= occ.len() || occ[probe] as usize >= r {
                return;
            }
        }
        let mut c = best.count.max(1) as usize;
        while idx + c < occ.len() && (occ[idx + c] as usize) < r {
            c += 1;
        }
        let c = c as u32;
        if c > best.count || (c == best.count && x < best.value) {
            *best = RangeMode { value: x, count: c };
        }
    }

    /// Fold suffix element at position `p` into `best` (backward count).
    fn extend_suffix(&self, p: usize, l: usize, r: usize, best: &mut RangeMode) {
        let x = self.array[p];
        let occ = &self.occ[x as usize];
        let idx = self.rank[p] as usize;
        // Only the last in-range occurrence of x does the counting.
        if idx + 1 < occ.len() && (occ[idx + 1] as usize) < r {
            return;
        }
        if best.count > 1 {
            let back = best.count as usize - 1;
            if idx < back || (occ[idx - back] as usize) < l {
                return;
            }
        }
        let mut c = best.count.max(1) as usize;
        while idx >= c && occ[idx - c] as usize >= l {
            c += 1;
        }
        let c = c as u32;
        if c > best.count || (c == best.count && x < best.value) {
            *best = RangeMode { value: x, count: c };
        }
    }
}

impl RangeModeQuery for SqrtDecomposition {
    fn len(&self) -> usize {
        self.array.len()
    }

    fn range_mode(&self, l: usize, r: usize) -> Option<RangeMode> {
        if l >= r || r > self.array.len() {
            return None;
        }
        // First block fully inside the range, and one past the last.
        let bi = l.div_ceil(self.s);
        let bj = r / self.s; // blocks bi..bj are fully contained
        if bi >= bj {
            return Some(self.scan(l, r));
        }
        let mut best = self.span_mode[bi * self.t + (bj - 1)];
        for p in l..bi * self.s {
            self.extend_prefix(p, l, r, &mut best);
        }
        for p in bj * self.s..r {
            self.extend_suffix(p, l, r, &mut best);
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveScan;

    fn assert_matches_naive(a: &[u32], m: u32, s: usize) {
        let naive = NaiveScan::new(a, m);
        let sqrt = SqrtDecomposition::with_block_size(a, m, s);
        for l in 0..a.len() {
            for r in l + 1..=a.len() {
                assert_eq!(
                    sqrt.range_mode(l, r),
                    naive.range_mode(l, r),
                    "range [{l}, {r}) with s = {s}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_across_block_sizes() {
        let a: Vec<u32> = (0..60).map(|i| (i * 7 + i * i / 3) as u32 % 8).collect();
        for s in [1, 2, 3, 5, 8, 60, 100] {
            assert_matches_naive(&a, 8, s);
        }
    }

    #[test]
    fn suffix_extension_sees_span_occurrences() {
        // Value 1 occurs in the span AND the suffix: the backward count
        // from the suffix must capture the span occurrences too.
        //        block0   block1   block2
        let a = [0, 1, 9, 1, 1, 9, 1, 2, 2];
        assert_matches_naive(&a, 10, 3);
    }

    #[test]
    fn prefix_extension_sees_span_occurrences() {
        let a = [1, 2, 9, 1, 1, 9, 0, 0, 1];
        assert_matches_naive(&a, 10, 3);
    }

    #[test]
    fn whole_range_equals_span_table() {
        let a = [5u32, 5, 3, 3, 3, 5, 5, 5, 1];
        let sq = SqrtDecomposition::with_block_size(&a, 6, 3);
        assert_eq!(sq.range_mode(0, 9), Some(RangeMode { value: 5, count: 5 }));
    }

    #[test]
    fn short_ranges_use_the_scan_path() {
        let a = [4u32, 4, 2, 2, 4, 1, 1, 1];
        let sq = SqrtDecomposition::with_block_size(&a, 5, 4);
        // Entirely inside one block.
        assert_eq!(sq.range_mode(0, 3), Some(RangeMode { value: 4, count: 2 }));
        // Straddles two blocks but contains no full one.
        assert_eq!(sq.range_mode(2, 6), Some(RangeMode { value: 2, count: 2 }));
    }

    #[test]
    fn constant_array_any_range() {
        let a = [7u32; 30];
        let sq = SqrtDecomposition::new(&a, 8);
        for (l, r) in [(0, 30), (3, 17), (29, 30), (10, 11)] {
            assert_eq!(
                sq.range_mode(l, r),
                Some(RangeMode {
                    value: 7,
                    count: (r - l) as u32
                })
            );
        }
    }

    #[test]
    fn default_block_size_is_about_sqrt_n() {
        let a: Vec<u32> = vec![0; 100];
        let sq = SqrtDecomposition::new(&a, 1);
        assert_eq!(sq.block_size(), 10);
        assert_eq!(sq.num_blocks(), 10);
    }

    #[test]
    fn invalid_ranges_are_none() {
        let sq = SqrtDecomposition::new(&[1, 2, 3], 4);
        assert_eq!(sq.range_mode(3, 3), None);
        assert_eq!(sq.range_mode(0, 4), None);
        assert_eq!(sq.range_mode(2, 1), None);
    }
}
