//! Range median (the companion query of refs [10, 13]): the median of
//! the multiset `A[l..r)` for a static array over a finite universe.
//!
//! Two points on the trade-off curve, both exploiting the finite
//! universe `m` exactly as the paper's bucket argument does:
//!
//! | structure | space | query |
//! |-----------|-------|-------|
//! | [`MedianScan`] | O(m) | O(r−l+m) |
//! | [`PrefixCounts`] | O(n·m/64 + n) words | O(log n · ⌈m/64⌉ + m) bits walked, practically O(m) via prefix table |
//!
//! [`PrefixCounts`] stores, for every value `v`, the prefix occurrence
//! counts `#\{i < j : A[i] = v\}` — an (m+1)·(n+1) table laid out
//! value-major so a query walks one cache-friendly column pair and finds
//! the k-th smallest in O(m). For the small-m regimes the paper's finite
//! -value setting targets (user actions over bounded catalogues), this
//! is the simple, fast answer; the sub-O(m) point of the curve is the
//! [`crate::WaveletTree`] (O(log m) quantile in n·log m bits).

use std::cell::RefCell;

use crate::check_universe;

/// Median answer over a range: the value at the lower-median position
/// of the sorted multiset `A[l..r)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeMedian {
    /// The lower-median value.
    pub value: u32,
    /// Its rank among `r − l` elements (0-based position ⌊(len−1)/2⌋).
    pub rank: usize,
}

/// Common interface for the range-median structures.
pub trait RangeMedianQuery {
    /// Number of array elements.
    fn len(&self) -> usize;

    /// True iff the underlying array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lower median of `A[l..r)`; `None` iff the range is empty/invalid.
    fn range_median(&self, l: usize, r: usize) -> Option<RangeMedian> {
        let len = self.range_len(l, r)?;
        self.range_kth(l, r, (len - 1) / 2)
    }

    /// k-th smallest (0-based) of `A[l..r)`; `None` if out of range.
    fn range_kth(&self, l: usize, r: usize, k: usize) -> Option<RangeMedian>;

    /// Validated range length helper.
    fn range_len(&self, l: usize, r: usize) -> Option<usize> {
        (l < r && r <= self.len()).then(|| r - l)
    }
}

/// Scan-per-query range median: count the range into an O(m) histogram,
/// then walk it to the k-th position.
#[derive(Debug)]
pub struct MedianScan {
    array: Vec<u32>,
    counts: RefCell<Vec<u32>>,
}

impl MedianScan {
    /// Build over `array` with values in `[0, m)`.
    ///
    /// # Panics
    /// If any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        check_universe(array, m);
        Self {
            array: array.to_vec(),
            counts: RefCell::new(vec![0; m as usize]),
        }
    }
}

impl RangeMedianQuery for MedianScan {
    fn len(&self) -> usize {
        self.array.len()
    }

    fn range_kth(&self, l: usize, r: usize, k: usize) -> Option<RangeMedian> {
        let len = self.range_len(l, r)?;
        if k >= len {
            return None;
        }
        let mut counts = self.counts.borrow_mut();
        for &x in &self.array[l..r] {
            counts[x as usize] += 1;
        }
        let mut remaining = k;
        let mut answer = None;
        for (v, &c) in counts.iter().enumerate() {
            let c = c as usize;
            if answer.is_none() {
                if remaining < c {
                    answer = Some(RangeMedian {
                        value: v as u32,
                        rank: k,
                    });
                } else {
                    remaining -= c;
                }
            }
        }
        for &x in &self.array[l..r] {
            counts[x as usize] = 0;
        }
        answer
    }
}

/// Prefix-count table: `pref[v][j]` = occurrences of `v` in `A[0..j)`.
/// Queries subtract two columns and walk values — O(m) per query with
/// sequential access, independent of the range length.
#[derive(Debug)]
pub struct PrefixCounts {
    n: usize,
    m: u32,
    /// Value-major (m rows of n+1 prefix sums) so one query's walk is a
    /// strided but predictable scan.
    pref: Vec<u32>,
}

impl PrefixCounts {
    /// Build over `array` with values in `[0, m)`. O(n·m) time/space.
    ///
    /// # Panics
    /// If any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        check_universe(array, m);
        let n = array.len();
        let stride = n + 1;
        let mut pref = vec![0u32; m as usize * stride];
        for v in 0..m as usize {
            let row = &mut pref[v * stride..(v + 1) * stride];
            for (j, &x) in array.iter().enumerate() {
                row[j + 1] = row[j] + u32::from(x as usize == v);
            }
        }
        Self { n, m, pref }
    }

    #[inline]
    fn count_in(&self, v: u32, l: usize, r: usize) -> usize {
        let stride = self.n + 1;
        let row = v as usize * stride;
        (self.pref[row + r] - self.pref[row + l]) as usize
    }

    /// Number of occurrences of `v` in `A[l..r)` — O(1), the same query
    /// the paper's bucket array `F` answers for the full array.
    pub fn value_count(&self, v: u32, l: usize, r: usize) -> Option<usize> {
        (v < self.m && l <= r && r <= self.n).then(|| self.count_in(v, l, r))
    }
}

impl RangeMedianQuery for PrefixCounts {
    fn len(&self) -> usize {
        self.n
    }

    fn range_kth(&self, l: usize, r: usize, k: usize) -> Option<RangeMedian> {
        let len = self.range_len(l, r)?;
        if k >= len {
            return None;
        }
        let mut remaining = k;
        for v in 0..self.m {
            let c = self.count_in(v, l, r);
            if remaining < c {
                return Some(RangeMedian { value: v, rank: k });
            }
            remaining -= c;
        }
        unreachable!("k < range length implies a value is found");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_kth(a: &[u32], l: usize, r: usize, k: usize) -> u32 {
        let mut v: Vec<u32> = a[l..r].to_vec();
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn both_structures_match_sorting_on_all_ranges() {
        let a = [4u32, 1, 3, 3, 0, 2, 4, 4, 1, 0, 2, 3];
        let m = 5;
        let scan = MedianScan::new(&a, m);
        let pref = PrefixCounts::new(&a, m);
        for l in 0..a.len() {
            for r in l + 1..=a.len() {
                for k in 0..r - l {
                    let expect = sorted_kth(&a, l, r, k);
                    let s = scan.range_kth(l, r, k).unwrap();
                    let p = pref.range_kth(l, r, k).unwrap();
                    assert_eq!(s.value, expect, "scan [{l},{r}) k={k}");
                    assert_eq!(p.value, expect, "pref [{l},{r}) k={k}");
                    assert_eq!(s.rank, k);
                }
                let med = scan.range_median(l, r).unwrap();
                assert_eq!(med.value, sorted_kth(&a, l, r, (r - l - 1) / 2));
                assert_eq!(med, pref.range_median(l, r).unwrap());
            }
        }
    }

    #[test]
    fn invalid_queries_are_none() {
        let scan = MedianScan::new(&[1, 2, 3], 4);
        let pref = PrefixCounts::new(&[1, 2, 3], 4);
        for s in [&scan as &dyn RangeMedianQuery, &pref] {
            assert_eq!(s.range_median(1, 1), None);
            assert_eq!(s.range_median(0, 4), None);
            assert_eq!(s.range_kth(0, 3, 3), None, "k == range length");
        }
    }

    #[test]
    fn value_count_is_exact() {
        let a = [0u32, 1, 0, 1, 0];
        let pref = PrefixCounts::new(&a, 2);
        assert_eq!(pref.value_count(0, 0, 5), Some(3));
        assert_eq!(pref.value_count(1, 0, 5), Some(2));
        assert_eq!(pref.value_count(0, 1, 3), Some(1));
        assert_eq!(pref.value_count(0, 2, 2), Some(0));
        assert_eq!(pref.value_count(5, 0, 5), None, "value outside universe");
        assert_eq!(pref.value_count(0, 3, 2), None, "inverted range");
    }

    #[test]
    fn scan_scratch_resets_between_queries() {
        let a = [2u32, 2, 2, 0, 0];
        let scan = MedianScan::new(&a, 3);
        assert_eq!(scan.range_median(0, 3).unwrap().value, 2);
        assert_eq!(scan.range_median(3, 5).unwrap().value, 0);
        assert_eq!(scan.range_median(0, 5).unwrap().value, 2);
    }

    #[test]
    fn single_element_median_is_the_element() {
        let a = [9u32, 4, 7];
        let pref = PrefixCounts::new(&a, 10);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(
                pref.range_median(i, i + 1),
                Some(RangeMedian { value: x, rank: 0 })
            );
        }
    }

    #[test]
    fn even_length_uses_lower_median() {
        let a = [1u32, 2, 3, 4];
        let scan = MedianScan::new(&a, 5);
        // sorted [1,2,3,4]: lower median at index (4-1)/2 = 1 → value 2.
        assert_eq!(scan.range_median(0, 4).unwrap().value, 2);
    }
}
