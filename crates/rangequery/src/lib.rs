//! # sprofile-rangequery — range mode query over a *static* array
//!
//! The S-Profile paper's §1 contrasts its dynamic problem with the *range
//! mode query* line of work (Chan et al. [4], Krizanc et al. [10],
//! Petersen & Grabowski [13]): given a **fixed** array `A` of values in
//! `[0, m)`, preprocess it so that the mode of any sub-array `A[l..r]`
//! can be answered quickly. This crate implements the three classic
//! points on that trade-off curve so the contrast is runnable:
//!
//! | structure | space | query | preprocessing |
//! |-----------|-------|-------|---------------|
//! | [`NaiveScan`] | O(m) | O(r−l+m) | O(1) |
//! | [`PrecomputedTable`] | O(n²) | O(1) | O(n²) |
//! | [`SqrtDecomposition`] | O(n + (n/s)²) | O(s + log n) | O(n·(n/s)) |
//!
//! (`s` = block width, default ⌈√n⌉, giving the familiar O(√n)-query,
//! linear-space point of Chan et al.)
//!
//! Refs [10, 13] treat range *median* alongside range mode; the
//! [`MedianScan`] / [`PrefixCounts`] pair covers that query for the
//! finite-universe setting (see `median.rs` for the trade-off table),
//! and [`WaveletTree`] adds the succinct O(log m)-query point
//! (access / rank / quantile / range-count-below in n·log m bits).
//!
//! The relationship to S-Profile: range mode treats the *array* as static
//! and the *query range* as the variable; S-Profile treats the query as
//! fixed (the whole array) and the array as dynamic under ±1 updates.
//! Neither subsumes the other — and the [`prefix_modes`] helper shows the
//! one overlap, using an [`sprofile::SProfile`] to stream out the mode of
//! every prefix `A[0..i]` in O(n) total, which the static structures need
//! O(n√n) to match.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod median;
mod naive;
mod precomputed;
mod sqrt;
mod wavelet;

pub use median::{MedianScan, PrefixCounts, RangeMedian, RangeMedianQuery};
pub use naive::NaiveScan;
pub use precomputed::PrecomputedTable;
pub use sqrt::SqrtDecomposition;
pub use wavelet::WaveletTree;

/// A mode answer: the value and its number of occurrences in the range.
/// Ties are broken towards the smallest value so that all implementations
/// return identical answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeMode {
    /// The most frequent value in the queried range (smallest such value
    /// on ties).
    pub value: u32,
    /// Its occurrence count within the range (≥ 1 for non-empty ranges).
    pub count: u32,
}

/// Common interface over the three structures.
pub trait RangeModeQuery {
    /// Number of array elements `n`.
    fn len(&self) -> usize;

    /// True iff the underlying array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mode of the half-open range `A[l..r)`. `None` iff `l >= r` or the
    /// range exceeds the array.
    fn range_mode(&self, l: usize, r: usize) -> Option<RangeMode>;
}

/// Stream the mode of every prefix `A[0..=i]` using S-Profile: n dynamic
/// ±1 updates at O(1) each, versus n independent O(√n) static queries.
/// Used by the benches to make the static/dynamic contrast concrete.
pub fn prefix_modes(array: &[u32], m: u32) -> Vec<RangeMode> {
    let mut profile = sprofile::SProfile::new(m);
    let mut out = Vec::with_capacity(array.len());
    for &x in array {
        profile.add(x);
        let e = profile.mode().expect("non-empty universe");
        // SProfile::mode ties are arbitrary; canonicalise to the smallest
        // object among those sharing the top frequency.
        let value = profile
            .mode_objects()
            .iter()
            .copied()
            .min()
            .expect("non-empty universe");
        debug_assert_eq!(profile.frequency(value), e.frequency);
        out.push(RangeMode {
            value,
            count: e.frequency as u32,
        });
    }
    out
}

/// Validate constructor input: every value must lie in `[0, m)`.
pub(crate) fn check_universe(array: &[u32], m: u32) {
    if let Some(&bad) = array.iter().find(|&&x| x >= m) {
        panic!("array value {bad} outside universe [0, {m})");
    }
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn all_three_structures_agree_on_a_fixed_array() {
        let a = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let m = 10;
        let naive = NaiveScan::new(&a, m);
        let table = PrecomputedTable::new(&a, m);
        let sqrt = SqrtDecomposition::new(&a, m);
        for l in 0..=a.len() {
            for r in 0..=a.len() {
                let (x, y, z) = (
                    naive.range_mode(l, r),
                    table.range_mode(l, r),
                    sqrt.range_mode(l, r),
                );
                assert_eq!(x, y, "naive vs table at [{l}, {r})");
                assert_eq!(x, z, "naive vs sqrt at [{l}, {r})");
            }
        }
    }

    #[test]
    fn prefix_modes_matches_naive_full_prefix_queries() {
        let a = [0u32, 2, 2, 1, 1, 1, 0, 0, 0, 2];
        let naive = NaiveScan::new(&a, 3);
        let prefixes = prefix_modes(&a, 3);
        for (i, pm) in prefixes.iter().enumerate() {
            assert_eq!(Some(*pm), naive.range_mode(0, i + 1), "prefix {i}");
        }
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_values_are_rejected() {
        let _ = NaiveScan::new(&[5], 5);
    }
}
