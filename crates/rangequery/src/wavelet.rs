//! Pointerless (level-wise) wavelet tree over values in `[0, m)`.
//!
//! The succinct classic: `⌈log₂ m⌉` bit levels, each a rank-indexed
//! bitmap, where level `d+1` is level `d` *globally* stably partitioned
//! by bit `d` (MSB first) — all 0-branch elements first, then all
//! 1-branch elements, so a position maps to its child as `rank0(p)` or
//! `Z + rank1(p)` with `Z` the level's total zeros. Everything the
//! range-median problem needs falls out in O(log m) per query:
//!
//! * [`WaveletTree::access`] — `A[i]`,
//! * [`WaveletTree::rank`] — occurrences of `v` in `A[0..i)`,
//! * [`WaveletTree::quantile`] — k-th smallest of `A[l..r)`,
//! * [`WaveletTree::range_count_below`] — `#{i ∈ [l, r) : A[i] < v}`.
//!
//! This sits one rung above the `PrefixCounts` table on the refs-[10, 13]
//! curve: O(n·log m) *bits* instead of O(n·m) words, and O(log m)
//! queries instead of O(m). It also implements [`RangeMedianQuery`], so
//! the property tests drive all three structures as one family.

use crate::check_universe;
use crate::median::{RangeMedian, RangeMedianQuery};

/// Bitmap with O(1) rank via per-word cumulative counts (superblock =
/// one 64-bit word; 50% space overhead, branch-free queries — the right
/// trade for a reproduction).
#[derive(Clone, Debug)]
struct RankBits {
    words: Vec<u64>,
    /// `cum[w]` = number of 1-bits in words `0..w`.
    cum: Vec<u32>,
    len: usize,
}

impl RankBits {
    fn from_bools(bits: &[bool]) -> Self {
        let n_words = bits.len().div_ceil(64);
        let mut words = vec![0u64; n_words];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        let mut cum = Vec::with_capacity(n_words + 1);
        let mut acc = 0u32;
        cum.push(0);
        for &w in &words {
            acc += w.count_ones();
            cum.push(acc);
        }
        Self {
            words,
            cum,
            len: bits.len(),
        }
    }

    /// Number of 1-bits in positions `[0, i)`.
    #[inline]
    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let w = i / 64;
        let within = if i.is_multiple_of(64) {
            0
        } else {
            (self.words[w] & ((1u64 << (i % 64)) - 1)).count_ones()
        };
        self.cum[w] as usize + within as usize
    }

    /// Number of 0-bits in positions `[0, i)`.
    #[inline]
    fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

/// Level-wise wavelet tree; see the module docs for the query surface.
#[derive(Clone, Debug)]
pub struct WaveletTree {
    levels: Vec<RankBits>,
    n: usize,
    m: u32,
    /// Bits per value: `max(1, ⌈log₂ m⌉)`.
    bits: u32,
}

impl WaveletTree {
    /// Build over `array` with values in `[0, m)`. O(n·log m) time,
    /// O(n·log m) bits (plus rank directories).
    ///
    /// # Panics
    /// If `m == 0` and the array is non-empty, or any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        check_universe(array, m);
        let bits = 32 - m.saturating_sub(1).leading_zeros().min(31);
        let bits = bits.max(1);
        let n = array.len();
        let mut levels = Vec::with_capacity(bits as usize);
        let mut current: Vec<u32> = array.to_vec();
        for level in 0..bits {
            let shift = bits - 1 - level;
            let level_bits: Vec<bool> = current.iter().map(|&x| x >> shift & 1 == 1).collect();
            levels.push(RankBits::from_bools(&level_bits));
            // Global stable partition by this bit; stability keeps each
            // prefix class contiguous, which is what the rank-based
            // child mapping relies on.
            let mut next = Vec::with_capacity(n);
            next.extend(current.iter().copied().filter(|&x| x >> shift & 1 == 0));
            next.extend(current.iter().copied().filter(|&x| x >> shift & 1 == 1));
            current = next;
        }
        Self { levels, n, m, bits }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the array was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Universe size `m`.
    pub fn universe(&self) -> u32 {
        self.m
    }

    /// Total zeros at a level — the offset where that level's 1-branch
    /// region starts in the next level's global layout.
    #[inline]
    fn zeros_total(&self, level: &RankBits) -> usize {
        level.rank0(self.n)
    }

    /// The original `A[i]`. O(log m).
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn access(&self, i: usize) -> u32 {
        assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        let mut p = i;
        let mut value = 0u32;
        for level in &self.levels {
            value <<= 1;
            if level.get(p) {
                value |= 1;
                p = self.zeros_total(level) + level.rank1(p);
            } else {
                p = level.rank0(p);
            }
        }
        value
    }

    /// Occurrences of `v` in `A[0..i)`. O(log m).
    pub fn rank(&self, v: u32, i: usize) -> usize {
        if v >= self.m || self.n == 0 {
            return 0;
        }
        let (mut lo, mut hi) = (0usize, i.min(self.n));
        for (d, level) in self.levels.iter().enumerate() {
            let shift = self.bits - 1 - d as u32;
            if v >> shift & 1 == 1 {
                let z = self.zeros_total(level);
                lo = z + level.rank1(lo);
                hi = z + level.rank1(hi);
            } else {
                lo = level.rank0(lo);
                hi = level.rank0(hi);
            }
        }
        hi - lo
    }

    /// k-th smallest (0-based) of `A[l..r)`. O(log m). `None` if the
    /// range is invalid or `k ≥ r − l`.
    pub fn quantile(&self, l: usize, r: usize, k: usize) -> Option<u32> {
        if l >= r || r > self.n || k >= r - l {
            return None;
        }
        let (mut lo, mut hi, mut k) = (l, r, k);
        let mut value = 0u32;
        for level in &self.levels {
            let zeros_in_range = level.rank0(hi) - level.rank0(lo);
            value <<= 1;
            if k < zeros_in_range {
                lo = level.rank0(lo);
                hi = level.rank0(hi);
            } else {
                k -= zeros_in_range;
                value |= 1;
                let z = self.zeros_total(level);
                lo = z + level.rank1(lo);
                hi = z + level.rank1(hi);
            }
        }
        Some(value)
    }

    /// `#{i ∈ [l, r) : A[i] < v}` — the strict-below count, O(log m).
    pub fn range_count_below(&self, l: usize, r: usize, v: u32) -> usize {
        if l >= r || r > self.n || v == 0 {
            return 0;
        }
        if v >= self.m {
            return r - l;
        }
        let (mut lo, mut hi) = (l, r);
        let mut below = 0usize;
        for (d, level) in self.levels.iter().enumerate() {
            let shift = self.bits - 1 - d as u32;
            let zeros_lo = level.rank0(lo);
            let zeros_hi = level.rank0(hi);
            if v >> shift & 1 == 1 {
                // Everything going left here is < v on this bit.
                below += zeros_hi - zeros_lo;
                let z = self.zeros_total(level);
                lo = z + (lo - zeros_lo);
                hi = z + (hi - zeros_hi);
            } else {
                lo = zeros_lo;
                hi = zeros_hi;
            }
        }
        below
    }
}

impl RangeMedianQuery for WaveletTree {
    fn len(&self) -> usize {
        self.n
    }

    fn range_kth(&self, l: usize, r: usize, k: usize) -> Option<RangeMedian> {
        self.quantile(l, r, k)
            .map(|value| RangeMedian { value, rank: k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<u32>, u32) {
        let a: Vec<u32> = (0..200).map(|i| (i * 31 + i * i / 7) as u32 % 23).collect();
        (a, 23)
    }

    #[test]
    fn access_reconstructs_the_array() {
        let (a, m) = fixture();
        let wt = WaveletTree::new(&a, m);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(wt.access(i), x, "position {i}");
        }
    }

    #[test]
    fn rank_matches_brute_force() {
        let (a, m) = fixture();
        let wt = WaveletTree::new(&a, m);
        for v in 0..m {
            for i in (0..=a.len()).step_by(7) {
                let expect = a[..i].iter().filter(|&&x| x == v).count();
                assert_eq!(wt.rank(v, i), expect, "rank({v}, {i})");
            }
        }
        assert_eq!(wt.rank(99, a.len()), 0, "out-of-universe value");
    }

    #[test]
    fn quantile_matches_sorting() {
        let (a, m) = fixture();
        let wt = WaveletTree::new(&a, m);
        for l in (0..a.len()).step_by(13) {
            for r in ((l + 1)..=a.len()).step_by(17) {
                let mut sorted: Vec<u32> = a[l..r].to_vec();
                sorted.sort_unstable();
                for (k, &expect) in sorted.iter().enumerate() {
                    assert_eq!(wt.quantile(l, r, k), Some(expect), "[{l},{r}) k={k}");
                }
                assert_eq!(wt.quantile(l, r, r - l), None);
            }
        }
    }

    #[test]
    fn range_count_below_matches_brute_force() {
        let (a, m) = fixture();
        let wt = WaveletTree::new(&a, m);
        for l in (0..a.len()).step_by(11) {
            for r in ((l + 1)..=a.len()).step_by(19) {
                for v in 0..=m + 1 {
                    let expect = a[l..r].iter().filter(|&&x| x < v).count();
                    assert_eq!(wt.range_count_below(l, r, v), expect, "[{l},{r}) v={v}");
                }
            }
        }
    }

    #[test]
    fn median_trait_agrees_with_scan() {
        use crate::MedianScan;
        let (a, m) = fixture();
        let wt = WaveletTree::new(&a, m);
        let scan = MedianScan::new(&a, m);
        for l in 0..a.len() {
            for r in l + 1..=a.len() {
                assert_eq!(wt.range_median(l, r), scan.range_median(l, r), "[{l},{r})");
            }
        }
    }

    #[test]
    fn handles_m_one_and_powers_of_two() {
        for m in [1u32, 2, 4, 8, 16] {
            let a: Vec<u32> = (0..50).map(|i| i % m).collect();
            let wt = WaveletTree::new(&a, m);
            for (i, &x) in a.iter().enumerate() {
                assert_eq!(wt.access(i), x, "m={m} i={i}");
            }
            assert_eq!(wt.quantile(0, a.len(), 0), Some(0), "m={m}");
        }
    }

    #[test]
    fn empty_array_is_fine() {
        let wt = WaveletTree::new(&[], 10);
        assert!(wt.is_empty());
        assert_eq!(wt.quantile(0, 0, 0), None);
        assert_eq!(wt.rank(3, 5), 0);
        assert_eq!(wt.range_count_below(0, 0, 5), 0);
        assert_eq!(wt.range_median(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn access_past_the_end_panics() {
        WaveletTree::new(&[1, 2], 4).access(2);
    }

    #[test]
    fn rank_bits_rank_is_exact_at_word_boundaries() {
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        let rb = RankBits::from_bools(&bits);
        for i in 0..=300 {
            let expect = bits[..i].iter().filter(|&&b| b).count();
            assert_eq!(rb.rank1(i), expect, "rank1({i})");
            assert_eq!(rb.rank0(i), i - expect, "rank0({i})");
        }
    }
}
