//! Full precomputation: the O(n²)-space, O(1)-query end of the curve
//! (the s = 1 point of Krizanc et al.'s table family).
//!
//! A triangular table stores the mode of every `A[i..j)`. Construction
//! runs one incremental counting pass per start index: O(n²) time total,
//! which is also optimal for filling an Θ(n²) table.

use crate::{check_universe, RangeMode, RangeModeQuery};

/// Precomputed range-mode table (all O(n²) ranges materialised).
#[derive(Debug)]
pub struct PrecomputedTable {
    n: usize,
    /// `table[tri(l) + (r - l - 1)]` = mode of `A[l..r)`, rows packed
    /// back-to-back: row `l` has `n - l` entries.
    table: Vec<RangeMode>,
    /// Row offsets into `table` (saves re-deriving the triangular index).
    row_start: Vec<usize>,
}

impl PrecomputedTable {
    /// Build over `array` with values in `[0, m)`. O(n²) time and space.
    ///
    /// # Panics
    /// If any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        check_universe(array, m);
        let n = array.len();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut acc = 0;
        for l in 0..=n {
            row_start.push(acc);
            acc += n - l.min(n);
        }
        let mut table = Vec::with_capacity(acc);
        let mut counts = vec![0u32; m as usize];
        for l in 0..n {
            let mut best = RangeMode {
                value: array[l],
                count: 0,
            };
            for &x in &array[l..] {
                counts[x as usize] += 1;
                let c = counts[x as usize];
                if c > best.count || (c == best.count && x < best.value) {
                    best = RangeMode { value: x, count: c };
                }
                table.push(best);
            }
            for &x in &array[l..] {
                counts[x as usize] = 0;
            }
        }
        Self {
            n,
            table,
            row_start,
        }
    }

    /// Total number of precomputed entries (n·(n+1)/2).
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }
}

impl RangeModeQuery for PrecomputedTable {
    fn len(&self) -> usize {
        self.n
    }

    fn range_mode(&self, l: usize, r: usize) -> Option<RangeMode> {
        if l >= r || r > self.n {
            return None;
        }
        Some(self.table[self.row_start[l] + (r - l - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveScan;

    #[test]
    fn table_size_is_triangular() {
        let t = PrecomputedTable::new(&[0, 1, 0, 1, 1], 2);
        assert_eq!(t.table_entries(), 5 * 6 / 2);
    }

    #[test]
    fn matches_naive_on_every_range() {
        let a = [2u32, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5];
        let naive = NaiveScan::new(&a, 9);
        let table = PrecomputedTable::new(&a, 9);
        for l in 0..a.len() {
            for r in l + 1..=a.len() {
                assert_eq!(
                    table.range_mode(l, r),
                    naive.range_mode(l, r),
                    "range [{l}, {r})"
                );
            }
        }
    }

    #[test]
    fn invalid_ranges_are_none() {
        let t = PrecomputedTable::new(&[1, 2], 3);
        assert_eq!(t.range_mode(0, 3), None);
        assert_eq!(t.range_mode(1, 1), None);
        assert_eq!(t.range_mode(2, 0), None);
    }

    #[test]
    fn constant_array_modes() {
        let t = PrecomputedTable::new(&[4; 10], 5);
        for l in 0..10 {
            for r in l + 1..=10 {
                assert_eq!(
                    t.range_mode(l, r),
                    Some(RangeMode {
                        value: 4,
                        count: (r - l) as u32
                    })
                );
            }
        }
    }

    #[test]
    fn empty_array() {
        let t = PrecomputedTable::new(&[], 1);
        assert!(t.is_empty());
        assert_eq!(t.table_entries(), 0);
        assert_eq!(t.range_mode(0, 1), None);
    }
}
