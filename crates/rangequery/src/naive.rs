//! Baseline: re-count the queried range on every query.
//!
//! O(1) preprocessing, O(r−l) query time plus O(touched) cleanup. The
//! count array is kept allocated between queries and reset via a touched
//! list, so query cost is proportional to the range, not to `m`.

use std::cell::RefCell;

use crate::{check_universe, RangeMode, RangeModeQuery};

/// Scan-per-query range mode (the "no preprocessing" end of the curve).
#[derive(Debug)]
pub struct NaiveScan {
    array: Vec<u32>,
    /// Scratch counts, reused across queries (interior mutability so that
    /// queries take `&self` like the precomputed structures).
    counts: RefCell<Vec<u32>>,
}

impl NaiveScan {
    /// Build over `array` with values in `[0, m)`.
    ///
    /// # Panics
    /// If any value is `>= m`.
    pub fn new(array: &[u32], m: u32) -> Self {
        check_universe(array, m);
        Self {
            array: array.to_vec(),
            counts: RefCell::new(vec![0; m as usize]),
        }
    }
}

impl RangeModeQuery for NaiveScan {
    fn len(&self) -> usize {
        self.array.len()
    }

    fn range_mode(&self, l: usize, r: usize) -> Option<RangeMode> {
        if l >= r || r > self.array.len() {
            return None;
        }
        let mut counts = self.counts.borrow_mut();
        let mut best = RangeMode {
            value: self.array[l],
            count: 0,
        };
        for &x in &self.array[l..r] {
            let c = &mut counts[x as usize];
            *c += 1;
            // Strict > keeps the first value to reach each count; combined
            // with the cleanup order this is not automatically the
            // smallest value, so resolve ties explicitly.
            if *c > best.count || (*c == best.count && x < best.value) {
                best = RangeMode {
                    value: x,
                    count: *c,
                };
            }
        }
        for &x in &self.array[l..r] {
            counts[x as usize] = 0;
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_array_mode() {
        let s = NaiveScan::new(&[1, 2, 2, 3, 2], 4);
        assert_eq!(s.range_mode(0, 5), Some(RangeMode { value: 2, count: 3 }));
    }

    #[test]
    fn single_element_ranges() {
        let s = NaiveScan::new(&[7, 8, 9], 10);
        for i in 0..3 {
            let m = s.range_mode(i, i + 1).unwrap();
            assert_eq!(m.count, 1);
            assert_eq!(m.value, [7, 8, 9][i]);
        }
    }

    #[test]
    fn empty_and_invalid_ranges_are_none() {
        let s = NaiveScan::new(&[1, 2, 3], 4);
        assert_eq!(s.range_mode(1, 1), None);
        assert_eq!(s.range_mode(2, 1), None);
        assert_eq!(s.range_mode(0, 4), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn ties_break_to_smallest_value() {
        let s = NaiveScan::new(&[5, 3, 5, 3], 6);
        assert_eq!(s.range_mode(0, 4), Some(RangeMode { value: 3, count: 2 }));
    }

    #[test]
    fn scratch_state_is_clean_between_queries() {
        let s = NaiveScan::new(&[1, 1, 2, 2, 2], 3);
        assert_eq!(s.range_mode(0, 5).unwrap().value, 2);
        // If counts leaked, this sub-range would still see 2's tally.
        assert_eq!(s.range_mode(0, 2), Some(RangeMode { value: 1, count: 2 }));
    }

    #[test]
    fn empty_array_answers_nothing() {
        let s = NaiveScan::new(&[], 5);
        assert!(s.is_empty());
        assert_eq!(s.range_mode(0, 0), None);
        assert_eq!(s.range_mode(0, 1), None);
    }
}
