//! The replica side: a background thread that connects to the primary,
//! requests the log from its durable position, and applies records in
//! LSN order to an [`ApplySink`].
//!
//! The applier owns the whole session lifecycle: connect, handshake
//! (`REPLICATE <lsn> <epoch>`), bootstrap (`CKPT`) when the primary has
//! pruned past our position, ordered record apply (`REC`), periodic
//! acknowledgements (`ACK`), and reconnection with exponential backoff
//! when anything goes wrong. The sink decides what "apply" means — the
//! server's sink writes through its local WAL before the backend, so a
//! restarted replica resumes from what it durably applied.
//!
//! Epoch fencing runs on both ends of the handshake. The replica sends
//! the highest generation it has ever followed; a primary whose own
//! epoch is older refuses with `ERR fenced: …` (it is a restarted stale
//! head). Symmetrically, the primary greets (and periodically
//! heartbeats) with `EPOCH <e>`; a replica that has followed a newer
//! generation aborts the session — counted in
//! [`ApplierStats::fenced`] — instead of re-following a zombie. Every
//! received frame also bumps [`ApplierStats::beats`], the liveness
//! signal the failover promoter watches.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sprofile::Tuple;

use crate::frame::{self, FrameHeader};

/// Read-timeout granularity; bounds how long stop/promotion waits.
const POLL: Duration = Duration::from_millis(25);

/// How often an idle replica re-acknowledges its position (keeps the
/// primary's retention floor fresh when nothing ships).
const IDLE_ACK: Duration = Duration::from_millis(200);

/// Applier knobs.
#[derive(Clone, Debug)]
pub struct ApplierOptions {
    /// The primary's address (`HOST:PORT`).
    pub primary: String,
    /// Send an `ACK` every this many applied records (an idle ack also
    /// fires when the stream quiesces).
    pub ack_every: u64,
    /// Reconnect backoff ceiling (starts at 100 ms, doubles per
    /// consecutive failure).
    pub max_backoff: Duration,
}

impl ApplierOptions {
    /// Defaults for a primary at `addr`: ack every 64 records, back off
    /// up to 2 s.
    pub fn new(addr: impl Into<String>) -> ApplierOptions {
        ApplierOptions {
            primary: addr.into(),
            ack_every: 64,
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Live applier counters, shared with whoever renders `STATS`.
#[derive(Debug, Default)]
pub struct ApplierStats {
    connected: AtomicU64,
    applied_lsn: AtomicU64,
    head_lsn: AtomicU64,
    records: AtomicU64,
    bytes: AtomicU64,
    errors: AtomicU64,
    epoch: AtomicU64,
    beats: AtomicU64,
    fenced: AtomicU64,
}

impl ApplierStats {
    /// A zeroed stats block.
    pub fn new() -> Arc<ApplierStats> {
        Arc::new(ApplierStats::default())
    }

    /// Whether a session with the primary is currently established.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed) == 1
    }

    /// Highest LSN durably applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Relaxed)
    }

    /// The primary's newest LSN as last reported in a frame.
    pub fn head_lsn(&self) -> u64 {
        self.head_lsn.load(Ordering::Relaxed)
    }

    /// Replication lag in LSNs (last reported head − applied).
    pub fn lag_lsn(&self) -> u64 {
        self.head_lsn().saturating_sub(self.applied_lsn())
    }

    /// Records applied (lifetime, across reconnects).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Frame bytes received and applied (headers + payloads).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Session/apply failures (each is followed by a backoff+reconnect).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The highest primary generation followed (seeded from the sink's
    /// durable epoch, advanced by `EPOCH` frames).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Frames received from the primary (lifetime) — the liveness
    /// heartbeat counter the failover promoter samples: a primary that
    /// is up keeps this advancing (idle streams still send `EPOCH`
    /// heartbeats).
    pub fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    /// Sessions aborted because the primary's generation was older than
    /// one this replica already followed (stale-primary fencing).
    pub fn fenced(&self) -> u64 {
        self.fenced.load(Ordering::Relaxed)
    }
}

/// Where applied records land. Implemented by the server over its
/// backend (+ local WAL); kept abstract so the applier is testable
/// without a server.
pub trait ApplySink: Send {
    /// The next LSN this replica needs (everything below is durably
    /// applied locally). Re-read after every reconnect.
    fn position(&mut self) -> u64;

    /// The highest primary generation this replica has followed (0 when
    /// it has never seen one — e.g. a fresh non-durable replica).
    fn epoch(&mut self) -> u64;

    /// Records that the followed primary reports generation `epoch`
    /// (durably, when the sink is backed by a WAL). Only ever called
    /// with `epoch >= self.epoch()`.
    fn adopt_epoch(&mut self, epoch: u64) -> Result<(), String>;

    /// Installs a checkpoint bootstrap: replace local state with
    /// `snapshot` (which covers records `1..=lsn`).
    fn bootstrap(&mut self, lsn: u64, snapshot: &[u8]) -> Result<(), String>;

    /// Applies one record (already validated to be the next in order).
    fn apply(&mut self, lsn: u64, tuples: &[Tuple]) -> Result<(), String>;

    /// Observes a `TRC` annotation: the record at `lsn` was written by
    /// a request carrying `trace`. Purely observational (the server's
    /// sink logs it into its ring so cross-node tracing works); the
    /// default ignores it.
    fn trace(&mut self, lsn: u64, trace: u64) {
        let _ = (lsn, trace);
    }
}

/// A running applier thread. Stop it with [`Applier::stop`] (promotion,
/// shutdown); dropping it also stops and joins.
pub struct Applier {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Applier {
    /// Spawns the applier thread. Progress is visible through `stats`;
    /// the thread reconnects forever (with backoff) until stopped.
    pub fn spawn(
        opts: ApplierOptions,
        sink: Box<dyn ApplySink>,
        stats: Arc<ApplierStats>,
    ) -> Applier {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("sprofile-replica-applier".into())
            .spawn(move || run(opts, sink, stats, flag))
            .expect("spawn applier");
        Applier {
            stop,
            join: Some(join),
        }
    }

    /// Signals the thread to stop and joins it. The thread polls every
    /// 25 ms, so this returns promptly.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Applier {
    fn drop(&mut self) {
        self.halt();
    }
}

fn run(
    opts: ApplierOptions,
    mut sink: Box<dyn ApplySink>,
    stats: Arc<ApplierStats>,
    stop: Arc<AtomicBool>,
) {
    // Seed the position counters from the sink's durable state before
    // anything else: a restarted replica that never hears from its
    // (possibly dead) primary must still report the prefix it serves —
    // `PROMOTE`'s reply and `repl_applied_lsn` come from here.
    let durable = sink.position().saturating_sub(1);
    stats.applied_lsn.fetch_max(durable, Ordering::Relaxed);
    stats.head_lsn.fetch_max(durable, Ordering::Relaxed);
    stats.epoch.fetch_max(sink.epoch(), Ordering::Relaxed);
    let stopped = || stop.load(Ordering::Acquire);
    let mut backoff = Duration::from_millis(100);
    while !stopped() {
        let outcome = TcpStream::connect(&opts.primary)
            .map_err(|e| e.to_string())
            .and_then(|stream| {
                session(stream, &opts, sink.as_mut(), &stats, &stopped).map_err(|e| e.to_string())
            });
        stats.connected.store(0, Ordering::Relaxed);
        match outcome {
            // A session that ended cleanly (stop, or the primary went
            // away after streaming) retries promptly.
            Ok(applied_any) => {
                if applied_any {
                    backoff = Duration::from_millis(100);
                }
            }
            Err(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if stopped() {
            return;
        }
        // Backoff, sliced so a stop request interrupts it.
        let until = Instant::now() + backoff;
        while Instant::now() < until && !stopped() {
            std::thread::sleep(POLL.min(until - Instant::now()));
        }
        backoff = (backoff * 2).min(opts.max_backoff);
    }
}

/// One connected session. Returns whether anything was applied (resets
/// the caller's backoff); `Err` is a transport/protocol/apply failure.
fn session(
    stream: TcpStream,
    opts: &ApplierOptions,
    sink: &mut dyn ApplySink,
    stats: &ApplierStats,
    stopped: &dyn Fn() -> bool,
) -> io::Result<bool> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut expected = sink.position();
    writer.write_all(format!("REPLICATE {expected} {}\n", sink.epoch()).as_bytes())?;
    writer.flush()?;
    stats.connected.store(1, Ordering::Relaxed);

    let mut line: Vec<u8> = Vec::new();
    let mut applied_any = false;
    let mut since_ack = 0u64;
    let mut last_ack = Instant::now();
    let ack = |writer: &mut BufWriter<TcpStream>, lsn: u64| -> io::Result<()> {
        writer.write_all(frame::encode_ack(lsn).as_bytes())?;
        writer.flush()
    };
    loop {
        match frame::read_line_step(&mut reader, &mut line, stopped)? {
            frame::LineStep::Eof | frame::LineStep::Stopped => return Ok(applied_any),
            frame::LineStep::Timeout => {
                // Eager ack: a quiescent wire with unacked records means
                // the primary may be blocked in a sync-commit wait —
                // acknowledge immediately rather than batching further.
                // An idle refresh also keeps the retention floor fresh.
                if since_ack > 0 || (applied_any && last_ack.elapsed() >= IDLE_ACK) {
                    ack(&mut writer, stats.applied_lsn())?;
                    last_ack = Instant::now();
                    since_ack = 0;
                }
                continue;
            }
            frame::LineStep::Line => {}
        }
        let header_len = line.len() as u64;
        let header = frame::parse_header(&String::from_utf8_lossy(&line))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        line.clear();
        stats.beats.fetch_add(1, Ordering::Relaxed);
        match header {
            FrameHeader::Err(msg) => {
                // A fenced refusal means *we* carry the newer
                // generation — count it so health checks can see a
                // zombie primary being refused, then back off like any
                // other refusal (the stale head must be wiped or
                // re-pointed by an operator).
                if msg.starts_with("fenced") {
                    stats.fenced.fetch_add(1, Ordering::Relaxed);
                }
                return Err(io::Error::other(format!("primary refused: {msg}")));
            }
            FrameHeader::Trace { lsn, trace } => {
                sink.trace(lsn, trace);
                stats.bytes.fetch_add(header_len, Ordering::Relaxed);
            }
            FrameHeader::Epoch(e) => {
                let local = sink.epoch();
                if e < local {
                    // The sender is a stale primary from a generation
                    // this replica already moved past: fence it out.
                    stats.fenced.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::other(format!(
                        "fenced: primary at epoch {e}, this replica followed epoch {local}"
                    )));
                }
                if e > local {
                    sink.adopt_epoch(e).map_err(io::Error::other)?;
                }
                stats.epoch.fetch_max(e, Ordering::Relaxed);
                stats.bytes.fetch_add(header_len, Ordering::Relaxed);
            }
            FrameHeader::Ckpt { lsn, nbytes } => {
                let Some(snapshot) = frame::read_payload(&mut reader, nbytes as usize, stopped)?
                else {
                    return Ok(applied_any);
                };
                sink.bootstrap(lsn, &snapshot).map_err(io::Error::other)?;
                expected = lsn + 1;
                applied_any = true;
                stats.applied_lsn.store(lsn, Ordering::Relaxed);
                stats.head_lsn.fetch_max(lsn, Ordering::Relaxed);
                stats
                    .bytes
                    .fetch_add(nbytes + header_len, Ordering::Relaxed);
                ack(&mut writer, lsn)?;
                last_ack = Instant::now();
                since_ack = 0;
            }
            FrameHeader::Rec { lsn, count, head } => {
                let payload_len = count as usize * frame::TUPLE_BYTES;
                let Some(payload) = frame::read_payload(&mut reader, payload_len, stopped)? else {
                    return Ok(applied_any);
                };
                stats.head_lsn.store(head, Ordering::Relaxed);
                if lsn < expected {
                    continue; // duplicate of something already applied
                }
                if lsn > expected {
                    return Err(io::Error::other(format!(
                        "gap in the record stream: expected lsn {expected}, got {lsn}"
                    )));
                }
                let tuples = frame::decode_tuples(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                sink.apply(lsn, &tuples).map_err(io::Error::other)?;
                expected = lsn + 1;
                applied_any = true;
                stats.applied_lsn.store(lsn, Ordering::Relaxed);
                stats.records.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes
                    .fetch_add(payload_len as u64 + header_len, Ordering::Relaxed);
                since_ack += 1;
                if since_ack >= opts.ack_every {
                    ack(&mut writer, lsn)?;
                    last_ack = Instant::now();
                    since_ack = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;
    use std::sync::Mutex;

    type Shared<T> = Arc<Mutex<Vec<(u64, T)>>>;

    /// A sink that records everything into shared vectors.
    #[derive(Clone, Default)]
    struct RecordingSink {
        applied: Shared<Vec<Tuple>>,
        bootstraps: Shared<Vec<u8>>,
        traces: Shared<u64>,
        position: Arc<AtomicU64>,
        epoch: Arc<AtomicU64>,
    }

    impl ApplySink for RecordingSink {
        fn position(&mut self) -> u64 {
            self.position.load(Ordering::Relaxed).max(1)
        }
        fn epoch(&mut self) -> u64 {
            self.epoch.load(Ordering::Relaxed)
        }
        fn adopt_epoch(&mut self, epoch: u64) -> Result<(), String> {
            self.epoch.fetch_max(epoch, Ordering::Relaxed);
            Ok(())
        }
        fn bootstrap(&mut self, lsn: u64, snapshot: &[u8]) -> Result<(), String> {
            self.bootstraps
                .lock()
                .unwrap()
                .push((lsn, snapshot.to_vec()));
            self.position.store(lsn + 1, Ordering::Relaxed);
            Ok(())
        }
        fn apply(&mut self, lsn: u64, tuples: &[Tuple]) -> Result<(), String> {
            self.applied.lock().unwrap().push((lsn, tuples.to_vec()));
            self.position.store(lsn + 1, Ordering::Relaxed);
            Ok(())
        }
        fn trace(&mut self, lsn: u64, trace: u64) {
            self.traces.lock().unwrap().push((lsn, trace));
        }
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        for _ in 0..400 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn applier_handshakes_applies_in_order_and_acks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Fake primary: expect the handshake, ship a CKPT + 3 RECs, then
        // read the acks.
        let primary = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "REPLICATE 1 0");
            frame::write_epoch(&mut writer, 3).unwrap();
            frame::write_ckpt(&mut writer, 10, b"fake-snapshot").unwrap();
            for lsn in 11..14u64 {
                frame::write_rec(
                    &mut writer,
                    lsn,
                    13,
                    &[Tuple::add(lsn as u32), Tuple::remove(0)],
                )
                .unwrap();
                if lsn == 12 {
                    frame::write_trace(&mut writer, lsn, 4242).unwrap();
                }
            }
            writer.flush().unwrap();
            // The CKPT triggers an immediate ack; 3 records with
            // ack_every=2 produce at least one more.
            let mut acks = Vec::new();
            let mut line = String::new();
            while acks.last() != Some(&13) {
                line.clear();
                if reader.read_line(&mut line).unwrap() == 0 {
                    break;
                }
                if let Some(lsn) = frame::parse_ack(&line) {
                    acks.push(lsn);
                }
            }
            acks
        });
        let sink = RecordingSink::default();
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions {
                ack_every: 2,
                ..ApplierOptions::new(addr.to_string())
            },
            Box::new(sink.clone()),
            Arc::clone(&stats),
        );
        wait_until("records applied", || stats.applied_lsn() == 13);
        assert!(stats.connected());
        assert_eq!(stats.records(), 3);
        assert_eq!(stats.head_lsn(), 13);
        assert_eq!(stats.lag_lsn(), 0);
        assert_eq!(stats.epoch(), 3, "greeting epoch adopted");
        assert_eq!(sink.epoch.load(Ordering::Relaxed), 3);
        assert!(stats.beats() >= 5, "every frame beats: {}", stats.beats());
        assert_eq!(
            sink.bootstraps.lock().unwrap().as_slice(),
            &[(10, b"fake-snapshot".to_vec())]
        );
        let applied = sink.applied.lock().unwrap().clone();
        assert_eq!(
            applied.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![11, 12, 13]
        );
        assert_eq!(applied[0].1, vec![Tuple::add(11), Tuple::remove(0)]);
        assert_eq!(
            sink.traces.lock().unwrap().as_slice(),
            &[(12, 4242)],
            "TRC annotation reached the sink"
        );
        let acks = primary.join().unwrap();
        assert!(acks.contains(&10), "{acks:?}");
        assert!(acks.contains(&13), "{acks:?}");
        applier.stop();
        assert!(!stats.connected());
    }

    #[test]
    fn applier_reconnects_with_backoff_and_resumes_position() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let primary = std::thread::spawn(move || {
            // Session 1: one record, then hang up mid-stream.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "REPLICATE 1 0");
            frame::write_rec(&mut writer, 1, 2, &[Tuple::add(5)]).unwrap();
            writer.flush().unwrap();
            drop((reader, writer));
            // Session 2: the replica resumes from lsn 2.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "REPLICATE 2 0");
            frame::write_rec(&mut writer, 2, 2, &[Tuple::add(6)]).unwrap();
            writer.flush().unwrap();
            // Hold the session open until the test stops the applier.
            let mut buf = String::new();
            while reader.read_line(&mut buf).unwrap_or(0) > 0 {
                buf.clear();
            }
        });
        let sink = RecordingSink::default();
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions::new(addr.to_string()),
            Box::new(sink.clone()),
            Arc::clone(&stats),
        );
        wait_until("both sessions applied", || stats.applied_lsn() == 2);
        assert_eq!(
            sink.applied
                .lock()
                .unwrap()
                .iter()
                .map(|(l, _)| *l)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        applier.stop();
        primary.join().unwrap();
    }

    #[test]
    fn a_restarted_replica_reports_its_durable_position_without_a_primary() {
        // The sink recovered a durable prefix through lsn 100; the
        // primary is unreachable (nothing listens on the port). The
        // stats must still report that position — PROMOTE's reply and
        // repl_applied_lsn read it — not a zeroed counter.
        let sink = RecordingSink::default();
        sink.position.store(101, Ordering::Relaxed);
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions::new("127.0.0.1:1".to_string()),
            Box::new(sink),
            Arc::clone(&stats),
        );
        wait_until("position seeded", || stats.applied_lsn() == 100);
        assert_eq!(stats.lag_lsn(), 0);
        applier.stop();
    }

    #[test]
    fn a_primary_err_line_counts_as_an_error_and_backs_off() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let primary = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = BufWriter::new(stream.try_clone().unwrap());
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            writer
                .write_all(b"ERR replication requires --wal\n")
                .unwrap();
            writer.flush().unwrap();
        });
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions::new(addr.to_string()),
            Box::new(RecordingSink::default()),
            Arc::clone(&stats),
        );
        wait_until("error counted", || stats.errors() >= 1);
        applier.stop();
        primary.join().unwrap();
    }

    #[test]
    fn a_stale_primary_epoch_is_fenced_and_nothing_is_applied() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let primary = std::thread::spawn(move || {
            // A restarted stale head: greets with epoch 2 and tries to
            // stream a record anyway.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "REPLICATE 1 5", "handshake carries the epoch");
            frame::write_epoch(&mut writer, 2).unwrap();
            frame::write_rec(&mut writer, 1, 1, &[Tuple::add(9)]).unwrap();
            writer.flush().unwrap();
            // Hold the socket open; the replica must hang up on us.
            let mut buf = String::new();
            while reader.read_line(&mut buf).unwrap_or(0) > 0 {
                buf.clear();
            }
        });
        let sink = RecordingSink::default();
        sink.epoch.store(5, Ordering::Relaxed);
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions::new(addr.to_string()),
            Box::new(sink.clone()),
            Arc::clone(&stats),
        );
        wait_until("fenced", || stats.fenced() >= 1);
        assert!(sink.applied.lock().unwrap().is_empty(), "nothing applied");
        assert_eq!(stats.epoch(), 5, "local epoch untouched");
        applier.stop();
        primary.join().unwrap();
    }

    #[test]
    fn a_fenced_err_refusal_is_counted_as_fenced() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let primary = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = BufWriter::new(stream.try_clone().unwrap());
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            writer
                .write_all(b"ERR fenced: stale primary at epoch 1; replica has followed epoch 2\n")
                .unwrap();
            writer.flush().unwrap();
        });
        let stats = ApplierStats::new();
        let applier = Applier::spawn(
            ApplierOptions::new(addr.to_string()),
            Box::new(RecordingSink::default()),
            Arc::clone(&stats),
        );
        wait_until("fenced refusal", || stats.fenced() >= 1);
        assert!(stats.errors() >= 1);
        applier.stop();
        primary.join().unwrap();
    }
}
