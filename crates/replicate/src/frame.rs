//! The replication wire format.
//!
//! Replication rides the server's newline text protocol: a replica opens
//! a normal connection and sends `REPLICATE <lsn> [<epoch>]` (the first
//! LSN it needs, plus the highest primary generation it has followed —
//! omitted or 0 means "don't care", the pre-epoch handshake). From then
//! on the primary streams *frames* — a text header line, optionally
//! followed by a fixed-size binary payload — while the replica sends
//! `ACK <lsn>` lines back on the same socket:
//!
//! ```text
//! primary -> replica
//!   EPOCH <e>\n
//!       the primary's current generation; sent as the first frame of
//!       every stream and repeated as an idle heartbeat. A replica that
//!       has followed a *newer* generation aborts (the sender is a
//!       fenced stale primary); otherwise it durably adopts `e`.
//!   CKPT <lsn> <nbytes>\n  <nbytes raw snapshot bytes>
//!       checkpoint bootstrap: install this snapshot (covers records
//!       1..=lsn); sent when the requested LSN is already pruned.
//!   REC <lsn> <count> <head>\n  <count x 5 bytes: op u8, object u32 LE>
//!       one WAL record; `head` is the primary's newest LSN at send
//!       time, so the replica can report its lag. `op` is 1 for add,
//!       0 for remove — the WAL record payload encoding.
//!   TRC <lsn> <trace>\n
//!       request-tracing annotation: the record at `lsn` was written by
//!       a client request carrying trace id `trace`. Sent immediately
//!       after that record's `REC` frame (no payload); replicas log it
//!       into their observability ring so one trace id correlates
//!       events across the whole primary+replica topology. A replica
//!       that does not care simply ignores it.
//!   ERR <message>\n
//!       refusal (not a primary, no WAL, readonly, or a fencing
//!       rejection — the message starts with `fenced:` when the
//!       *replica* has the newer generation); the replica backs off and
//!       retries (fenced refusals are also counted separately).
//!
//! replica -> primary
//!   ACK <lsn>\n
//!       everything up to and including `lsn` is durably applied; feeds
//!       the primary's segment-retention floor and the sync-commit
//!       quorum check.
//! ```
//!
//! Record payloads are binary (the same 5-byte tuple layout as WAL
//! records) because a catch-up ships millions of tuples; headers are
//! text so a session is still inspectable with `nc`.

use std::io::{self, Read, Write};

use sprofile::Tuple;
use sprofile_persist::MAX_RECORD_TUPLES;

/// Upper bound on a `CKPT` payload a replica will accept (1 GiB) — a
/// corrupt or hostile header must not make it allocate unbounded memory.
pub const MAX_SNAPSHOT_BYTES: u64 = 1 << 30;

/// Bytes one tuple occupies in a `REC` payload.
pub const TUPLE_BYTES: usize = 5;

/// A parsed primary→replica frame header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameHeader {
    /// `CKPT <lsn> <nbytes>`: a checkpoint bootstrap follows.
    Ckpt {
        /// LSN the checkpoint covers (records `1..=lsn`).
        lsn: u64,
        /// Snapshot payload size in bytes.
        nbytes: u64,
    },
    /// `REC <lsn> <count> <head>`: one record follows.
    Rec {
        /// The record's LSN.
        lsn: u64,
        /// Tuples in the payload.
        count: u64,
        /// The primary's newest LSN at send time (lag = head − applied).
        head: u64,
    },
    /// `TRC <lsn> <trace>`: the record at `lsn` carried a request
    /// trace id (no payload; purely observational).
    Trace {
        /// The traced record's LSN.
        lsn: u64,
        /// The request trace id (never 0 on the wire).
        trace: u64,
    },
    /// `EPOCH <e>`: the primary's generation (stream greeting and idle
    /// heartbeat).
    Epoch(u64),
    /// `ERR <message>`: the primary refused the stream.
    Err(String),
}

/// Parses a primary→replica frame header line (no trailing newline).
pub fn parse_header(line: &str) -> Result<FrameHeader, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Ok(FrameHeader::Err(msg.to_string()));
    }
    let mut words = line.split_whitespace();
    let word = words.next().unwrap_or("");
    let mut num = |what: &str| -> Result<u64, String> {
        words
            .next()
            .ok_or_else(|| format!("{word} header missing {what}"))?
            .parse()
            .map_err(|_| format!("{word} header has invalid {what}"))
    };
    let header = match word {
        "CKPT" => {
            let lsn = num("lsn")?;
            let nbytes = num("nbytes")?;
            if nbytes > MAX_SNAPSHOT_BYTES {
                return Err(format!(
                    "CKPT payload {nbytes} exceeds {MAX_SNAPSHOT_BYTES}"
                ));
            }
            FrameHeader::Ckpt { lsn, nbytes }
        }
        "REC" => {
            let lsn = num("lsn")?;
            let count = num("count")?;
            let head = num("head")?;
            if count > MAX_RECORD_TUPLES as u64 {
                return Err(format!("REC count {count} exceeds {MAX_RECORD_TUPLES}"));
            }
            FrameHeader::Rec { lsn, count, head }
        }
        "TRC" => {
            let lsn = num("lsn")?;
            let trace = num("trace")?;
            FrameHeader::Trace { lsn, trace }
        }
        "EPOCH" => FrameHeader::Epoch(num("epoch")?),
        other => return Err(format!("unknown replication frame '{other}'")),
    };
    if words.next().is_some() {
        return Err(format!("{word} header has trailing fields"));
    }
    Ok(header)
}

/// Writes a `REC` frame (header + binary tuples); returns the bytes
/// written. The caller batches flushes. Tuples are encoded straight
/// into the (buffered) writer through a stack scratch — a catch-up
/// ships millions of records, so the hot path materializes no payload
/// buffer.
pub fn write_rec<W: Write>(w: &mut W, lsn: u64, head: u64, tuples: &[Tuple]) -> io::Result<u64> {
    let header = format!("REC {lsn} {} {head}\n", tuples.len());
    w.write_all(header.as_bytes())?;
    for t in tuples {
        let mut b = [0u8; TUPLE_BYTES];
        b[0] = u8::from(t.is_add);
        b[1..5].copy_from_slice(&t.object.to_le_bytes());
        w.write_all(&b)?;
    }
    Ok((header.len() + tuples.len() * TUPLE_BYTES) as u64)
}

/// Writes a `CKPT` frame (header + raw snapshot bytes); returns the
/// bytes written.
pub fn write_ckpt<W: Write>(w: &mut W, lsn: u64, snapshot: &[u8]) -> io::Result<u64> {
    let header = format!("CKPT {lsn} {}\n", snapshot.len());
    w.write_all(header.as_bytes())?;
    w.write_all(snapshot)?;
    Ok((header.len() + snapshot.len()) as u64)
}

/// Writes a `TRC` frame (request-tracing annotation for the record at
/// `lsn`); returns the bytes written.
pub fn write_trace<W: Write>(w: &mut W, lsn: u64, trace: u64) -> io::Result<u64> {
    let header = format!("TRC {lsn} {trace}\n");
    w.write_all(header.as_bytes())?;
    Ok(header.len() as u64)
}

/// Writes an `EPOCH` frame (the stream greeting / idle heartbeat);
/// returns the bytes written.
pub fn write_epoch<W: Write>(w: &mut W, epoch: u64) -> io::Result<u64> {
    let header = format!("EPOCH {epoch}\n");
    w.write_all(header.as_bytes())?;
    Ok(header.len() as u64)
}

/// Decodes a `REC` payload previously read off the wire.
pub fn decode_tuples(payload: &[u8]) -> Result<Vec<Tuple>, String> {
    if !payload.len().is_multiple_of(TUPLE_BYTES) {
        return Err("REC payload is not a whole number of tuples".into());
    }
    Ok(payload
        .chunks_exact(TUPLE_BYTES)
        .map(|chunk| Tuple {
            object: u32::from_le_bytes(chunk[1..5].try_into().expect("4 bytes")),
            is_add: chunk[0] != 0,
        })
        .collect())
}

/// The `ACK` line for `lsn` (with trailing newline).
pub fn encode_ack(lsn: u64) -> String {
    format!("ACK {lsn}\n")
}

/// Parses an `ACK <lsn>` line; `None` when the line is not an ack.
pub fn parse_ack(line: &str) -> Option<u64> {
    line.trim_end_matches(['\r', '\n'])
        .strip_prefix("ACK ")?
        .trim()
        .parse()
        .ok()
}

/// One step of a timeout-tolerant line read ([`read_line_step`]).
pub enum LineStep {
    /// A complete line (or an EOF-terminated final fragment) is in the
    /// buffer.
    Line,
    /// Clean end of stream (nothing buffered).
    Eof,
    /// The read timed out with no complete line; callers can do idle
    /// work (acks, lag refresh) and call again — a partial line survives
    /// across calls.
    Timeout,
    /// `stop` returned true.
    Stopped,
}

/// Reads toward one `\n`-terminated line into `buf`, tolerating the
/// short read timeouts replication sockets run with (so stop flags stay
/// responsive). Surfaces `Timeout` to the caller instead of spinning;
/// `read_until` appends, so a line split across timeouts accumulates.
pub fn read_line_step<R: io::BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    stop: &dyn Fn() -> bool,
) -> io::Result<LineStep> {
    loop {
        if stop() {
            return Ok(LineStep::Stopped);
        }
        match reader.read_until(b'\n', buf) {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    LineStep::Eof
                } else {
                    // EOF cut the final line short; hand it up as-is.
                    LineStep::Line
                });
            }
            Ok(_) => {
                if buf.ends_with(b"\n") {
                    return Ok(LineStep::Line);
                }
                // Partial line: keep accumulating.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(LineStep::Timeout)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads an exact-length binary payload, tolerating read timeouts (the
/// sockets involved poll with short timeouts so shutdown flags stay
/// responsive). `stop` aborts the wait; EOF mid-payload is an error.
pub fn read_payload<R: Read>(
    reader: &mut R,
    len: usize,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<Vec<u8>>> {
    let mut buf = vec![0u8; len];
    let mut at = 0;
    while at < len {
        if stop() {
            return Ok(None);
        }
        match reader.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "replication stream closed mid-payload",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn rec_frames_round_trip() {
        let tuples = vec![Tuple::add(7), Tuple::remove(0), Tuple::add(u32::MAX)];
        let mut wire = Vec::new();
        let n = write_rec(&mut wire, 42, 99, &tuples).unwrap();
        assert_eq!(n as usize, wire.len());
        let newline = wire.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&wire[..newline]).unwrap();
        assert_eq!(
            parse_header(header).unwrap(),
            FrameHeader::Rec {
                lsn: 42,
                count: 3,
                head: 99
            }
        );
        let mut reader = Cursor::new(&wire[newline + 1..]);
        let payload = read_payload(&mut reader, 3 * TUPLE_BYTES, &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(decode_tuples(&payload).unwrap(), tuples);
    }

    #[test]
    fn ckpt_frames_round_trip() {
        let snap = b"snapshot-bytes";
        let mut wire = Vec::new();
        write_ckpt(&mut wire, 10, snap).unwrap();
        let newline = wire.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&wire[..newline]).unwrap();
        assert_eq!(
            parse_header(header).unwrap(),
            FrameHeader::Ckpt {
                lsn: 10,
                nbytes: snap.len() as u64
            }
        );
        assert_eq!(&wire[newline + 1..], snap);
    }

    #[test]
    fn acks_round_trip_and_junk_is_rejected() {
        assert_eq!(parse_ack(&encode_ack(17)), Some(17));
        assert_eq!(parse_ack("ACK 0\r\n"), Some(0));
        for junk in ["ACK", "ACK x", "NACK 3", ""] {
            assert_eq!(parse_ack(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn hostile_headers_are_errors_not_allocations() {
        for line in [
            "REC 1 2",                  // missing head
            "REC 1 99999999999999 5",   // count over bound
            "CKPT 1 99999999999999999", // snapshot over bound
            "REC x 1 1",                // junk lsn
            "FOO 1",                    // unknown frame
            "REC 1 1 1 junk",           // trailing fields
            "EPOCH",                    // missing epoch
            "EPOCH x",                  // junk epoch
            "EPOCH 3 4",                // trailing fields
            "",                         // empty
        ] {
            assert!(parse_header(line).is_err(), "{line:?}");
        }
        // ERR passes the message through.
        assert_eq!(
            parse_header("ERR no wal").unwrap(),
            FrameHeader::Err("no wal".into())
        );
    }

    #[test]
    fn trace_frames_round_trip() {
        let mut wire = Vec::new();
        let n = write_trace(&mut wire, 42, 0xDEAD_BEEF).unwrap();
        assert_eq!(n as usize, wire.len());
        let line = std::str::from_utf8(&wire).unwrap().trim_end();
        assert_eq!(
            parse_header(line).unwrap(),
            FrameHeader::Trace {
                lsn: 42,
                trace: 0xDEAD_BEEF
            }
        );
        for junk in ["TRC 1", "TRC x 2", "TRC 1 2 3"] {
            assert!(parse_header(junk).is_err(), "{junk:?}");
        }
    }

    #[test]
    fn epoch_frames_round_trip() {
        let mut wire = Vec::new();
        let n = write_epoch(&mut wire, 6).unwrap();
        assert_eq!(n as usize, wire.len());
        let line = std::str::from_utf8(&wire).unwrap().trim_end();
        assert_eq!(parse_header(line).unwrap(), FrameHeader::Epoch(6));
    }

    #[test]
    fn payload_reads_tolerate_interruptions_and_reject_eof() {
        // A reader that returns one byte at a time exercises the loop.
        struct Trickle<'a>(&'a [u8], usize);
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1.is_multiple_of(2) {
                    self.1 += 1;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                let i = self.1 / 2;
                if i >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[i];
                self.1 += 1;
                Ok(1)
            }
        }
        let data = b"abcdef";
        let mut r = Trickle(data, 0);
        let got = read_payload(&mut r, 6, &|| false).unwrap().unwrap();
        assert_eq!(&got, data);
        // EOF mid-payload is an error, not a short read.
        let mut r = Cursor::new(b"abc".to_vec());
        assert!(read_payload(&mut r, 6, &|| false).is_err());
        // Stop aborts cleanly.
        let mut r = Trickle(data, 0);
        assert!(read_payload(&mut r, 6, &|| true).unwrap().is_none());
    }
}
