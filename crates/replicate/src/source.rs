//! The primary side: serving one replica's `REPLICATE` stream out of
//! the live WAL.
//!
//! A stream has two regimes, stitched together without gap or overlap by
//! subscribing to the WAL tail *under the WAL lock*:
//!
//! 1. **Catch-up** — records below the subscription point are fully
//!    flushed segment files; they are read back with
//!    [`SegmentReader`] (never re-parsing in-flight appends). If the
//!    requested LSN is older than the oldest retained segment, the
//!    stream opens with a `CKPT` bootstrap from the newest valid
//!    checkpoint instead.
//! 2. **Live tailing** — records at or past the subscription point
//!    arrive on the tail channel as they are committed. A receiver that
//!    lags more than [`TAIL_CAPACITY`](sprofile_persist::TAIL_CAPACITY)
//!    records is disconnected by the WAL, and the stream transparently
//!    re-subscribes and catches up from the files again.
//!
//! Acknowledgements are read off the socket by a separate thread (the
//! server owns the socket; see [`AckState`]) and folded into the
//! [`ReplicaRegistry`] so checkpoint pruning never deletes segments the
//! slowest replica still needs.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sprofile_obs::hist::AtomicLogHistogram;
use sprofile_persist::{
    newest_checkpoint, PersistError, ReplicaRegistry, SegmentReader, TailRecord, Wal, WalMetrics,
};

use crate::frame;

/// How long the live-tail loop waits for a record before flushing and
/// re-checking the stop/ack state.
const TAIL_POLL: Duration = Duration::from_millis(25);

/// How often an idle stream repeats its `EPOCH` heartbeat — the liveness
/// signal replicas' failover promoters watch (measured in consecutive
/// [`TAIL_POLL`] timeouts: 8 × 25 ms = 200 ms).
const HEARTBEAT_TIMEOUTS: u32 = 8;

/// Most recent LSN→trace annotations retained for shipping. Traces are
/// best-effort observability: an annotation evicted before its record
/// ships (a replica catching up from far behind) is simply not
/// propagated, never an error.
const TRACE_TABLE_CAPACITY: usize = 512;

/// Most recent shipped-but-unacknowledged records tracked per stream
/// for ack-latency sampling. When a replica falls further behind than
/// this, the oldest samples are dropped (best-effort observability,
/// never backpressure).
const ACK_WINDOW_CAPACITY: usize = 1024;

/// Shipping counters for `STATS` (`repl_records` / `repl_bytes` /
/// `fenced_rejects`) plus the ship→ack round-trip histogram.
#[derive(Debug, Default)]
pub struct SourceMetrics {
    records: AtomicU64,
    bytes: AtomicU64,
    fenced_rejects: AtomicU64,
    ack_latency_us: AtomicLogHistogram,
}

impl SourceMetrics {
    /// Records shipped to replicas (all streams, lifetime).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Bytes shipped to replicas (headers + payloads, including
    /// checkpoint bootstraps).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Streams refused because the replica had followed a newer epoch
    /// than this primary's — each one is a fenced-out stale head being
    /// told so.
    pub fn fenced_rejects(&self) -> u64 {
        self.fenced_rejects.load(Ordering::Relaxed)
    }

    /// Per-record ship→acknowledge round-trip latency (microseconds),
    /// sampled at ship time across all streams. Covers the socket,
    /// the replica's apply, and its `ACK` write-back.
    pub fn ack_latency_us(&self) -> &AtomicLogHistogram {
        &self.ack_latency_us
    }

    fn on_ship(&self, records: u64, bytes: u64) {
        self.records.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn on_fenced_reject(&self) {
        self.fenced_rejects.fetch_add(1, Ordering::Relaxed);
    }
}

/// Acknowledgement state for one replica stream, fed by whoever reads
/// the socket's replica→primary direction (see [`read_acks`]) and
/// consumed by [`ReplicationSource::stream`].
#[derive(Debug, Default)]
pub struct AckState {
    acked: AtomicU64,
    closed: AtomicBool,
}

impl AckState {
    /// A fresh state (nothing acknowledged, stream open).
    pub fn new() -> Arc<AckState> {
        Arc::new(AckState::default())
    }

    /// Records an acknowledgement (monotonic).
    pub fn ack(&self, lsn: u64) {
        self.acked.fetch_max(lsn, Ordering::Relaxed);
    }

    /// Highest acknowledged LSN seen so far.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Marks the replica's read side as gone (EOF or protocol junk);
    /// the stream loop exits on its next poll.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether the read side reported the stream closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// Reads `ACK` lines off a replica connection into `state` until EOF,
/// junk, or `stop`. Runs on its own thread (reads and writes on the
/// socket are independent); expects the usual short read timeout so the
/// stop flag stays responsive.
pub fn read_acks<R: io::BufRead>(mut reader: R, state: &AckState, stop: &dyn Fn() -> bool) {
    let mut buf = Vec::new();
    loop {
        match frame::read_line_step(&mut reader, &mut buf, stop) {
            Ok(frame::LineStep::Stopped) => return,
            Ok(frame::LineStep::Timeout) => continue,
            Ok(frame::LineStep::Eof) | Err(_) => break, // replica hung up
            Ok(frame::LineStep::Line) => {
                match frame::parse_ack(&String::from_utf8_lossy(&buf)) {
                    Some(lsn) => state.ack(lsn),
                    None => break, // protocol junk: drop the stream
                }
                buf.clear();
            }
        }
    }
    state.close();
}

/// The primary's replication source: hands each `REPLICATE` connection a
/// catch-up + live-tail stream over the shared WAL.
pub struct ReplicationSource {
    wal: Arc<Mutex<Wal>>,
    /// The WAL's shared counters — read for the head LSN without taking
    /// the WAL mutex (a checkpoint holds it across an O(m) snapshot).
    wal_metrics: Arc<WalMetrics>,
    dir: PathBuf,
    registry: Arc<ReplicaRegistry>,
    metrics: SourceMetrics,
    /// Recent LSN→trace-id annotations ([`Self::note_trace`]), shipped
    /// as `TRC` frames right after the matching `REC`.
    traces: Mutex<VecDeque<(u64, u64)>>,
}

fn to_io(e: PersistError) -> io::Error {
    match e {
        PersistError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

impl ReplicationSource {
    /// A source over the WAL behind `wal` (the same mutex the appending
    /// server holds), whose files live in `dir`, registering replicas in
    /// `registry` (the one pruning consults).
    pub fn new(
        wal: Arc<Mutex<Wal>>,
        dir: impl Into<PathBuf>,
        registry: Arc<ReplicaRegistry>,
    ) -> ReplicationSource {
        let wal_metrics = wal.lock().expect("wal lock poisoned").metrics();
        ReplicationSource {
            wal,
            wal_metrics,
            dir: dir.into(),
            registry,
            metrics: SourceMetrics::default(),
            traces: Mutex::new(VecDeque::new()),
        }
    }

    /// Annotates the record at `lsn` with a request `trace` id, to be
    /// shipped as a `TRC` frame alongside its `REC` on every stream.
    /// Bounded ([`TRACE_TABLE_CAPACITY`]); a 0 trace is a no-op.
    pub fn note_trace(&self, lsn: u64, trace: u64) {
        if trace == 0 {
            return;
        }
        let mut traces = self.traces.lock().expect("trace table poisoned");
        if traces.len() >= TRACE_TABLE_CAPACITY {
            traces.pop_front();
        }
        traces.push_back((lsn, trace));
    }

    /// The trace annotation for `lsn`, if still retained.
    fn trace_for(&self, lsn: u64) -> Option<u64> {
        self.traces
            .lock()
            .expect("trace table poisoned")
            .iter()
            .rev()
            .find(|&&(l, _)| l == lsn)
            .map(|&(_, t)| t)
    }

    /// Ships the `TRC` annotation for `lsn`, when one is retained.
    fn ship_trace<W: Write>(&self, writer: &mut W, lsn: u64) -> io::Result<()> {
        if let Some(trace) = self.trace_for(lsn) {
            let bytes = frame::write_trace(writer, lsn, trace)?;
            self.metrics.on_ship(0, bytes);
        }
        Ok(())
    }

    /// Shipping counters.
    pub fn metrics(&self) -> &SourceMetrics {
        &self.metrics
    }

    /// Replicas currently streaming.
    pub fn replicas(&self) -> usize {
        self.registry.len()
    }

    /// The slowest streaming replica's acknowledged LSN.
    pub fn floor(&self) -> Option<u64> {
        self.registry.floor()
    }

    /// The newest committed LSN (0: empty log). Lock-free — safe to
    /// poll from `STATS` while a checkpoint holds the WAL mutex.
    pub fn head_lsn(&self) -> u64 {
        self.wal_metrics.head_lsn()
    }

    /// This primary's replication epoch (the WAL's durable generation
    /// marker, mirrored lock-free).
    pub fn epoch(&self) -> u64 {
        self.wal_metrics.epoch()
    }

    /// Serves one replica that requested records from `start_lsn` and
    /// has followed generations up to `replica_epoch` (0: don't care):
    /// catch-up from the segment files (or a `CKPT` bootstrap when the
    /// request predates the retained log), then live tailing, until the
    /// replica disconnects ([`AckState::is_closed`]) or `stopping`
    /// returns true. Registers the replica in the retention registry for
    /// the duration of the stream.
    ///
    /// A replica that has followed a *newer* epoch than ours proves this
    /// node is a restarted stale primary: the stream is refused with an
    /// `ERR fenced: …` frame (counted in
    /// [`SourceMetrics::fenced_rejects`]). Otherwise the stream opens
    /// with an `EPOCH` greeting and repeats it as an idle heartbeat so
    /// followers can both adopt the generation and watch liveness.
    pub fn stream<W: Write>(
        &self,
        start_lsn: u64,
        replica_epoch: u64,
        writer: &mut W,
        acks: &AckState,
        stopping: &dyn Fn() -> bool,
    ) -> io::Result<()> {
        let my_epoch = self.epoch();
        if replica_epoch > my_epoch {
            self.metrics.on_fenced_reject();
            let msg = format!(
                "ERR fenced: stale primary at epoch {my_epoch}; \
                 replica has followed epoch {replica_epoch}\n"
            );
            writer.write_all(msg.as_bytes())?;
            writer.flush()?;
            return Err(io::Error::other("fenced: replica followed a newer epoch"));
        }
        let bytes = frame::write_epoch(writer, my_epoch)?;
        self.metrics.on_ship(0, bytes);
        let mut cursor = start_lsn.max(1);
        let slot = self.registry.register(cursor.saturating_sub(1));
        let reader = SegmentReader::new(&self.dir);
        let done = || stopping() || acks.is_closed();
        // Shipped-but-unacked records, oldest first, for ack-latency
        // sampling ([`SourceMetrics::ack_latency_us`]).
        let mut in_flight: VecDeque<(u64, Instant)> = VecDeque::new();
        'session: loop {
            if done() {
                return Ok(());
            }
            // Subscribe under the WAL lock: records below `sub_next` are
            // fully flushed files, records at/after arrive on the
            // channel — no gap, no overlap.
            let (sub_next, tail) = self.wal.lock().expect("wal lock poisoned").subscribe();
            // A replica claiming a position *past* our head has a longer
            // history than we do — the failback-without-fencing shape (a
            // promoted node's old primary restarting as its replica, or
            // vice versa). Refuse loudly: silently idling here would
            // report a healthy, zero-lag stream while the peer never
            // receives a record (and would mis-apply ours when our LSNs
            // eventually caught up to its divergent ones).
            if cursor > sub_next {
                let msg = format!(
                    "ERR replica position {cursor} is ahead of this primary's head {} \
                     (divergent history; wipe the replica's wal to re-sync)\n",
                    sub_next - 1
                );
                writer.write_all(msg.as_bytes())?;
                writer.flush()?;
                return Err(io::Error::other("replica ahead of primary head"));
            }
            // Bootstrap when the files no longer reach back to `cursor`.
            if cursor < sub_next
                && reader
                    .first_lsn()
                    .map_err(to_io)?
                    .is_none_or(|f| f > cursor)
            {
                let Some((ck_lsn, snap)) = newest_checkpoint(&self.dir).map_err(to_io)? else {
                    return Err(io::Error::other(
                        "records pruned and no valid checkpoint to bootstrap from",
                    ));
                };
                if ck_lsn + 1 < cursor {
                    return Err(io::Error::other(
                        "retained checkpoint predates the requested lsn",
                    ));
                }
                let bytes = frame::write_ckpt(writer, ck_lsn, &snap)?;
                self.metrics.on_ship(0, bytes);
                cursor = ck_lsn + 1;
            }
            // Catch-up from the files to the subscription point. The
            // stop/closed state is re-checked per record — a multi-GB
            // catch-up must not pin this worker past a shutdown request
            // (the abort is surfaced as an `Interrupted` sentinel that
            // unwinds the whole scan).
            if cursor < sub_next {
                let result = reader.read_range(cursor, sub_next, |lsn, _epoch, tuples| {
                    if done() {
                        return Err(PersistError::Io(io::Error::new(
                            io::ErrorKind::Interrupted,
                            "replication stream stopped mid-catch-up",
                        )));
                    }
                    // Fold acks into the retention slot *during* a long
                    // catch-up too — a replica advancing through
                    // millions of records must not look stalled to the
                    // pruning byte-budget, which would delete the very
                    // segments this scan is about to read.
                    slot.ack(acks.acked());
                    self.drain_acked(&mut in_flight, acks.acked());
                    let bytes = frame::write_rec(writer, lsn, self.head_lsn(), &tuples)
                        .map_err(PersistError::Io)?;
                    self.metrics.on_ship(1, bytes);
                    note_shipped(&mut in_flight, lsn);
                    self.ship_trace(writer, lsn).map_err(PersistError::Io)?;
                    Ok(())
                });
                match result {
                    Err(PersistError::Io(e)) if e.kind() == io::ErrorKind::Interrupted => {
                        return Ok(())
                    }
                    other => other.map_err(to_io)?,
                }
                cursor = sub_next;
            }
            writer.flush()?;
            // Live tailing. Records are written eagerly and flushed when
            // the channel momentarily empties; an idle stream repeats
            // its EPOCH heartbeat so followers can watch liveness.
            let mut idle_timeouts = 0u32;
            loop {
                slot.ack(acks.acked());
                self.drain_acked(&mut in_flight, acks.acked());
                if done() {
                    return Ok(());
                }
                let step = match tail.try_recv() {
                    Ok(rec) => {
                        idle_timeouts = 0;
                        self.ship(writer, &mut cursor, &mut in_flight, rec)?
                    }
                    Err(TryRecvError::Empty) => {
                        writer.flush()?;
                        match tail.recv_timeout(TAIL_POLL) {
                            Ok(rec) => {
                                idle_timeouts = 0;
                                self.ship(writer, &mut cursor, &mut in_flight, rec)?
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                idle_timeouts += 1;
                                if idle_timeouts >= HEARTBEAT_TIMEOUTS {
                                    idle_timeouts = 0;
                                    // Re-read the gauge each beat: a
                                    // PROMOTE on this node mid-stream
                                    // must surface its bumped epoch.
                                    let bytes = frame::write_epoch(writer, self.epoch())?;
                                    writer.flush()?;
                                    self.metrics.on_ship(0, bytes);
                                }
                                Step::Shipped
                            }
                            // Lagged past TAIL_CAPACITY (or the WAL went
                            // away): re-subscribe and catch up from the
                            // files.
                            Err(RecvTimeoutError::Disconnected) => Step::Resync,
                        }
                    }
                    Err(TryRecvError::Disconnected) => Step::Resync,
                };
                if matches!(step, Step::Resync) {
                    continue 'session;
                }
            }
        }
    }

    /// Pops every in-flight record at or below `acked`, recording its
    /// ship→ack round trip.
    fn drain_acked(&self, in_flight: &mut VecDeque<(u64, Instant)>, acked: u64) {
        while in_flight.front().is_some_and(|&(lsn, _)| lsn <= acked) {
            let (_, shipped) = in_flight.pop_front().expect("front checked");
            let us = shipped.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.metrics.ack_latency_us.record(us);
        }
    }

    fn ship<W: Write>(
        &self,
        writer: &mut W,
        cursor: &mut u64,
        in_flight: &mut VecDeque<(u64, Instant)>,
        rec: TailRecord,
    ) -> io::Result<Step> {
        if rec.lsn < *cursor {
            // Already shipped during catch-up.
            return Ok(Step::Shipped);
        }
        if rec.lsn > *cursor {
            // A hole means the channel dropped records: resync.
            return Ok(Step::Resync);
        }
        // `head` is the *current* newest LSN (the lock-free gauge), not
        // this record's — with a backlog queued behind this frame, the
        // replica's lag must read as the real gap, not zero.
        let bytes = frame::write_rec(writer, rec.lsn, self.head_lsn(), &rec.tuples)?;
        self.metrics.on_ship(1, bytes);
        note_shipped(in_flight, rec.lsn);
        self.ship_trace(writer, rec.lsn)?;
        *cursor = rec.lsn + 1;
        Ok(Step::Shipped)
    }
}

/// Remembers when `lsn` was shipped, dropping the oldest sample past
/// [`ACK_WINDOW_CAPACITY`].
fn note_shipped(in_flight: &mut VecDeque<(u64, Instant)>, lsn: u64) {
    if in_flight.len() >= ACK_WINDOW_CAPACITY {
        in_flight.pop_front();
    }
    in_flight.push_back((lsn, Instant::now()));
}

enum Step {
    Shipped,
    Resync,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{parse_header, FrameHeader};
    use sprofile::{SProfile, Tuple};
    use sprofile_persist::{SyncPolicy, WalOptions};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sprofile-source-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Decodes a captured primary→replica byte stream into headers (and
    /// consumes payloads).
    fn decode_stream(mut bytes: &[u8]) -> Vec<FrameHeader> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let newline = bytes.iter().position(|&b| b == b'\n').expect("header line");
            let header = parse_header(std::str::from_utf8(&bytes[..newline]).unwrap()).unwrap();
            bytes = &bytes[newline + 1..];
            let payload = match &header {
                FrameHeader::Ckpt { nbytes, .. } => *nbytes as usize,
                FrameHeader::Rec { count, .. } => *count as usize * frame::TUPLE_BYTES,
                FrameHeader::Trace { .. } | FrameHeader::Epoch(_) | FrameHeader::Err(_) => 0,
            };
            bytes = &bytes[payload..];
            out.push(header);
        }
        out
    }

    /// A stop predicate that ends the stream once `n` records have been
    /// shipped (the stop state is also polled per catch-up record, so a
    /// call-counting predicate would abort mid-catch-up).
    fn stop_after_records(source: &ReplicationSource, n: u64) -> impl Fn() -> bool + '_ {
        move || source.metrics().records() >= n
    }

    #[test]
    fn catch_up_ships_every_record_in_order() {
        let dir = temp_dir("catchup");
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                segment_bytes: 96,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        for i in 0..12u32 {
            wal.append(&[Tuple::add(i % 4)]).unwrap();
        }
        wal.sync().unwrap();
        let registry = ReplicaRegistry::new();
        let source = ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, Arc::clone(&registry));
        assert_eq!(source.head_lsn(), 12);
        let mut wire = Vec::new();
        let acks = AckState::new();
        // Everything is pre-acked: each shipped record's latency sample
        // drains on the next per-record poll.
        acks.ack(12);
        source
            .stream(5, 0, &mut wire, &acks, &stop_after_records(&source, 8))
            .unwrap();
        let frames = decode_stream(&wire);
        assert_eq!(frames.len(), 9, "{frames:?}");
        assert_eq!(frames[0], FrameHeader::Epoch(1), "greeting first");
        for (i, f) in frames[1..].iter().enumerate() {
            assert_eq!(
                *f,
                FrameHeader::Rec {
                    lsn: 5 + i as u64,
                    count: 1,
                    head: 12
                }
            );
        }
        assert_eq!(source.metrics().records(), 8);
        assert!(source.metrics().bytes() > 0);
        assert!(
            source.metrics().ack_latency_us().count() >= 7,
            "acked ship samples were drained: {}",
            source.metrics().ack_latency_us().count()
        );
        // The registry slot was dropped when the stream ended.
        assert_eq!(source.replicas(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noted_traces_ship_as_trc_frames_after_their_rec() {
        let dir = temp_dir("traces");
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        for i in 0..6u32 {
            wal.append(&[Tuple::add(i)]).unwrap();
        }
        wal.sync().unwrap();
        let source =
            ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, ReplicaRegistry::new());
        source.note_trace(3, 0); // 0 = untraced, dropped
        source.note_trace(3, 777);
        source.note_trace(5, 888);
        let mut wire = Vec::new();
        let acks = AckState::new();
        source
            .stream(1, 0, &mut wire, &acks, &stop_after_records(&source, 6))
            .unwrap();
        let frames = decode_stream(&wire);
        let pos = |f: &FrameHeader| frames.iter().position(|g| g == f);
        let trc3 = pos(&FrameHeader::Trace { lsn: 3, trace: 777 }).expect("TRC 3 shipped");
        let trc5 = pos(&FrameHeader::Trace { lsn: 5, trace: 888 }).expect("TRC 5 shipped");
        let rec3 = frames
            .iter()
            .position(|f| matches!(f, FrameHeader::Rec { lsn: 3, .. }))
            .unwrap();
        assert_eq!(trc3, rec3 + 1, "TRC rides right behind its REC");
        assert!(trc5 > trc3);
        assert_eq!(
            frames
                .iter()
                .filter(|f| matches!(f, FrameHeader::Trace { .. }))
                .count(),
            2,
            "untraced records ship no TRC: {frames:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_start_bootstraps_from_the_newest_checkpoint() {
        let dir = temp_dir("bootstrap");
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                segment_bytes: 64,
                keep_checkpoints: 1,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        let mut state = SProfile::new(8);
        for i in 0..30u32 {
            let t = Tuple::add(i % 8);
            state.apply(t);
            wal.append(&[t]).unwrap();
        }
        // Checkpoint at lsn 30 prunes every sealed segment; then a few
        // more records land past it.
        wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
        for i in 0..4u32 {
            wal.append(&[Tuple::remove(i)]).unwrap();
        }
        wal.sync().unwrap();
        let source =
            ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, ReplicaRegistry::new());
        // The replica asks for lsn 1, long pruned.
        let mut wire = Vec::new();
        let acks = AckState::new();
        source
            .stream(1, 0, &mut wire, &acks, &stop_after_records(&source, 4))
            .unwrap();
        let frames = decode_stream(&wire);
        assert_eq!(frames[0], FrameHeader::Epoch(1));
        match &frames[1] {
            FrameHeader::Ckpt { lsn, nbytes } => {
                assert_eq!(*lsn, 30);
                assert!(*nbytes > 0);
            }
            other => panic!("expected CKPT after the greeting, got {other:?}"),
        }
        let recs: Vec<_> = frames[2..].to_vec();
        assert_eq!(recs.len(), 4, "{recs:?}");
        assert!(matches!(recs[0], FrameHeader::Rec { lsn: 31, .. }));
        assert!(matches!(recs[3], FrameHeader::Rec { lsn: 34, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_replica_ahead_of_the_head_is_refused_loudly() {
        let dir = temp_dir("ahead");
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        for i in 0..3u32 {
            wal.append(&[Tuple::add(i)]).unwrap();
        }
        let source =
            ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, ReplicaRegistry::new());
        // Divergent-history shape: the "replica" claims lsn 99 while our
        // head is 3. The stream must refuse with an ERR frame instead of
        // idling with a healthy-looking zero-lag connection.
        let mut wire = Vec::new();
        let acks = AckState::new();
        let err = source
            .stream(99, 0, &mut wire, &acks, &|| false)
            .expect_err("must refuse");
        assert!(err.to_string().contains("ahead"), "{err}");
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("EPOCH 1\nERR "), "{text}");
        assert!(text.contains("head 3"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_replica_from_a_newer_epoch_fences_this_stale_primary() {
        let dir = temp_dir("fenced");
        let mut wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        wal.append(&[Tuple::add(0)]).unwrap();
        assert_eq!(wal.epoch(), 1);
        let source =
            ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, ReplicaRegistry::new());
        // The replica followed generation 3; we are a restarted epoch-1
        // head. The stream must refuse with a fenced ERR, not ship.
        let mut wire = Vec::new();
        let acks = AckState::new();
        let err = source
            .stream(1, 3, &mut wire, &acks, &|| false)
            .expect_err("must fence");
        assert!(err.to_string().contains("fenced"), "{err}");
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("ERR fenced:"), "{text}");
        assert!(text.contains("epoch 3"), "{text}");
        assert_eq!(source.metrics().fenced_rejects(), 1);
        assert_eq!(source.metrics().records(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn acks_feed_the_retention_registry_and_eof_ends_the_stream() {
        let dir = temp_dir("acks");
        let wal = Wal::open(
            WalOptions {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalOptions::default()
            },
            1,
        )
        .unwrap();
        let registry = ReplicaRegistry::new();
        let source = ReplicationSource::new(Arc::new(Mutex::new(wal)), &dir, Arc::clone(&registry));
        let acks = AckState::new();
        acks.ack(7);
        // Closing before the stream starts: it exits immediately, having
        // folded the ack into the slot and then dropped it.
        acks.close();
        let mut wire = Vec::new();
        source.stream(8, 0, &mut wire, &acks, &|| false).unwrap();
        assert_eq!(&wire, b"EPOCH 1\n", "only the greeting was written");
        assert_eq!(registry.len(), 0);

        // read_acks: ACK lines accumulate, junk closes.
        let state = AckState::new();
        read_acks(
            io::Cursor::new(b"ACK 3\nACK 9\nACK 5\n".to_vec()),
            &state,
            &|| false,
        );
        assert_eq!(state.acked(), 9);
        assert!(state.is_closed(), "EOF closes the state");
        let state = AckState::new();
        read_acks(
            io::Cursor::new(b"ACK 2\ngarbage\n".to_vec()),
            &state,
            &|| false,
        );
        assert_eq!(state.acked(), 2);
        assert!(state.is_closed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
