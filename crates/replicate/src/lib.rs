//! # sprofile-replicate — log shipping, read replicas, and promotion
//!
//! PR 4 made a single node durable; this crate makes it *redundant*. A
//! **primary** (any server running with a WAL) streams its log to any
//! number of **read replicas**, multiplying query throughput and giving
//! the service its first availability story: when the primary dies, a
//! replica is promoted in place and starts accepting writes at its
//! applied LSN.
//!
//! The design is classic primary/replica log shipping, specialised to
//! the segmented WAL from `sprofile-persist`:
//!
//! * [`ReplicationSource`] (primary side) serves each replica's
//!   `REPLICATE <lsn>` request: **catch-up** reads of sealed segments
//!   via [`sprofile_persist::SegmentReader`], then **live tailing** of
//!   the open segment through the WAL's tail subscription — stitched
//!   together under the WAL lock so no record is lost or duplicated.
//!   When the requested LSN is already pruned, the stream opens with a
//!   checkpoint bootstrap (`CKPT`) instead. Replica acknowledgements
//!   feed a [`sprofile_persist::ReplicaRegistry`] so checkpoint pruning
//!   retains whatever the slowest replica still needs.
//! * [`Applier`] (replica side) connects with `REPLICATE`, applies
//!   records in LSN order to an [`ApplySink`] (the server's sink logs to
//!   the replica's *own* WAL before its backend, so restarts resume from
//!   the durable position), acknowledges periodically, and reconnects
//!   with exponential backoff.
//! * [`frame`] defines the wire format: text headers (`EPOCH`/`REC`/
//!   `CKPT`/`ACK`/`ERR`) with binary record payloads.
//!
//! Since PR 6 the plane carries an **epoch** (generation id, durable in
//! the WAL directory): the handshake is `REPLICATE <lsn> <epoch>`, every
//! stream opens with (and idles on) `EPOCH <e>` heartbeats, and fencing
//! runs in both directions — a primary refuses a replica that followed a
//! newer generation (`ERR fenced: …`, it is itself stale), and a replica
//! aborts a stream whose generation is older than one it already
//! followed. Heartbeats double as the liveness signal
//! ([`ApplierStats::beats`]) a failover promoter samples.
//!
//! Replication is asynchronous by default: an acknowledged write is
//! durable on the primary but reaches replicas a channel-hop later. The
//! server layers opt-in synchronous commit on top (gating its write acks
//! on replica `ACK`s); without it, promotion serves exactly the
//! *applied* prefix — wait for `repl_lag_lsn=0` before failing over if
//! no write may be lost.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod applier;
pub mod frame;
mod source;

pub use applier::{Applier, ApplierOptions, ApplierStats, ApplySink};
pub use source::{read_acks, AckState, ReplicationSource, SourceMetrics};
