//! Cross-crate integration: the concurrency adapters must agree with the
//! sequential S-Profile *and* with the baseline structures on the same
//! streams, regardless of thread interleaving.

use sprofile::{FrequencyProfiler, RankQueries, SProfile};
use sprofile_baselines::{MaxHeapProfiler, TreapProfiler};
use sprofile_concurrent::{PipelineProfiler, ShardedProfile};
use sprofile_streamgen::{Event, StreamConfig};
use std::sync::Arc;
use std::thread;

const M: u32 = 5_000;

fn streams(n: usize) -> Vec<Vec<Event>> {
    vec![
        StreamConfig::stream1(M, 1).take_events(n),
        StreamConfig::stream2(M, 2).take_events(n),
        StreamConfig::stream3(M, 3).take_events(n),
    ]
}

/// Replay all chunks sequentially into a fresh profiler.
fn sequential<P: FrequencyProfiler>(mut p: P, chunks: &[Vec<Event>]) -> P {
    for chunk in chunks {
        for ev in chunk {
            ev.apply_to(&mut p);
        }
    }
    p
}

#[test]
fn sharded_agrees_with_sequential_heap_and_tree() {
    let chunks = streams(30_000);
    let seq = sequential(SProfile::new(M), &chunks);
    let heap = sequential(MaxHeapProfiler::new(M), &chunks);
    let treap = sequential(TreapProfiler::new(M), &chunks);

    let sharded = Arc::new(ShardedProfile::new(M, 8));
    let handles: Vec<_> = chunks
        .iter()
        .cloned()
        .map(|chunk| {
            let sp = Arc::clone(&sharded);
            thread::spawn(move || {
                for ev in chunk {
                    if ev.is_add {
                        sp.add(ev.object);
                    } else {
                        sp.remove(ev.object);
                    }
                }
            })
        })
        .collect();
    handles.into_iter().for_each(|h| h.join().unwrap());

    for x in 0..M {
        assert_eq!(sharded.frequency(x), seq.frequency(x), "object {x}");
    }
    let mode_f = seq.mode().map(|e| e.frequency).unwrap();
    assert_eq!(sharded.mode().unwrap().1, mode_f);
    assert_eq!(FrequencyProfiler::mode(&heap).unwrap().1, mode_f);
    assert_eq!(FrequencyProfiler::mode(&treap).unwrap().1, mode_f);
    assert_eq!(
        sharded.count_at_least(3),
        RankQueries::count_at_least(&treap, 3)
    );
    // The merged snapshot is a full S-Profile: rank queries line up too.
    let snap = sharded.snapshot();
    assert_eq!(snap.median(), seq.median());
    for k in [1u32, 2, 10, 100, M] {
        assert_eq!(
            snap.kth_largest(k).unwrap().1,
            seq.kth_largest(k).unwrap().1,
            "k = {k}"
        );
    }
}

#[test]
fn pipeline_agrees_with_sequential_under_producer_races() {
    let chunks = streams(30_000);
    let seq = sequential(SProfile::new(M), &chunks);

    let pipe = PipelineProfiler::spawn(M);
    let handles: Vec<_> = chunks
        .iter()
        .cloned()
        .map(|chunk| {
            let h = pipe.handle();
            thread::spawn(move || {
                for ev in chunk {
                    if ev.is_add {
                        h.add(ev.object);
                    } else {
                        h.remove(ev.object);
                    }
                }
                h.flush()
            })
        })
        .collect();
    handles.into_iter().for_each(|h| {
        h.join().unwrap();
    });

    let h = pipe.handle();
    assert_eq!(h.flush(), 3 * 30_000);
    assert_eq!(h.mode().unwrap().1, seq.mode().unwrap().frequency);
    assert_eq!(h.median(), seq.median());
    assert_eq!(h.count_at_least(1), seq.count_at_least(1));
    for x in (0..M).step_by(97) {
        assert_eq!(h.frequency(x), seq.frequency(x), "object {x}");
    }
    // Top-K frequencies (objects may tie-order differently).
    let top: Vec<i64> = h.top_k(20).iter().map(|&(_, f)| f).collect();
    let seq_top: Vec<i64> = seq.top_k(20).iter().map(|&(_, f)| f).collect();
    assert_eq!(top, seq_top);
    drop(h);
    pipe.shutdown();
}

#[test]
fn sharded_shard_count_does_not_change_answers() {
    let chunks = streams(10_000);
    let mut answers = Vec::new();
    for shards in [1usize, 2, 7, 32] {
        let sp = ShardedProfile::new(M, shards);
        for chunk in &chunks {
            for ev in chunk {
                if ev.is_add {
                    sp.add(ev.object);
                } else {
                    sp.remove(ev.object);
                }
            }
        }
        answers.push((
            sp.mode().unwrap(),
            sp.least().unwrap().1,
            sp.count_at_least(2),
            sp.len(),
        ));
    }
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1], "answers depend on shard count");
    }
}
