//! Cluster agreement, property-style (the PR's acceptance criterion):
//! a 3×(primary+replica) hash-partitioned cluster driven with random
//! ops through the routing client must agree **exactly** with a
//! single-profile oracle — across a mid-run slice rebalance and a
//! primary kill + replica promotion — with no acknowledged write lost.
//! Primaries run synchronous quorum commit, so an `OK` means the write
//! reached the partition's replica before the client saw it; the final
//! oracle equality is therefore an RPO = 0 check, not just a liveness
//! check.
//!
//! A second test cuts one node off with the chaos proxy mid-run (a
//! network partition, not a crash): writes to the dark partition fail
//! visibly, writes to the healthy partitions keep flowing, and after
//! the link heals a fresh router converges with the oracle.

use std::net::TcpListener;
use std::path::PathBuf;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sprofile::{SProfile, Tuple};
use sprofile_cluster::{ChaosProxy, ClusterClient};
use sprofile_persist::PartitionMap;
use sprofile_server::{
    BackendKind, Client, ClusterConfig, DurabilityConfig, Server, ServerConfig, SyncCommit,
};

fn temp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sprofile-cluster-agree-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

struct NodeConfig<'a> {
    m: u32,
    slices: u32,
    node: u32,
    addrs: &'a [String],
    dir: PathBuf,
    backend: BackendKind,
}

fn start_primary(cfg: NodeConfig<'_>) -> Server {
    Server::start(
        ServerConfig {
            m: cfg.m,
            backend: cfg.backend,
            workers: 2,
            flush_every: 1,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(DurabilityConfig::new(cfg.dir)),
            sync_commit: SyncCommit::Quorum,
            sync_commit_timeout: std::time::Duration::from_secs(10),
            cluster: Some(ClusterConfig {
                slices: cfg.slices,
                node: cfg.node,
                nodes: cfg.addrs.to_vec(),
            }),
            ..ServerConfig::default()
        },
        &cfg.addrs[cfg.node as usize],
    )
    .expect("start cluster primary")
}

fn start_replica(cfg: NodeConfig<'_>, listen: &str, primary: &str) -> Server {
    Server::start(
        ServerConfig {
            m: cfg.m,
            backend: cfg.backend,
            workers: 2,
            flush_every: 1,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(DurabilityConfig::new(cfg.dir)),
            replica_of: Some(primary.to_string()),
            cluster: Some(ClusterConfig {
                slices: cfg.slices,
                node: cfg.node,
                nodes: cfg.addrs.to_vec(),
            }),
            ..ServerConfig::default()
        },
        listen,
    )
    .expect("start cluster replica")
}

fn drive(rng: &mut StdRng, router: &mut ClusterClient, oracle: &mut SProfile, m: u32, ops: usize) {
    let mut sent = 0;
    while sent < ops {
        let chunk = rng.gen_range(1usize..=24).min(ops - sent);
        let tuples: Vec<Tuple> = (0..chunk)
            .map(|_| Tuple {
                object: rng.gen_range(0..m),
                is_add: rng.gen_bool(0.7),
            })
            .collect();
        let acked = router.batch(&tuples).expect("routed batch");
        assert_eq!(acked, chunk as u64);
        oracle.apply_batch(&tuples);
        sent += chunk;
    }
}

fn assert_agrees(router: &mut ClusterClient, oracle: &SProfile, m: u32, ctx: &str) {
    for x in 0..m {
        assert_eq!(
            router.freq(x).expect("freq"),
            oracle.frequency(x),
            "{ctx}: object {x}"
        );
    }
    let oracle_mode = oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().unwrap();
        (obj, e.frequency)
    });
    assert_eq!(router.mode().expect("mode"), oracle_mode, "{ctx}: mode");
    let oracle_least = oracle.least().map(|e| {
        let obj = oracle.least_objects().iter().copied().min().unwrap();
        (obj, e.frequency)
    });
    assert_eq!(router.least().expect("least"), oracle_least, "{ctx}: least");
    assert_eq!(
        router.median().expect("median"),
        oracle.median(),
        "{ctx}: median"
    );
    for k in [1u32, 4, 10, m] {
        assert_eq!(
            router.top_k(k).expect("topk"),
            oracle.top_k(k),
            "{ctx}: top_k({k})"
        );
    }
}

#[test]
fn random_ops_with_rebalance_and_failover_agree_with_the_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC1A5_7E12);
    let m: u32 = rng.gen_range(48..128);
    let slices = 9u32;
    let base = temp_base("failover");
    let primary_addrs = reserve_addrs(3);
    let replica_addrs = reserve_addrs(3);
    let kinds = [
        BackendKind::Sharded { shards: 2 },
        BackendKind::Pipeline,
        BackendKind::Sharded { shards: 3 },
    ];
    let node_cfg = |i: u32, role: &str| NodeConfig {
        m,
        slices,
        node: i,
        addrs: &primary_addrs,
        dir: base.join(format!("{role}{i}")),
        backend: kinds[i as usize],
    };
    let mut primaries: Vec<Server> = (0..3u32).map(|i| start_primary(node_cfg(i, "p"))).collect();
    let replicas: Vec<Server> = (0..3u32)
        .map(|i| {
            start_replica(
                node_cfg(i, "r"),
                &replica_addrs[i as usize],
                &primary_addrs[i as usize],
            )
        })
        .collect();

    let mut router = ClusterClient::connect(&primary_addrs[0]).expect("router");
    let mut oracle = SProfile::new(m);

    // Phase 1: plain multi-primary traffic.
    drive(&mut rng, &mut router, &mut oracle, m, 300);
    assert_agrees(&mut router, &oracle, m, "phase 1");

    // Mid-run rebalance: a random slice leaves its round-robin owner.
    let slice = rng.gen_range(0..slices);
    let owner = slice % 3;
    let target = (owner + 1 + rng.gen_range(0..2u32)) % 3;
    let mut admin = Client::connect(&primary_addrs[owner as usize]).expect("admin");
    assert_eq!(admin.migrate(slice, target).expect("migrate"), 2);
    admin.quit().expect("quit");

    // Phase 2: the router's map is stale, so this exercises the
    // `ERR moved` retry path under synchronous commit.
    drive(&mut rng, &mut router, &mut oracle, m, 300);
    assert_agrees(&mut router, &oracle, m, "phase 2 (post-rebalance)");

    // Failover: crash-stop primary 1 (no drain, no checkpoint). Quorum
    // commit guarantees its replica holds every acked write.
    primaries.remove(1).kill();
    let mut rc = Client::connect(&replica_addrs[1]).expect("replica admin");
    let (_, epoch) = rc.promote().expect("promote");
    assert_eq!(epoch, 2, "promotion bumps the replication generation");

    // Re-point map slot 1 at the promoted replica and push the new map
    // to every live node (the promoted one included).
    router.refresh_map().expect("refresh");
    let mut failover_map = router.map().clone();
    failover_map.version += 1;
    failover_map.nodes[1] = replica_addrs[1].clone();
    push_map(&failover_map);
    rc.quit().expect("quit");
    router.install_map(failover_map).expect("install");

    // Phase 3: traffic spans the survivors and the promoted replica.
    drive(&mut rng, &mut router, &mut oracle, m, 300);
    assert_agrees(&mut router, &oracle, m, "phase 3 (post-failover)");

    router.close().expect("close");
    for p in primaries {
        p.shutdown();
    }
    for r in replicas {
        r.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Pushes `map` to every address it names, skipping unreachable ones
/// (the killed primary's slot now names the promoted replica).
fn push_map(map: &PartitionMap) {
    for addr in &map.nodes {
        let Ok(mut c) = Client::connect(addr) else {
            continue;
        };
        c.mapset(map).expect("mapset");
        c.quit().expect("quit");
    }
}

#[test]
fn a_trace_id_is_recoverable_from_every_node_it_crossed() {
    // The observability acceptance check: tag one routing client with a
    // trace id, drive writes and a scatter-gather query through it, and
    // recover that id from the log ring of *every* node — the events of
    // one logical request correlate across the whole cluster.
    let m = 96u32;
    let slices = 3u32;
    let addrs = reserve_addrs(3);
    let servers: Vec<Server> = (0..3u32)
        .map(|node| {
            Server::start(
                ServerConfig {
                    m,
                    backend: BackendKind::Sharded { shards: 2 },
                    workers: 2,
                    flush_every: 1,
                    snapshot_dir: std::env::temp_dir(),
                    cluster: Some(ClusterConfig {
                        slices,
                        node,
                        nodes: addrs.clone(),
                    }),
                    ..ServerConfig::default()
                },
                &addrs[node as usize],
            )
            .expect("start trace-test node")
        })
        .collect();

    let mut router = ClusterClient::connect(&addrs[0]).expect("router");
    const TRACE: u64 = 48879;
    router.trace(TRACE).expect("tag the router");
    // One write per object covers every slice (so every node applies
    // traced writes); MODE scatter-gathers reads across all of them.
    let tuples: Vec<Tuple> = (0..m)
        .map(|object| Tuple {
            object,
            is_add: true,
        })
        .collect();
    assert_eq!(router.batch(&tuples).expect("traced batch"), m as u64);
    assert!(router.mode().expect("traced mode").is_some());

    for (i, addr) in addrs.iter().enumerate() {
        let mut admin = Client::connect(addr).expect("admin");
        let tail = admin.logtail(512).expect("logtail");
        assert!(
            tail.contains("trace=48879"),
            "node {i}'s ring is missing the trace id:\n{tail}"
        );
        admin.quit().expect("quit");
    }

    router.close().expect("close");
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn a_network_split_fails_dark_writes_and_heals_clean() {
    let mut rng = StdRng::seed_from_u64(0x5117);
    let m = 64u32;
    let slices = 4u32;
    let base = temp_base("split");
    // Node 1 is only reachable through the chaos proxy: reserve its
    // real listen address, then put the proxy's address in the map.
    let addr0 = reserve_addrs(1).remove(0);
    let upstream1 = reserve_addrs(1).remove(0);
    let proxy = ChaosProxy::start(&upstream1).expect("proxy");
    let addrs = vec![addr0, proxy.addr().to_string()];

    let start = |node: u32, listen: &str| {
        Server::start(
            ServerConfig {
                m,
                backend: BackendKind::Sharded { shards: 2 },
                workers: 2,
                flush_every: 1,
                snapshot_dir: std::env::temp_dir(),
                wal: Some(DurabilityConfig::new(base.join(format!("node{node}")))),
                cluster: Some(ClusterConfig {
                    slices,
                    node,
                    nodes: addrs.clone(),
                }),
                ..ServerConfig::default()
            },
            listen,
        )
        .expect("start split-test node")
    };
    let node0 = start(0, &addrs[0]);
    let node1 = start(1, &upstream1);

    let mut router = ClusterClient::connect(&addrs[0]).expect("router");
    let mut oracle = SProfile::new(m);
    drive(&mut rng, &mut router, &mut oracle, m, 200);

    // Partition node 1 and let the established relays die — after
    // that, no byte can reach it, so a failed write is *known* to be
    // unapplied and the oracle bookkeeping stays exact.
    proxy.split();
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Writes into the dark partition fail loudly…
    let dark = (0..m)
        .find(|&x| router.map().owner_of(x) == 1)
        .expect("node 1 owns something");
    let mut dark_failures = 0;
    for _ in 0..3 {
        if router
            .batch(&[Tuple {
                object: dark,
                is_add: true,
            }])
            .is_err()
        {
            dark_failures += 1;
        }
    }
    assert!(dark_failures > 0, "the split never bit");

    // …while healthy partitions keep accepting.
    for _ in 0..120 {
        let object = loop {
            let x = rng.gen_range(0..m);
            if router.map().owner_of(x) == 0 {
                break x;
            }
        };
        let t = Tuple {
            object,
            is_add: rng.gen_bool(0.7),
        };
        assert_eq!(router.batch(&[t]).expect("healthy write during split"), 1);
        oracle.apply_batch(&[t]);
    }

    // Heal and reconnect (the proxy kills established relays for good —
    // survivors of a real partition redial too).
    proxy.heal();
    let mut router = ClusterClient::connect(&addrs[0]).expect("redial");
    drive(&mut rng, &mut router, &mut oracle, m, 200);
    assert_agrees(&mut router, &oracle, m, "post-heal");

    router.close().expect("close");
    node0.shutdown();
    node1.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
