//! Crash-recovery correctness, property-style (the PR's acceptance
//! criterion): for random op sequences appended to the WAL in random
//! batches — with random checkpoints and segment rotations along the way
//! — a crash injected at a **random byte offset** of the log tail
//! (including mid-record and even mid-segment-header) recovers to
//! exactly an oracle replay of the durable prefix: every record whose
//! bytes fully precede the cut, or that a checkpoint already covers.
//! The recovered state is checked both as the raw [`SProfile`] and
//! through **both server backends** (sharded and pipeline) resumed from
//! it.

use std::fs;
use std::path::{Path, PathBuf};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sprofile::{verify::derive_frequencies, SProfile, Tuple};
use sprofile_persist::{is_segment_file, recover, SyncPolicy, Wal, WalOptions};
use sprofile_server::{BackendKind, BackendOwner};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sprofile-walprop-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The segment file with the highest first-LSN currently in `dir`.
fn last_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter_map(|e| {
            let name = e.file_name();
            name.to_str()
                .and_then(is_segment_file)
                .map(|lsn| (lsn, e.path()))
        })
        .collect();
    segs.sort_unstable_by_key(|&(lsn, _)| lsn);
    segs.pop().expect("at least one segment").1
}

/// Copies every file of `src` into a fresh `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn crash_at_any_offset_recovers_exactly_the_durable_prefix() {
    let mut rng = StdRng::seed_from_u64(0x5EED_2019);
    for case in 0..40 {
        let m: u32 = rng.gen_range(1..64);
        let dir = temp_dir(&format!("case{case}"));
        let crash_dir = temp_dir(&format!("case{case}-crash"));
        let opts = WalOptions {
            dir: dir.clone(),
            sync: SyncPolicy::Never,
            // Small segments so many cases span several of them.
            segment_bytes: rng.gen_range(96..512),
            keep_checkpoints: 2,
            ..WalOptions::default()
        };
        let mut wal = Wal::open(opts, 1).unwrap();

        // Append random batches, remembering each record's tuples and
        // where its bytes end (append always write-flushes, so file
        // metadata is exact). Occasionally checkpoint.
        let mut records: Vec<(PathBuf, u64, Vec<Tuple>)> = Vec::new();
        let mut cp_lsn = 0u64; // highest LSN a checkpoint covers
        let n_records = rng.gen_range(1..40);
        for _ in 0..n_records {
            let batch: Vec<Tuple> = (0..rng.gen_range(0..24))
                .map(|_| Tuple {
                    object: rng.gen_range(0..m),
                    is_add: rng.gen_bool(0.7),
                })
                .collect();
            wal.append(&batch).unwrap();
            let seg = last_segment(&dir);
            let end = fs::metadata(&seg).unwrap().len();
            records.push((seg, end, batch));
            if rng.gen_bool(0.15) {
                let mut state = SProfile::new(m);
                for (_, _, tuples) in &records {
                    state.apply_batch(tuples);
                }
                wal.checkpoint(&state.to_snapshot_bytes()).unwrap();
                cp_lsn = records.len() as u64;
            }
        }
        wal.sync().unwrap();
        drop(wal);

        // Inject the crash: cut the tail segment at a uniformly random
        // offset (0 = even its header is gone; len = nothing lost), and
        // sometimes smear random garbage after the cut, like a
        // preallocated file would hold.
        let target = last_segment(&dir);
        let full = fs::read(&target).unwrap();
        let cut = rng.gen_range(0..=full.len());
        copy_dir(&dir, &crash_dir);
        let mut torn = full[..cut].to_vec();
        if rng.gen_bool(0.3) {
            let garbage = rng.gen_range(1..64);
            for _ in 0..garbage {
                torn.push(rng.gen_range(0..=255u32) as u8);
            }
        }
        fs::write(crash_dir.join(target.file_name().unwrap()), &torn).unwrap();

        // The durable prefix: records outside the tail segment are
        // complete on disk; inside it, those whose bytes fully precede
        // the cut; and everything a checkpoint covers regardless.
        let wal_lsn = records
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (seg, end, _))| *seg != target || *end <= cut as u64)
            .map(|(i, _)| i as u64 + 1)
            .unwrap_or(0);
        let durable = wal_lsn.max(cp_lsn);
        let mut oracle = SProfile::new(m);
        for (_, _, tuples) in &records[..durable as usize] {
            oracle.apply_batch(tuples);
        }

        let recovered = recover(&crash_dir, m).unwrap_or_else(|e| {
            panic!(
                "case {case}: recovery failed (cut {cut}/{}): {e}",
                full.len()
            )
        });
        assert_eq!(
            derive_frequencies(&recovered.profile),
            derive_frequencies(&oracle),
            "case {case}: cut {cut}/{} durable {durable}/{} cp {cp_lsn}",
            full.len(),
            records.len(),
        );
        assert_eq!(recovered.next_lsn, durable.max(cp_lsn) + 1, "case {case}");

        // Both server deployment shapes resume from the recovered
        // profile and answer exactly like the oracle.
        for kind in [BackendKind::Sharded { shards: 3 }, BackendKind::Pipeline] {
            let owner = BackendOwner::build_recovered(kind, recovered.profile.clone());
            let backend = owner.backend();
            for x in 0..m {
                assert_eq!(
                    backend.frequency(x),
                    oracle.frequency(x),
                    "case {case} {kind:?} object {x}"
                );
            }
            assert_eq!(
                backend.mode(),
                oracle.mode().map(|e| {
                    let obj = oracle.mode_objects().iter().copied().min().unwrap();
                    (obj, e.frequency)
                }),
                "case {case} {kind:?}"
            );
            assert_eq!(backend.median(), oracle.median(), "case {case} {kind:?}");
            drop(backend);
            owner.shutdown();
        }

        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&crash_dir).ok();
    }
}

#[test]
fn double_crash_then_resume_still_converges() {
    // Crash, recover, resume appending, crash again mid-record: the
    // second recovery must chain across the first crash's torn boundary.
    let mut rng = StdRng::seed_from_u64(77);
    let m = 16u32;
    let dir = temp_dir("double");
    let opts = || WalOptions {
        dir: dir.clone(),
        sync: SyncPolicy::Never,
        segment_bytes: 1 << 20,
        keep_checkpoints: 2,
        ..WalOptions::default()
    };
    let mut wal = Wal::open(opts(), 1).unwrap();
    let mut oracle = SProfile::new(m);
    for _ in 0..8 {
        let t = Tuple {
            object: rng.gen_range(0..m),
            is_add: true,
        };
        oracle.apply(t);
        wal.append(&[t]).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    // Crash 1: lose the 8th record.
    let seg = last_segment(&dir);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
    let r1 = recover(&dir, m).unwrap();
    assert!(r1.torn_tail);
    assert_eq!(r1.replayed_records, 7);
    // Resume and append two more.
    let mut wal = Wal::open(opts(), r1.next_lsn).unwrap();
    for _ in 0..2 {
        let t = Tuple {
            object: rng.gen_range(0..m),
            is_add: false,
        };
        wal.append(&[t]).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    // Crash 2: tear the new segment's tail, losing the last record.
    let seg = last_segment(&dir);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 4]).unwrap();
    let r2 = recover(&dir, m).unwrap();
    assert!(r2.torn_tail);
    assert_eq!(r2.replayed_records, 8); // 7 from run 1 + 1 surviving
    assert_eq!(r2.next_lsn, 9);
    fs::remove_dir_all(&dir).ok();
}
