//! Cross-crate integration: the S-Profile core, every baseline, and the
//! stream generators working together. Long realistic streams, all
//! structures must agree on every statistic at every checkpoint.

use sprofile::{FrequencyProfiler, RankQueries, SProfile};
use sprofile_baselines::{
    AvlProfiler, BTreeProfiler, BucketProfiler, HashRunProfiler, MaxHeapProfiler, Oracle,
    SortedVecProfiler, TreapProfiler,
};
use sprofile_streamgen::{AdversarialKind, Event, StreamConfig};

fn check_all_agree(events: impl Iterator<Item = Event>, m: u32, checkpoint: usize, label: &str) {
    let mut oracle = Oracle::new(m);
    let mut sp = SProfile::new(m);
    let mut heap = MaxHeapProfiler::new(m);
    let mut treap = TreapProfiler::new(m);
    let mut avl = AvlProfiler::new(m);
    let mut btree = BTreeProfiler::new(m);
    let mut sv = SortedVecProfiler::new(m);
    let mut bucket = BucketProfiler::new(m);
    let mut hashrun = HashRunProfiler::new(m);

    for (i, e) in events.enumerate() {
        e.apply_to(&mut oracle);
        e.apply_to(&mut sp);
        e.apply_to(&mut heap);
        e.apply_to(&mut treap);
        e.apply_to(&mut avl);
        e.apply_to(&mut btree);
        e.apply_to(&mut sv);
        e.apply_to(&mut bucket);
        e.apply_to(&mut hashrun);

        if (i + 1) % checkpoint != 0 {
            continue;
        }
        let want_mode = oracle.mode().unwrap().1;
        let want_least = oracle.least().unwrap().1;
        let want_median = oracle.median_frequency();

        assert_eq!(heap.mode().unwrap().1, want_mode, "{label}@{i}: heap mode");
        let rankers: [&dyn RankQueries; 7] = [&sp, &treap, &avl, &btree, &sv, &bucket, &hashrun];
        for p in rankers {
            assert_eq!(
                p.mode().unwrap().1,
                want_mode,
                "{label}@{i}: {} mode",
                p.name()
            );
            assert_eq!(
                p.least().unwrap().1,
                want_least,
                "{label}@{i}: {} least",
                p.name()
            );
            assert_eq!(
                p.median_frequency(),
                want_median,
                "{label}@{i}: {} median",
                p.name()
            );
            for k in [1u32, m / 3 + 1, m] {
                assert_eq!(
                    p.kth_largest_frequency(k),
                    oracle.kth_largest_frequency(k),
                    "{label}@{i}: {} k={k}",
                    p.name()
                );
            }
        }
        sprofile::verify::check_invariants(&sp).unwrap();
    }
}

#[test]
fn paper_streams_agree_across_all_structures() {
    let m = 40u32;
    check_all_agree(
        StreamConfig::stream1(m, 101).generator().take(6_000),
        m,
        500,
        "stream1",
    );
    check_all_agree(
        StreamConfig::stream2(m, 102).generator().take(6_000),
        m,
        500,
        "stream2",
    );
    check_all_agree(
        StreamConfig::stream3(m, 103).generator().take(6_000),
        m,
        500,
        "stream3",
    );
}

#[test]
fn skewed_and_bursty_streams_agree() {
    let m = 25u32;
    check_all_agree(
        StreamConfig::zipf(m, 1.5, 7).generator().take(5_000),
        m,
        250,
        "zipf",
    );
    let bursty = sprofile_streamgen::BurstyConfig::uniform(m, 9)
        .generator()
        .take(5_000);
    check_all_agree(bursty, m, 250, "bursty");
}

#[test]
fn adversarial_patterns_agree() {
    for kind in AdversarialKind::ALL {
        let m = 12u32;
        check_all_agree(kind.stream(m).take(2_000), m, 100, kind.name());
    }
}

#[test]
fn checkpointed_snapshot_equals_rebuild() {
    // Snapshot-restore: a profile cloned mid-stream and a fresh profile
    // built from its frequencies must behave identically afterwards.
    let m = 60u32;
    let events: Vec<Event> = StreamConfig::stream2(m, 55).take_events(4_000);
    let mut live = SProfile::new(m);
    for e in &events[..2_000] {
        e.apply_to(&mut live);
    }
    let freqs = sprofile::verify::derive_frequencies(&live);
    let mut rebuilt = SProfile::from_frequencies(&freqs);
    for e in &events[2_000..] {
        e.apply_to(&mut live);
        e.apply_to(&mut rebuilt);
    }
    assert_eq!(
        sprofile::verify::derive_frequencies(&live),
        sprofile::verify::derive_frequencies(&rebuilt)
    );
    assert_eq!(live.mode(), rebuilt.mode());
    assert_eq!(live.median(), rebuilt.median());
    assert_eq!(live.num_blocks(), rebuilt.num_blocks());
}

#[test]
fn trait_objects_compose_across_crates() {
    // The harness pattern: drive heterogeneous structures through the
    // trait object interface.
    let m = 10u32;
    let mut structures: Vec<Box<dyn FrequencyProfiler>> = vec![
        Box::new(SProfile::new(m)),
        Box::new(MaxHeapProfiler::new(m)),
        Box::new(TreapProfiler::new(m)),
        Box::new(BucketProfiler::new(m)),
    ];
    for e in StreamConfig::stream1(m, 77).generator().take(1_000) {
        for s in structures.iter_mut() {
            e.apply_to(s.as_mut());
        }
    }
    let modes: Vec<i64> = structures.iter().map(|s| s.mode().unwrap().1).collect();
    assert!(
        modes.windows(2).all(|w| w[0] == w[1]),
        "modes diverged: {modes:?}"
    );
}
