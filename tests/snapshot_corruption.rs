//! Fuzz-style corruption matrix over [`SProfile::read_snapshot`]: for a
//! spread of profile shapes, **every** truncation point, **every**
//! single-bit flip, and trailing garbage must produce a typed
//! [`SnapshotError`] — never a panic, and (thanks to the format's CRC-32
//! footer) never a silently different profile.

use sprofile::{verify::check_invariants, SProfile, SnapshotError, Tuple};

/// Profile shapes covering the interesting structure: empty universe,
/// single uniform block, negative frequencies, many blocks, ties.
fn shapes() -> Vec<SProfile> {
    let mut shapes = vec![SProfile::new(0), SProfile::new(1), SProfile::new(7)];
    let mut negatives = SProfile::new(5);
    negatives.remove(0);
    negatives.remove(0);
    negatives.remove(3);
    shapes.push(negatives);
    let mut staircase = SProfile::new(12);
    for x in 0..12u32 {
        for _ in 0..x / 2 {
            staircase.add(x);
        }
    }
    shapes.push(staircase);
    let mut mixed = SProfile::new(20);
    for i in 0..400u32 {
        let t = if i % 3 == 0 {
            Tuple::remove((i * 7) % 20)
        } else {
            Tuple::add((i * 13) % 20)
        };
        mixed.apply(t);
    }
    shapes.push(mixed);
    shapes
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    for (i, p) in shapes().iter().enumerate() {
        let bytes = p.to_snapshot_bytes();
        for cut in 0..bytes.len() {
            match SProfile::from_snapshot_bytes(&bytes[..cut]) {
                Err(SnapshotError::Io(_) | SnapshotError::Corrupt(_) | SnapshotError::BadMagic) => {
                }
                Ok(_) => panic!("shape {i}: truncation at {cut}/{} parsed", bytes.len()),
            }
        }
        // The full buffer still parses, so the loop bound is honest.
        assert!(SProfile::from_snapshot_bytes(&bytes).is_ok(), "shape {i}");
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    for (i, p) in shapes().iter().enumerate() {
        let bytes = p.to_snapshot_bytes();
        let mut copy = bytes.clone();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                match SProfile::from_snapshot_bytes(&copy) {
                    Err(
                        SnapshotError::BadMagic | SnapshotError::Corrupt(_) | SnapshotError::Io(_),
                    ) => {}
                    Ok(_) => panic!("shape {i}: flip byte {byte} bit {bit} went undetected"),
                }
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(copy, bytes, "flips restored");
    }
}

#[test]
fn trailing_bytes_are_rejected_by_the_exact_parser_only() {
    for p in shapes() {
        let bytes = p.to_snapshot_bytes();
        for extra in [1usize, 4, 100] {
            let mut padded = bytes.clone();
            padded.extend(std::iter::repeat_n(0xAB, extra));
            match SProfile::from_snapshot_bytes(&padded) {
                Err(SnapshotError::Corrupt(msg)) => {
                    assert!(msg.contains("trailing"), "{msg}")
                }
                other => panic!("expected trailing-bytes rejection, got {other:?}"),
            }
            // The streaming reader deliberately leaves trailing bytes to
            // the caller (snapshots embedded in larger files, e.g. WAL
            // checkpoints, rely on it) — but what it parsed is the exact
            // original.
            let mut cursor: &[u8] = &padded;
            let q = SProfile::read_snapshot(&mut cursor).expect("stream parse");
            assert_eq!(cursor.len(), extra);
            assert_eq!(
                sprofile::verify::derive_frequencies(&q),
                sprofile::verify::derive_frequencies(&p)
            );
        }
    }
}

#[test]
fn double_bit_flips_never_panic_and_valid_parses_keep_invariants() {
    // CRC-32 guarantees single-flip detection; double flips are
    // overwhelmingly detected too, but the contract under arbitrary
    // corruption is weaker and still must hold: no panic, and anything
    // that parses satisfies every structural invariant.
    let p = shapes().pop().unwrap();
    let bytes = p.to_snapshot_bytes();
    let mut copy = bytes.clone();
    for first in (0..copy.len()).step_by(3) {
        for second in (first + 1..copy.len()).step_by(7) {
            copy[first] ^= 0x10;
            copy[second] ^= 0x02;
            if let Ok(q) = SProfile::from_snapshot_bytes(&copy) {
                check_invariants(&q).expect("parsed profile must be structurally valid");
            }
            copy[first] ^= 0x10;
            copy[second] ^= 0x02;
        }
    }
    assert_eq!(copy, bytes);
}
