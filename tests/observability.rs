//! Observability integration: the `METRICS` Prometheus exposition must
//! *parse* (a hand-rolled text-format 0.0.4 parser below — no external
//! dep), agree with `STATS` when the server is quiesced (both views
//! read the same counters), expose per-verb histogram counts equal to
//! the operations actually sent, and stay valid on every replication
//! role.
//!
//! The parser is deliberately strict about the slice of the format the
//! server emits: `# HELP`/`# TYPE` headers before samples, known metric
//! kinds, label syntax, float values, and — for histograms —
//! cumulative bucket monotonicity with the `+Inf` bucket equal to
//! `_count`.

use std::collections::BTreeMap;

use sprofile_server::{
    BackendKind, Client, DurabilityConfig, Server, ServerConfig, SyncCommit, SyncPolicy, WireProto,
};

// ---------------------------------------------------------------------
// A minimal Prometheus text-format parser.

#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Debug)]
struct Exposition {
    /// family name -> declared kind (`counter`/`gauge`/`histogram`).
    types: BTreeMap<String, String>,
    samples: Vec<Sample>,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {line}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}: {line}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value: {line}"));
        }
        // The server never emits escaped quotes; reject rather than
        // silently mis-parse if that ever changes.
        let close = rest[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated label value: {line}"))?;
        let value = &rest[1..1 + close];
        if value.contains('\\') {
            return Err(format!("escape in label value (unsupported): {line}"));
        }
        labels.push((key.to_string(), value.to_string()));
        rest = &rest[close + 2..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {line}"));
        }
    }
    Ok(labels)
}

fn parse_value(s: &str, line: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}: {line}")),
    }
}

/// The base family a sample belongs to: histogram series append
/// `_bucket`/`_sum`/`_count` to the declared family name.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut types = BTreeMap::new();
    let mut helps = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("bad TYPE line: {line}"))?;
            if !valid_name(name) {
                return Err(format!("bad metric name in TYPE: {line}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown metric kind {kind:?}: {line}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("duplicate TYPE for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _) = rest
                .split_once(' ')
                .ok_or_else(|| format!("bad HELP line: {line}"))?;
            helps.insert(name.to_string(), ());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // A sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line}"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label set: {line}"))?;
                (name, parse_labels(body, line)?)
            }
            None => (name_labels, Vec::new()),
        };
        if !valid_name(name) {
            return Err(format!("bad metric name {name:?}: {line}"));
        }
        let family = family_of(name, &types)
            .ok_or_else(|| format!("sample before/without its TYPE: {line}"))?;
        if !helps.contains_key(family) {
            return Err(format!("family {family} has no HELP"));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value: parse_value(value, line)?,
        });
    }
    let exposition = Exposition { types, samples };
    validate_histograms(&exposition)?;
    Ok(exposition)
}

/// Per histogram series (family × non-`le` label set): buckets must be
/// cumulative and non-decreasing in `le` order, `+Inf` must equal
/// `_count`, and `_sum`/`_count` must both exist.
fn validate_histograms(e: &Exposition) -> Result<(), String> {
    let hist_families: Vec<&String> = e
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name)
        .collect();
    for family in hist_families {
        // Group bucket samples by their non-le labels.
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for s in &e.samples {
            if s.name != format!("{family}_bucket") {
                continue;
            }
            let le = s
                .label("le")
                .ok_or_else(|| format!("{family} bucket without le"))?;
            let bound = parse_value(le, le)?;
            let key: String = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v},"))
                .collect();
            series.entry(key).or_default().push((bound, s.value));
        }
        if series.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        for (key, mut buckets) in series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut prev = -1.0f64;
            for &(bound, count) in &buckets {
                if count < prev {
                    return Err(format!(
                        "{family}{{{key}}}: bucket le={bound} count {count} < previous {prev}"
                    ));
                }
                prev = count;
            }
            let (last_bound, inf_count) = *buckets.last().expect("nonempty");
            if last_bound != f64::INFINITY {
                return Err(format!("{family}{{{key}}}: no +Inf bucket"));
            }
            let count = e
                .samples
                .iter()
                .find(|s| {
                    s.name == format!("{family}_count")
                        && s.labels
                            .iter()
                            .map(|(k, v)| format!("{k}={v},"))
                            .collect::<String>()
                            == key
                })
                .ok_or_else(|| format!("{family}{{{key}}}: no _count"))?;
            if count.value != inf_count {
                return Err(format!(
                    "{family}{{{key}}}: +Inf bucket {inf_count} != _count {}",
                    count.value
                ));
            }
            if !e.samples.iter().any(|s| {
                s.name == format!("{family}_sum")
                    && s.labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v},"))
                        .collect::<String>()
                        == key
            }) {
                return Err(format!("{family}{{{key}}}: no _sum"));
            }
        }
    }
    Ok(())
}

impl Exposition {
    /// The single sample of an unlabelled family.
    fn value(&self, name: &str) -> f64 {
        let matches: Vec<&Sample> = self.samples.iter().filter(|s| s.name == name).collect();
        assert_eq!(matches.len(), 1, "expected exactly one {name} sample");
        matches[0].value
    }

    /// The sample of `name` carrying every label in `labels`.
    fn labelled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
            .map(|s| s.value)
    }
}

// ---------------------------------------------------------------------
// Tests.

fn stats_field(stats: &str, key: &str) -> u64 {
    Client::stats_field(stats, key).unwrap_or_else(|| panic!("no {key} in {stats}"))
}

#[test]
fn metrics_exposition_parses_and_agrees_with_a_quiesced_stats() {
    let server = Server::start(
        ServerConfig {
            m: 128,
            backend: BackendKind::Sharded { shards: 4 },
            workers: 2,
            flush_every: 4,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        c.add(7).unwrap();
    }
    c.remove(3).unwrap();
    c.batch(&[
        sprofile::Tuple::add(9),
        sprofile::Tuple::add(9),
        sprofile::Tuple::remove(1),
    ])
    .unwrap();
    assert_eq!(c.freq(7).unwrap(), 5); // read barrier: buffers flushed

    // Quiesced: this connection is the only client and STATS/METRICS
    // mutate no counters, so the two views must agree exactly.
    let stats = c.stats().unwrap();
    let text = c.metrics().unwrap();
    let e = parse_exposition(&text).expect("exposition parses");

    for (metric, stats_key) in [
        ("sprofile_connections_accepted_total", "accepted"),
        ("sprofile_connections_active", "active"),
        ("sprofile_worker_conns", "conns"),
        ("sprofile_shed_total", "shed"),
        ("sprofile_adds_total", "adds"),
        ("sprofile_removes_total", "removes"),
        ("sprofile_batches_total", "batches"),
        ("sprofile_batch_tuples_total", "batch_tuples"),
        ("sprofile_applied_total", "applied"),
        ("sprofile_flushes_total", "flushes"),
        ("sprofile_queries_total", "queries"),
        ("sprofile_snapshots_total", "snapshots"),
        ("sprofile_errors_total", "errors"),
    ] {
        assert_eq!(
            e.value(metric) as u64,
            stats_field(&stats, stats_key),
            "{metric} vs STATS {stats_key}"
        );
    }
    assert_eq!(e.value("sprofile_universe_m") as u64, 128);
    assert_eq!(e.value("sprofile_readonly") as u64, 0);
    // STATS satellite fields mirror the build-info gauge.
    assert!(stats.contains("uptime_s="), "{stats}");
    let version = env!("CARGO_PKG_VERSION");
    assert!(stats.contains(&format!("version={version}")), "{stats}");
    assert!(stats.contains("build_profile="), "{stats}");
    assert_eq!(
        e.labelled("sprofile_build_info", &[("version", version)]),
        Some(1.0),
        "build info gauge"
    );
    // A plain server still renders the replication and meter families.
    assert_eq!(
        e.labelled("sprofile_repl_role", &[("role", "none")]),
        Some(1.0)
    );
    assert_eq!(e.value("sprofile_shed_per_s"), 0.0);
    assert_eq!(e.value("sprofile_moved_rejects_per_s_ewma"), 0.0);

    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn per_verb_histogram_counts_equal_the_ops_sent() {
    let server = Server::start(
        ServerConfig {
            m: 64,
            workers: 2,
            flush_every: 4,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for _ in 0..7 {
        c.add(5).unwrap();
    }
    for _ in 0..3 {
        c.remove(9).unwrap();
    }
    c.batch(&[sprofile::Tuple::add(1); 4]).unwrap();
    c.batch(&[sprofile::Tuple::add(2); 5]).unwrap();
    for _ in 0..6 {
        c.freq(5).unwrap();
    }
    c.mode().unwrap();
    c.stats().unwrap();

    let text = c.metrics().unwrap();
    let e = parse_exposition(&text).expect("exposition parses");
    // The in-flight METRICS request itself is counted only when its
    // reply is queued, i.e. *after* this render.
    for (verb, sent) in [
        ("add", 7u64),
        ("rm", 3),
        ("batch", 2),
        ("freq", 6),
        ("mode", 1),
        ("stats", 1),
        ("metrics", 0),
        ("least", 0),
    ] {
        assert_eq!(
            e.labelled("sprofile_request_duration_us_count", &[("verb", verb)]),
            Some(sent as f64),
            "verb {verb}"
        );
    }
    // Every request lands in the parse-phase histogram exactly once:
    // 7 + 3 + 2 + 6 + 1 + 1 = 20 finished requests at render time.
    assert_eq!(
        e.labelled("sprofile_phase_duration_us_count", &[("phase", "parse")]),
        Some(20.0)
    );

    // Binary-mode requests classify into the same histograms (the
    // binary client ships singles as one-tuple BATCH frames).
    let mut b = Client::connect_with(server.local_addr().to_string(), WireProto::Bin).unwrap();
    b.add(5).unwrap();
    b.add(5).unwrap();
    b.freq(5).unwrap();
    let text = c.metrics().unwrap();
    let e = parse_exposition(&text).expect("exposition parses");
    assert_eq!(
        e.labelled("sprofile_request_duration_us_count", &[("verb", "batch")]),
        Some(4.0),
        "binary adds counted as one-tuple batches"
    );
    assert_eq!(
        e.labelled("sprofile_request_duration_us_count", &[("verb", "freq")]),
        Some(7.0),
        "binary freq counted"
    );
    b.quit().unwrap();
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn every_replication_role_exposes_a_valid_exposition() {
    let base = std::env::temp_dir().join(format!("sprofile-obs-roles-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary = Server::start(
        ServerConfig {
            m: 32,
            workers: 2,
            flush_every: 1,
            wal: Some(DurabilityConfig::new(base.join("primary"))),
            sync_commit: SyncCommit::Quorum,
            sync_commit_timeout: std::time::Duration::from_millis(200),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let replica = Server::start(
        ServerConfig {
            m: 32,
            workers: 2,
            wal: Some(DurabilityConfig::new(base.join("replica"))),
            replica_of: Some(primary.local_addr().to_string()),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    pc.add(3).unwrap();
    pc.freq(3).unwrap();
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    for _ in 0..500 {
        if rc.freq(3).unwrap() == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(rc.freq(3).unwrap(), 1, "replica caught up");

    let pe = parse_exposition(&pc.metrics().unwrap()).expect("primary exposition");
    assert_eq!(
        pe.labelled("sprofile_repl_role", &[("role", "primary")]),
        Some(1.0)
    );
    assert!(pe.value("sprofile_wal_records_total") >= 1.0);
    assert!(pe.value("sprofile_repl_connected") >= 1.0);
    // Quorum sync-commit: the commit-wait histogram renders (and
    // validated above as cumulative) and the state gauge is labelled.
    assert!(
        pe.labelled("sprofile_sync_commit", &[("state", "quorum")]) == Some(1.0)
            || pe.labelled("sprofile_sync_commit", &[("state", "degraded")]) == Some(1.0),
        "sync-commit state gauge"
    );
    assert!(pe.value("sprofile_commit_wait_us_count") >= 1.0);

    let re = parse_exposition(&rc.metrics().unwrap()).expect("replica exposition");
    assert_eq!(
        re.labelled("sprofile_repl_role", &[("role", "replica")]),
        Some(1.0)
    );
    assert_eq!(re.value("sprofile_readonly"), 1.0);
    assert_eq!(re.value("sprofile_repl_lag_lsn"), 0.0);

    // Promote and re-scrape: the role label flips, the page stays valid.
    rc.promote().unwrap();
    let re = parse_exposition(&rc.metrics().unwrap()).expect("promoted exposition");
    assert_eq!(
        re.labelled("sprofile_repl_role", &[("role", "promoted")]),
        Some(1.0)
    );
    assert_eq!(re.value("sprofile_readonly"), 0.0);

    pc.quit().unwrap();
    rc.quit().unwrap();
    primary.shutdown();
    replica.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Every span phase the server times, in pipeline order — must match
/// the `phase` label values the exposition renders.
const PHASES: [&str; 9] = [
    "queue",
    "parse",
    "apply",
    "wal_lock_wait",
    "wal_append",
    "fsync",
    "commit_wait",
    "fanout",
    "reply",
];

#[test]
fn phase_histograms_are_count_aligned_and_partition_verb_totals() {
    let dir = std::env::temp_dir().join(format!("sprofile-obs-phases-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(
        ServerConfig {
            m: 64,
            workers: 2,
            flush_every: 1,
            wal: Some(DurabilityConfig {
                sync: SyncPolicy::Always,
                ..DurabilityConfig::new(&dir)
            }),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for i in 0..12 {
        c.add(i % 8).unwrap();
    }
    c.remove(3).unwrap();
    c.batch(&[sprofile::Tuple::add(1); 5]).unwrap();
    c.freq(1).unwrap();
    c.mode().unwrap();
    let stats = c.stats().unwrap();

    let e = parse_exposition(&c.metrics().unwrap()).expect("exposition parses");
    // Every finished request records *all* phases (zeros included), so
    // the per-phase counts are identical and equal the total number of
    // requests served — which is the sum of the per-verb counts.
    let verb_requests: f64 = e
        .samples
        .iter()
        .filter(|s| s.name == "sprofile_request_duration_us_count")
        .map(|s| s.value)
        .sum();
    assert!(verb_requests >= 17.0, "{verb_requests}");
    for phase in PHASES {
        assert_eq!(
            e.labelled("sprofile_phase_duration_us_count", &[("phase", phase)]),
            Some(verb_requests),
            "phase {phase} count-aligned"
        );
    }
    // The phases partition each request's total exactly (the residual
    // lands in `reply`), so the per-phase sums add up to the per-verb
    // sums — not ≤, equal.
    let verb_total: f64 = e
        .samples
        .iter()
        .filter(|s| s.name == "sprofile_request_duration_us_sum")
        .map(|s| s.value)
        .sum();
    let phase_total: f64 = PHASES
        .iter()
        .map(|p| {
            e.labelled("sprofile_phase_duration_us_sum", &[("phase", p)])
                .unwrap_or_else(|| panic!("phase {p} missing"))
        })
        .sum();
    assert_eq!(phase_total, verb_total, "phase sums partition verb sums");
    // --sync always + flush-every-1 writes: the fsync phase saw real
    // time, and so did the WAL's own fsync histogram.
    assert!(
        e.labelled("sprofile_phase_duration_us_sum", &[("phase", "fsync")]) > Some(0.0),
        "fsync phase accrued time"
    );
    assert!(e.value("sprofile_wal_fsync_duration_us_count") >= 1.0);
    assert!(e.value("sprofile_wal_lock_wait_us_count") >= 1.0);
    assert!(e.value("sprofile_wal_group_batch_tuples_count") >= 1.0);
    // The STATS WAL percentile satellite keys ride along.
    for key in [
        "wal_fsync_p50_us",
        "wal_fsync_p99_us",
        "wal_fsync_max_us",
        "wal_lock_wait_p99_us",
        "wal_group_batch_avg",
    ] {
        assert!(stats.contains(&format!("{key}=")), "{key} in {stats}");
    }
    // Event-loop tick instrumentation renders and has seen ticks.
    assert!(e.value("sprofile_tick_poll_wait_us_count") >= 1.0);
    assert!(e.value("sprofile_conns_per_tick_count") >= 1.0);

    c.quit().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spans_returns_the_slowest_requests_with_phase_breakdowns() {
    let server = Server::start(
        ServerConfig {
            m: 64,
            workers: 2,
            flush_every: 1,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.trace(4242).unwrap();
    for i in 0..20 {
        c.add(i % 16).unwrap();
    }
    c.mode().unwrap();

    let payload = c.spans(0).unwrap();
    assert!(!payload.is_empty(), "flight recorder captured spans");
    let totals: Vec<u64> = payload
        .lines()
        .map(|l| {
            l.split_whitespace()
                .find_map(|kv| kv.strip_prefix("total_us="))
                .unwrap_or_else(|| panic!("span line without total_us: {l}"))
                .parse()
                .unwrap()
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "spans come slowest-first: {totals:?}"
    );
    for line in payload.lines() {
        assert!(line.contains("verb="), "{line}");
        assert!(line.contains("conn="), "{line}");
    }
    // Requests issued after TRACE carry the id — one slow query is
    // recoverable by its trace straight from the flight recorder.
    assert!(payload.contains("trace=4242"), "{payload}");
    // `SPANS n` keeps only the n slowest — and those spans are still
    // present in a later full dump (the recorder is nowhere near its
    // capacity, so nothing has been evicted in between).
    let top = c.spans(2).unwrap();
    assert_eq!(top.lines().count(), 2, "{top}");
    let full = c.spans(0).unwrap();
    for line in top.lines() {
        assert!(
            full.lines().any(|l| l == line),
            "top span survives in the full dump: {line}"
        );
    }

    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn counters_are_monotone_across_scrapes_and_logtail_is_bounded() {
    let server = Server::start(
        ServerConfig {
            m: 64,
            workers: 2,
            flush_every: 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.add(1).unwrap();
    let first = parse_exposition(&c.metrics().unwrap()).expect("first scrape");
    for _ in 0..10 {
        c.add(2).unwrap();
    }
    c.freq(2).unwrap();
    let second = parse_exposition(&c.metrics().unwrap()).expect("second scrape");
    for (name, kind) in &second.types {
        if kind != "counter" {
            continue;
        }
        let before = first.value(name);
        let after = second.value(name);
        assert!(
            after >= before,
            "{name} went backwards: {before} -> {after}"
        );
    }
    assert_eq!(
        second.value("sprofile_adds_total") - first.value("sprofile_adds_total"),
        10.0
    );

    // LOGTAIL honours its line bound.
    let tail = c.logtail(2).unwrap();
    assert!(tail.lines().count() <= 2, "{tail}");
    let all = c.logtail(10_000).unwrap();
    assert!(all.lines().count() >= tail.lines().count(), "{all}");

    c.quit().unwrap();
    server.shutdown();
}
