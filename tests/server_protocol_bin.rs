//! Binary-protocol property suite: the length-prefixed wire format
//! negotiated with `BIN` must agree with the same offline [`SProfile`]
//! oracle the text suite uses, and malformed binary input — hostile
//! length prefixes, bad tuple bytes, unknown opcodes, connections
//! dropped mid-frame — must yield a typed `ERR` frame (closing only
//! when framing itself can no longer be trusted), never a hang, a
//! panic, or a partially-applied batch.
//!
//! Mirrors `tests/server_protocol.rs`: one long-lived server per
//! backend, state accumulating across proptest cases in lockstep with
//! the oracles.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use sprofile::{SProfile, Tuple};
use sprofile_server::bin_proto::{self, Reply};
use sprofile_server::{
    loadgen, BackendKind, Client, LoadgenConfig, Server, ServerConfig, WireProto,
};

/// Small universe so frequencies collide and tie-breaking matters.
const M: u32 = 24;

struct BackendUnderTest {
    addr: String,
    oracle: SProfile,
    /// Keeps the event loop alive for the whole test process.
    _server: Server,
}

struct Ctx {
    backends: Vec<BackendUnderTest>,
}

fn ctx() -> MutexGuard<'static, Ctx> {
    static CTX: OnceLock<Mutex<Ctx>> = OnceLock::new();
    CTX.get_or_init(|| {
        let backends = [BackendKind::Sharded { shards: 5 }, BackendKind::Pipeline]
            .into_iter()
            .map(|kind| {
                let server = Server::start(
                    ServerConfig {
                        m: M,
                        backend: kind,
                        workers: 2,
                        // Tiny threshold so sessions cross flush
                        // boundaries constantly.
                        flush_every: 4,
                        ..ServerConfig::default()
                    },
                    "127.0.0.1:0",
                )
                .expect("bind test server");
                BackendUnderTest {
                    addr: server.local_addr().to_string(),
                    oracle: SProfile::new(M),
                    _server: server,
                }
            })
            .collect();
        Mutex::new(Ctx { backends })
    })
    .lock()
    .expect("ctx lock poisoned")
}

/// A raw socket speaking the binary protocol after the `BIN` upgrade,
/// for crafting frames the [`Client`] refuses to produce. Read timeouts
/// turn a would-be hang into a test failure.
struct RawBin {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawBin {
    /// Connects without upgrading (the first bytes are the test's).
    fn connect_raw(addr: &str) -> RawBin {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        RawBin { stream, reader }
    }

    /// Connects and performs the text `BIN` handshake.
    fn connect(addr: &str) -> RawBin {
        let mut raw = RawBin::connect_raw(addr);
        raw.write(b"BIN\n");
        assert_eq!(raw.read_line(), "OK BIN");
        raw
    }

    fn write(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write");
        self.stream.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end().to_string()
    }

    fn reply(&mut self) -> Reply {
        bin_proto::read_reply(&mut self.reader).expect("read reply")
    }

    /// Asserts the server closed its side (EOF, not a hang or garbage).
    fn assert_closed(&mut self) {
        let mut byte = [0u8; 1];
        match self.reader.read(&mut byte) {
            Ok(0) => {}
            Ok(_) => panic!("expected EOF, got more bytes"),
            Err(e) => panic!("expected clean EOF, got {e}"),
        }
    }
}

/// One step of a well-formed session (same shape as the text suite).
#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    Batch(Vec<(u32, bool)>),
    Mode,
    Least,
    Freq(u32),
    Median,
    TopK(u32),
    Cal(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..M).prop_map(Op::Add),
        (0u32..M).prop_map(Op::Remove),
        prop::collection::vec((0u32..M, any::<bool>()), 0..24).prop_map(Op::Batch),
        Just(Op::Mode),
        Just(Op::Least),
        (0u32..M).prop_map(Op::Freq),
        Just(Op::Median),
        (0u32..12).prop_map(Op::TopK),
        (-3i64..8).prop_map(Op::Cal),
    ]
}

/// Deterministic extreme witness the server promises: smallest tied id.
fn oracle_mode(oracle: &SProfile) -> Option<(u32, i64)> {
    oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    })
}

fn oracle_least(oracle: &SProfile) -> Option<(u32, i64)> {
    oracle.least().map(|e| {
        let obj = oracle.least_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    })
}

fn apply_session(
    client: &mut Client,
    oracle: &mut SProfile,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    for op in ops {
        match op {
            Op::Add(x) => {
                client.add(*x).expect("ADD");
                oracle.add(*x);
            }
            Op::Remove(x) => {
                client.remove(*x).expect("RM");
                oracle.remove(*x);
            }
            Op::Batch(tuples) => {
                let batch: Vec<Tuple> = tuples
                    .iter()
                    .map(|&(object, is_add)| Tuple { object, is_add })
                    .collect();
                let n = client.batch(&batch).expect("BATCH");
                prop_assert_eq!(n as usize, batch.len());
                for t in &batch {
                    oracle.apply(*t);
                }
            }
            Op::Mode => {
                prop_assert_eq!(client.mode().expect("MODE"), oracle_mode(oracle));
            }
            Op::Least => {
                prop_assert_eq!(client.least().expect("LEAST"), oracle_least(oracle));
            }
            Op::Freq(x) => {
                prop_assert_eq!(client.freq(*x).expect("FREQ"), oracle.frequency(*x));
            }
            Op::Median => {
                prop_assert_eq!(client.median().expect("MEDIAN"), oracle.median());
            }
            Op::TopK(k) => {
                prop_assert_eq!(client.top_k(*k).expect("TOPK"), oracle.top_k(*k));
            }
            Op::Cal(f) => {
                prop_assert_eq!(
                    client.count_at_least(*f).expect("CAL"),
                    oracle.count_at_least(*f)
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random well-formed sessions, each upgrading to binary on its own
    /// connection, agree with the oracle on every query for both
    /// backends — the exact property the text suite proves, over the
    /// binary framing.
    #[test]
    fn random_bin_sessions_agree_with_the_oracle(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut ctx = ctx();
        for but in &mut ctx.backends {
            let mut client =
                Client::connect_with(but.addr.as_str(), WireProto::Bin).expect("connect");
            prop_assert_eq!(client.proto(), WireProto::Bin);
            apply_session(&mut client, &mut but.oracle, &ops)?;
            client.quit().expect("QUIT");
        }
    }
}

/// An unknown opcode means the framing can no longer be trusted: one
/// typed `ERR` frame, then the server closes the connection.
#[test]
fn unknown_opcode_gets_a_typed_err_then_close() {
    let ctx = ctx();
    for but in &ctx.backends {
        let mut raw = RawBin::connect(but.addr.as_str());
        raw.write(&[0x7F]);
        match raw.reply() {
            Reply::Err(msg) => assert!(msg.contains("unknown binary opcode"), "{msg}"),
            other => panic!("expected ERR, got {other:?}"),
        }
        raw.assert_closed();
    }
}

/// A hostile `BATCH` length prefix is refused before the payload is
/// buffered: typed `ERR`, then close.
#[test]
fn hostile_batch_length_prefix_errs_then_closes() {
    let ctx = ctx();
    for but in &ctx.backends {
        let mut raw = RawBin::connect(but.addr.as_str());
        let mut frame = vec![bin_proto::REQ_BATCH];
        let count = (sprofile_server::protocol::MAX_BATCH + 1) as u32;
        frame.extend_from_slice(&count.to_le_bytes());
        raw.write(&frame);
        match raw.reply() {
            Reply::Err(msg) => assert!(msg.contains("exceeds maximum"), "{msg}"),
            other => panic!("expected ERR, got {other:?}"),
        }
        raw.assert_closed();
    }
}

/// Semantic errors inside a well-framed `BATCH` (bad op byte, object
/// outside the universe) consume the frame, answer one typed `ERR`,
/// apply nothing — and the connection stays usable, like the text
/// protocol's bad-body behavior.
#[test]
fn bad_tuples_in_well_framed_batches_err_without_desync() {
    let mut ctx = ctx();
    for but in &mut ctx.backends {
        let before: Vec<i64> = (0..M).map(|x| but.oracle.frequency(x)).collect();
        let mut raw = RawBin::connect(but.addr.as_str());

        // Tuple 2 has op byte 2 (neither add nor remove).
        let mut frame = vec![bin_proto::REQ_BATCH];
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&[1, 3, 0, 0, 0]); // add 3 (discarded with the frame)
        frame.extend_from_slice(&[2, 4, 0, 0, 0]); // bad op byte
        raw.write(&frame);
        match raw.reply() {
            Reply::Err(msg) => assert!(msg.contains("tuple 2"), "{msg}"),
            other => panic!("expected ERR, got {other:?}"),
        }

        // Object outside the universe, well-framed.
        let mut frame = vec![bin_proto::REQ_BATCH];
        frame.extend_from_slice(&1u32.to_le_bytes());
        bin_proto::put_tuple(
            &mut frame,
            Tuple {
                object: 99_999,
                is_add: true,
            },
        );
        raw.write(&frame);
        match raw.reply() {
            Reply::Err(msg) => assert!(msg.contains("outside universe"), "{msg}"),
            other => panic!("expected ERR, got {other:?}"),
        }

        // Still in sync: every frequency matches the oracle and nothing
        // from the rejected frames landed.
        for x in 0..M {
            let mut q = Vec::new();
            bin_proto::put_freq(&mut q, x);
            raw.write(&q);
            assert_eq!(
                raw.reply(),
                Reply::Freq(x, before[x as usize]),
                "object {x}"
            );
        }
        let mut q = Vec::new();
        bin_proto::put_simple(&mut q, bin_proto::REQ_QUIT);
        raw.write(&q);
        assert_eq!(raw.reply(), Reply::Ok(0));
    }
}

/// A connection dropped mid-frame (the length prefix promised far more
/// tuples than were sent) discards the partial `BATCH` whole — no
/// partial apply, no hang, no panic.
#[test]
fn mid_frame_disconnect_drops_the_batch_whole() {
    let mut ctx = ctx();
    for but in &mut ctx.backends {
        let expect = but.oracle.frequency(3);
        {
            let mut raw = RawBin::connect(but.addr.as_str());
            let mut frame = vec![bin_proto::REQ_BATCH];
            frame.extend_from_slice(&1_000u32.to_le_bytes());
            bin_proto::put_tuple(
                &mut frame,
                Tuple {
                    object: 3,
                    is_add: true,
                },
            );
            bin_proto::put_tuple(
                &mut frame,
                Tuple {
                    object: 3,
                    is_add: true,
                },
            );
            raw.write(&frame);
            // Drop mid-body.
        }
        std::thread::sleep(Duration::from_millis(60));
        let mut client = Client::connect(but.addr.as_str()).expect("reconnect");
        assert_eq!(
            client.freq(3).expect("FREQ"),
            expect,
            "truncated binary batch must not apply"
        );
        client.quit().expect("QUIT");
    }
}

/// The `BIN` upgrade pipelines: a client may send the upgrade line and
/// binary frames in one write, and the replies come back in order —
/// text `OK BIN` first, then binary frames.
#[test]
fn bin_upgrade_pipelines_with_binary_frames() {
    let mut ctx = ctx();
    for but in &mut ctx.backends {
        let tuples = [
            Tuple {
                object: 5,
                is_add: true,
            },
            Tuple {
                object: 5,
                is_add: true,
            },
            Tuple {
                object: 7,
                is_add: false,
            },
        ];
        let mut wire = b"BIN\n".to_vec();
        bin_proto::put_batch(&mut wire, &tuples);
        bin_proto::put_freq(&mut wire, 5);
        bin_proto::put_simple(&mut wire, bin_proto::REQ_QUIT);

        let mut raw = RawBin::connect_raw(but.addr.as_str());
        raw.write(&wire);
        for t in tuples {
            but.oracle.apply(t);
        }
        assert_eq!(raw.read_line(), "OK BIN");
        assert_eq!(raw.reply(), Reply::Ok(3));
        assert_eq!(raw.reply(), Reply::Freq(5, but.oracle.frequency(5)));
        assert_eq!(raw.reply(), Reply::Ok(0));
        raw.assert_closed();
    }
}

/// A server running natively in binary mode (`--proto bin`) still
/// accepts the text `BIN` upgrade line, so clients speak one handshake
/// regardless of the server's proto; a stray `'B'` that is not the
/// upgrade line is a framing error.
#[test]
fn native_bin_server_accepts_the_text_upgrade_line() {
    let server = Server::start(
        ServerConfig {
            m: M,
            backend: BackendKind::Sharded { shards: 4 },
            workers: 2,
            proto: WireProto::Bin,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind bin server");
    let addr = server.local_addr().to_string();

    // The uniform handshake works against a bin-native server.
    let mut client = Client::connect_with(addr.as_str(), WireProto::Bin).expect("connect");
    client.add(1).expect("ADD");
    assert_eq!(client.freq(1).expect("FREQ"), 1);
    client.quit().expect("QUIT");

    // A stray 'B' that can no longer become "BIN\r\n" is a framing
    // error: typed ERR, then close.
    let mut raw = RawBin::connect_raw(addr.as_str());
    raw.write(b"BXX");
    match raw.reply() {
        Reply::Err(msg) => assert!(msg.contains("stray 'B'"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    raw.assert_closed();

    assert_eq!(server.shutdown(), 1);
}

/// Past `--max-conns` the server sheds instead of queueing: the shed
/// connection gets a typed `ERR overloaded` line and a close, existing
/// connections keep working, and the `shed` counter shows up in STATS.
#[test]
fn overflow_connections_are_shed_with_a_typed_err() {
    let server = Server::start(
        ServerConfig {
            m: M,
            backend: BackendKind::Sharded { shards: 4 },
            workers: 1,
            max_conns: 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind shed server");
    let addr = server.local_addr().to_string();

    // Fill the budget; the round trips guarantee both are registered
    // before the overflow connection arrives.
    let mut c1 = Client::connect(addr.as_str()).expect("conn 1");
    let mut c2 = Client::connect(addr.as_str()).expect("conn 2");
    c1.stats().expect("stats 1");
    c2.stats().expect("stats 2");

    let mut over = RawBin::connect_raw(addr.as_str());
    assert_eq!(over.read_line(), "ERR overloaded");
    over.assert_closed();

    // Existing connections are unaffected and STATS records the shed.
    let stats = c1.stats().expect("stats after shed");
    assert_eq!(Client::stats_field(&stats, "shed"), Some(1), "{stats}");
    assert_eq!(Client::stats_field(&stats, "conns"), Some(2), "{stats}");
    c1.quit().expect("QUIT 1");
    c2.quit().expect("QUIT 2");
    assert_eq!(server.shutdown(), 0);
}

/// Acceptance floor from the event-loop rework: a 256-connection
/// binary-protocol loadgen run completes against the default worker
/// count, applying every tuple exactly once.
#[test]
fn loadgen_completes_with_256_connections() {
    const THREADS: usize = 256;
    const EVENTS_PER_THREAD: usize = 64;
    let server = Server::start(
        ServerConfig {
            m: 256,
            backend: BackendKind::Sharded { shards: 8 },
            flush_every: 32,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind 256-conn server");
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        threads: THREADS,
        events_per_thread: EVENTS_PER_THREAD,
        batch: 16,
        m: 256,
        seed: 77,
        proto: WireProto::Bin,
    };
    let report = loadgen::run(&cfg).expect("256-connection loadgen");
    let total = (THREADS * EVENTS_PER_THREAD) as u64;
    assert_eq!(report.tuples_sent, total);
    assert_eq!(
        Client::stats_field(&report.final_stats, "applied"),
        Some(total),
        "{}",
        report.final_stats
    );
    assert!(report.latency.samples > 0, "latency histogram recorded");
    assert_eq!(server.shutdown(), total);
}

/// The binary `SNAPSHOT` verb ships the server's checkpoint inline: the
/// returned bytes decode to exactly the oracle's state, and text-mode
/// connections are refused client-side (the verb has no text form).
#[test]
fn snapshot_fetch_returns_the_full_state_inline() {
    let server = Server::start(
        ServerConfig {
            m: M,
            backend: BackendKind::Sharded { shards: 3 },
            workers: 2,
            flush_every: 4,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind snapshot server");
    let mut client = Client::connect_with(server.local_addr(), WireProto::Bin).expect("connect");
    let mut oracle = SProfile::new(M);
    let tuples: Vec<Tuple> = (0..200u32)
        .map(|i| Tuple {
            object: (i * 7) % M,
            is_add: i % 3 != 0,
        })
        .collect();
    client.batch(&tuples).expect("batch");
    oracle.apply_batch(&tuples);

    let bytes = client.snapshot_fetch().expect("inline snapshot");
    let got = SProfile::from_snapshot_bytes(&bytes).expect("decode snapshot");
    for x in 0..M {
        assert_eq!(got.frequency(x), oracle.frequency(x), "object {x}");
    }
    // The connection stays usable after the bulk reply.
    assert_eq!(client.freq(0).expect("freq"), oracle.frequency(0));
    client.quit().expect("quit");

    let mut text = Client::connect(server.local_addr()).expect("text connect");
    assert!(
        text.snapshot_fetch().is_err(),
        "inline snapshot must be refused on a text connection"
    );
    text.quit().expect("quit");
    server.shutdown();
}
