//! Protocol property suite: random well-formed sessions against a live
//! TCP server must agree with an offline [`SProfile`] oracle on every
//! query; malformed or truncated frames must yield an `ERR` reply and
//! never panic the server or desync the connection.
//!
//! Both backends run behind **one long-lived server each** (sessions
//! accumulate state, and so do the matching oracles) — cheaper than a
//! server per case and a stronger test: every case starts from the state
//! the previous cases left behind.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use sprofile::SProfile;
use sprofile_server::{BackendKind, Client, Server, ServerConfig};

/// Small universe so frequencies collide and tie-breaking matters.
const M: u32 = 24;

struct BackendUnderTest {
    addr: String,
    oracle: SProfile,
    /// Keeps the accept pool alive for the whole test process.
    _server: Server,
}

struct Ctx {
    backends: Vec<BackendUnderTest>,
}

fn ctx() -> MutexGuard<'static, Ctx> {
    static CTX: OnceLock<Mutex<Ctx>> = OnceLock::new();
    CTX.get_or_init(|| {
        let backends = [BackendKind::Sharded { shards: 5 }, BackendKind::Pipeline]
            .into_iter()
            .map(|kind| {
                let server = Server::start(
                    ServerConfig {
                        m: M,
                        backend: kind,
                        workers: 2,
                        // Tiny threshold so sessions cross flush
                        // boundaries constantly.
                        flush_every: 4,
                        ..ServerConfig::default()
                    },
                    "127.0.0.1:0",
                )
                .expect("bind test server");
                BackendUnderTest {
                    addr: server.local_addr().to_string(),
                    oracle: SProfile::new(M),
                    _server: server,
                }
            })
            .collect();
        Mutex::new(Ctx { backends })
    })
    .lock()
    .expect("ctx lock poisoned")
}

/// One step of a well-formed session.
#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    Batch(Vec<(u32, bool)>),
    Mode,
    Least,
    Freq(u32),
    Median,
    TopK(u32),
    Cal(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..M).prop_map(Op::Add),
        (0u32..M).prop_map(Op::Remove),
        prop::collection::vec((0u32..M, any::<bool>()), 0..24).prop_map(Op::Batch),
        Just(Op::Mode),
        Just(Op::Least),
        (0u32..M).prop_map(Op::Freq),
        Just(Op::Median),
        (0u32..12).prop_map(Op::TopK),
        (-3i64..8).prop_map(Op::Cal),
    ]
}

/// Deterministic extreme witness the server promises: smallest tied id.
fn oracle_mode(oracle: &SProfile) -> Option<(u32, i64)> {
    oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    })
}

fn oracle_least(oracle: &SProfile) -> Option<(u32, i64)> {
    oracle.least().map(|e| {
        let obj = oracle.least_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    })
}

fn apply_session(
    client: &mut Client,
    oracle: &mut SProfile,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    for op in ops {
        match op {
            Op::Add(x) => {
                client.add(*x).expect("ADD");
                oracle.add(*x);
            }
            Op::Remove(x) => {
                client.remove(*x).expect("RM");
                oracle.remove(*x);
            }
            Op::Batch(tuples) => {
                let batch: Vec<sprofile::Tuple> = tuples
                    .iter()
                    .map(|&(object, is_add)| sprofile::Tuple { object, is_add })
                    .collect();
                let n = client.batch(&batch).expect("BATCH");
                prop_assert_eq!(n as usize, batch.len());
                for t in &batch {
                    oracle.apply(*t);
                }
            }
            Op::Mode => {
                prop_assert_eq!(client.mode().expect("MODE"), oracle_mode(oracle));
            }
            Op::Least => {
                prop_assert_eq!(client.least().expect("LEAST"), oracle_least(oracle));
            }
            Op::Freq(x) => {
                prop_assert_eq!(client.freq(*x).expect("FREQ"), oracle.frequency(*x));
            }
            Op::Median => {
                prop_assert_eq!(client.median().expect("MEDIAN"), oracle.median());
            }
            Op::TopK(k) => {
                prop_assert_eq!(client.top_k(*k).expect("TOPK"), oracle.top_k(*k));
            }
            Op::Cal(f) => {
                prop_assert_eq!(
                    client.count_at_least(*f).expect("CAL"),
                    oracle.count_at_least(*f)
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random well-formed sessions agree with the oracle on every query,
    /// for both backends, with state accumulating across cases.
    #[test]
    fn random_sessions_agree_with_the_oracle(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut ctx = ctx();
        for but in &mut ctx.backends {
            let mut client = Client::connect(but.addr.as_str()).expect("connect");
            apply_session(&mut client, &mut but.oracle, &ops)?;
            client.quit().expect("QUIT");
        }
    }

    /// Garbage interleaved with valid traffic always gets `ERR` and
    /// never desyncs: the queries that follow still match the oracle.
    #[test]
    fn malformed_lines_err_without_desync(
        ops in prop::collection::vec(op_strategy(), 1..12),
        garbage_at in 0usize..12,
    ) {
        const GARBAGE: [&str; 8] = [
            "NOPE",
            "ADD",
            "ADD banana",
            "ADD 99999",          // out of range for M = 24
            "RM -1",
            "BATCH x",
            "FREQ",
            "TOPK 1 2 3 extra",   // parse error: "1 2 3 extra" is not a u32
        ];
        let mut ctx = ctx();
        for but in &mut ctx.backends {
            let mut client = Client::connect(but.addr.as_str()).expect("connect");
            let line = GARBAGE[garbage_at % GARBAGE.len()];
            client.send_line(line).expect("send garbage");
            let reply = client.recv_line().expect("reply to garbage");
            prop_assert!(reply.starts_with("ERR "), "{} -> {}", line, reply);
            apply_session(&mut client, &mut but.oracle, &ops)?;
            client.quit().expect("QUIT");
        }
    }
}

/// A `BATCH` body with a bad tuple is consumed whole, answered with one
/// `ERR`, applies nothing — and the connection stays in sync.
#[test]
fn bad_batch_bodies_do_not_desync_or_apply() {
    let mut ctx = ctx();
    for but in &mut ctx.backends {
        let mut client = Client::connect(but.addr.as_str()).expect("connect");
        let before: Vec<i64> = (0..M).map(|x| but.oracle.frequency(x)).collect();
        client.send_line("BATCH 4").unwrap();
        client.send_line("a 1").unwrap();
        client.send_line("a 99999").unwrap(); // out of range
        client.send_line("not a tuple").unwrap();
        client.send_line("r 2").unwrap();
        let reply = client.recv_line().unwrap();
        assert!(reply.starts_with("ERR tuple 2"), "{reply}");
        // Nothing applied, connection still in lockstep with the oracle.
        for x in 0..M {
            assert_eq!(client.freq(x).unwrap(), before[x as usize], "object {x}");
        }
        client.quit().unwrap();
    }
}

/// Truncated frames (connection dropped mid-`BATCH`) are dropped whole;
/// the server neither panics nor applies a partial batch.
#[test]
fn truncated_batch_frames_are_dropped() {
    let mut ctx = ctx();
    for but in &mut ctx.backends {
        {
            let mut client = Client::connect(but.addr.as_str()).expect("connect");
            client.send_line("BATCH 1000").unwrap();
            client.send_line("a 3").unwrap();
            client.send_line("a 3").unwrap();
            // Drop mid-body.
        }
        let mut client = Client::connect(but.addr.as_str()).expect("reconnect");
        // The incomplete frame must never land, no matter how long we
        // wait; `applied` visible via a query barrier on a new conn.
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(
            client.freq(3).unwrap(),
            but.oracle.frequency(3),
            "truncated batch must not apply"
        );
        client.quit().unwrap();
    }
}
