//! Seeded failover chaos rounds (the CI harness): a 1-primary /
//! 2-replica group with automatic failover enabled is driven with
//! random acked traffic, the primary is crash-stopped (`kill`, no final
//! checkpoint), and the round asserts the group converges to **exactly
//! one writable head** — the election's winner at a bumped epoch — with
//! the loser re-pointed at it, the revived stale primary **fenced
//! loudly**, and every survivor (including the wiped-and-failed-back
//! old primary) agreeing with a single-profile oracle.
//!
//! Rounds and seed come from the environment so CI can crank them and a
//! failure is reproducible:
//!
//! - `CHAOS_ROUNDS` — rounds to run (default 2; CI runs 5)
//! - `CHAOS_SEED`   — base seed (default fixed; printed per round, and
//!   every panic message carries it)
//!
//! Each round builds a fresh cluster on fresh ports (ephemeral-port
//! reuse across in-process restarts is not portable without
//! `SO_REUSEADDR`, which std's `TcpListener` cannot set).

use std::path::PathBuf;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sprofile::{SProfile, Tuple};
use sprofile_server::{
    BackendKind, Client, DurabilityConfig, FailoverConfig, Server, ServerConfig, SyncCommit,
};

const DEFAULT_SEED: u64 = 0xC4A0_55EED;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sprofile-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Grabs an ephemeral port and releases it, so a replica can be told
/// its peer's address before the peer starts. The bind race is
/// negligible in a test process that allocates a handful of ports.
fn free_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);
    addr
}

fn wal_config(dir: PathBuf) -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: 512,
        checkpoint_every: 64,
        ..DurabilityConfig::new(dir)
    }
}

fn wait_for(what: &str, seed: u64, mut cond: impl FnMut() -> bool) {
    for _ in 0..1_500 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("seed={seed:#x}: timed out waiting for {what}");
}

fn stat_str(stats: &str, key: &str) -> String {
    stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_default()
        .to_string()
}

fn role(client: &mut Client) -> String {
    stat_str(&client.stats().unwrap(), "repl_role")
}

/// Sends `ops` random acked tuples to the head, mirroring them into the
/// oracle — under quorum commit, everything in the oracle reached at
/// least one replica before the send returned.
fn drive(rng: &mut StdRng, client: &mut Client, oracle: &mut SProfile, m: u32, ops: usize) {
    let mut sent = 0;
    while sent < ops {
        let chunk = rng.gen_range(1usize..=16).min(ops - sent);
        let tuples: Vec<Tuple> = (0..chunk)
            .map(|_| Tuple {
                object: rng.gen_range(0..m),
                is_add: rng.gen_bool(0.7),
            })
            .collect();
        client.batch(&tuples).unwrap();
        oracle.apply_batch(&tuples);
        sent += chunk;
    }
}

fn assert_matches_oracle(client: &mut Client, oracle: &SProfile, m: u32, seed: u64, ctx: &str) {
    for x in 0..m {
        assert_eq!(
            client.freq(x).unwrap(),
            oracle.frequency(x),
            "seed={seed:#x}: {ctx}: object {x}"
        );
    }
    assert_eq!(
        client.median().unwrap(),
        oracle.median(),
        "seed={seed:#x}: {ctx}: median"
    );
}

fn start_replica(m: u32, dir: PathBuf, primary: &str, addr: &str, peers: Vec<String>) -> Server {
    let mut failover = FailoverConfig::new(peers);
    failover.heartbeat = Duration::from_millis(100);
    failover.grace = 3;
    Server::start(
        ServerConfig {
            m,
            backend: BackendKind::Sharded { shards: 2 },
            workers: 3,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(dir)),
            replica_of: Some(primary.to_string()),
            failover: Some(failover),
            ..ServerConfig::default()
        },
        addr,
    )
    .expect("start replica")
}

fn chaos_round(base_seed: u64, round: u64) {
    let seed = base_seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    eprintln!("chaos round {round}: seed={seed:#x} (CHAOS_SEED to reproduce)");
    let mut rng = StdRng::seed_from_u64(seed);
    let m: u32 = rng.gen_range(16..64);
    let base = temp_base(&format!("round{round}"));

    // Fresh cluster: quorum-commit primary, two auto-failover replicas
    // that know each other as election peers.
    let primary = Server::start(
        ServerConfig {
            m,
            backend: BackendKind::Sharded { shards: 2 },
            workers: 3,
            flush_every: 4, // forced to 1 by sync commit
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(base.join("primary"))),
            sync_commit: SyncCommit::Quorum,
            sync_commit_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start primary");
    let p_addr = primary.local_addr().to_string();
    let a1 = free_addr();
    let a2 = free_addr();
    let r1 = start_replica(m, base.join("r1"), &p_addr, &a1, vec![a2.clone()]);
    let r2 = start_replica(m, base.join("r2"), &p_addr, &a2, vec![a1.clone()]);

    let mut oracle = SProfile::new(m);
    let mut pc = Client::connect(p_addr.as_str()).unwrap();
    let phase1 = rng.gen_range(60..250);
    drive(&mut rng, &mut pc, &mut oracle, m, phase1);
    drop(pc);

    // Crash-stop the primary mid-flight: no drain, no final checkpoint.
    primary.kill();

    // The health checks must notice, elect, and promote exactly one of
    // the replicas — the most caught-up one — at the bumped epoch.
    let mut c1 = Client::connect(r1.local_addr()).unwrap();
    let mut c2 = Client::connect(r2.local_addr()).unwrap();
    wait_for("a self-promotion", seed, || {
        role(&mut c1) == "promoted" || role(&mut c2) == "promoted"
    });
    let (mut wc, mut lc, winner, loser) = if role(&mut c1) == "promoted" {
        (c1, c2, r1, r2)
    } else {
        (c2, c1, r2, r1)
    };
    let wstats = wc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&wstats, "repl_epoch"),
        Some(2),
        "seed={seed:#x}: winner generation: {wstats}"
    );

    // The loser must re-point at the winner and converge; it must NOT
    // also promote (exactly one writable head).
    let head = Client::stats_field(&wstats, "repl_head_lsn").unwrap();
    wait_for("loser convergence on the new head", seed, || {
        let stats = lc.stats().unwrap();
        stat_str(&stats, "repl_role") == "replica"
            && Client::stats_field(&stats, "repl_applied_lsn") == Some(head)
            && Client::stats_field(&stats, "repl_epoch") == Some(2)
    });
    let err = lc.add(0).unwrap_err();
    assert!(
        err.to_string().contains("readonly"),
        "seed={seed:#x}: loser must stay read-only: {err}"
    );
    // Quorum commit made every acked write reach the election's winner.
    assert_matches_oracle(&mut wc, &oracle, m, seed, "winner after failover");
    assert_matches_oracle(&mut lc, &oracle, m, seed, "loser after re-point");

    // Revive the stale primary from its own WAL (new port — see module
    // doc): it comes back as an epoch-1 head and must be fenced when
    // generation-2 members show up.
    let stale = Server::start(
        ServerConfig {
            m,
            backend: BackendKind::Sharded { shards: 2 },
            workers: 2,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(base.join("primary"))),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("revive stale primary");
    let mut sc = Client::connect(stale.local_addr()).unwrap();
    sc.send_line("REPLICATE 1 2").unwrap();
    let reply = sc.recv_line().unwrap();
    assert!(
        reply.starts_with("ERR fenced"),
        "seed={seed:#x}: stale head must fence generation-2 followers: {reply}"
    );
    let mut sc = Client::connect(stale.local_addr()).unwrap();
    let sstats = sc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&sstats, "fenced_rejects"),
        Some(1),
        "seed={seed:#x}: {sstats}"
    );
    sc.quit().unwrap();
    stale.shutdown();

    // Failback: the old primary rejoins as a replica of the new head
    // (same WAL dir — its log is a committed prefix of the winner's),
    // adopts the new generation, and converges with fresh traffic.
    let failback = Server::start(
        ServerConfig {
            m,
            backend: BackendKind::Sharded { shards: 2 },
            workers: 2,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(base.join("primary"))),
            replica_of: Some(wc.stats().map(|_| winner.local_addr().to_string()).unwrap()),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("failback old primary");
    let phase2 = rng.gen_range(30..120);
    drive(&mut rng, &mut wc, &mut oracle, m, phase2);
    wc.freq(0).unwrap();
    let head = Client::stats_field(&wc.stats().unwrap(), "repl_head_lsn").unwrap();
    let mut fc = Client::connect(failback.local_addr()).unwrap();
    for (name, client) in [("failback", &mut fc), ("loser", &mut lc)] {
        wait_for(&format!("{name} catch-up after failback"), seed, || {
            let stats = client.stats().unwrap();
            Client::stats_field(&stats, "repl_applied_lsn") == Some(head)
                && Client::stats_field(&stats, "repl_epoch") == Some(2)
        });
        assert_matches_oracle(client, &oracle, m, seed, &format!("{name} final state"));
    }
    assert_matches_oracle(&mut wc, &oracle, m, seed, "winner final state");

    wc.quit().unwrap();
    lc.quit().unwrap();
    fc.quit().unwrap();
    winner.shutdown();
    loser.shutdown();
    failback.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn seeded_failover_chaos_rounds_converge_on_one_writable_head() {
    let seed = env_u64("CHAOS_SEED", DEFAULT_SEED);
    let rounds = env_u64("CHAOS_ROUNDS", 2);
    for round in 0..rounds {
        chaos_round(seed, round);
    }
}
