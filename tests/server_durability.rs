//! End-to-end durability through the TCP server: writes acknowledged
//! over the wire survive a restart (graceful or torn), for both
//! backends, with recovery riding the same `--wal` directory.

use std::fs;
use std::path::{Path, PathBuf};

use sprofile::{SProfile, Tuple};
use sprofile_persist::is_segment_file;
use sprofile_server::{BackendKind, Client, DurabilityConfig, Server, ServerConfig, SyncPolicy};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sprofile-server-dur-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start(kind: BackendKind, m: u32, wal_dir: &Path) -> Server {
    Server::start(
        ServerConfig {
            m,
            backend: kind,
            workers: 2,
            flush_every: 8,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(DurabilityConfig {
                sync: SyncPolicy::Never,
                checkpoint_every: 0,
                ..DurabilityConfig::new(wal_dir)
            }),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind server")
}

/// Deterministic workload; returns the oracle after `batches` frames of
/// `per_batch` tuples each (each frame ≥ flush_every, so frame =
/// WAL record).
fn drive(client: &mut Client, m: u32, batches: usize, per_batch: usize) -> SProfile {
    let mut oracle = SProfile::new(m);
    for b in 0..batches {
        let frame: Vec<Tuple> = (0..per_batch)
            .map(|i| {
                let x = ((b * per_batch + i) as u32 * 17 + 3) % m;
                if (b + i) % 5 == 0 {
                    Tuple::remove(x)
                } else {
                    Tuple::add(x)
                }
            })
            .collect();
        client.batch(&frame).unwrap();
        for t in &frame {
            oracle.apply(*t);
        }
    }
    oracle
}

fn assert_matches(client: &mut Client, oracle: &SProfile, m: u32, what: &str) {
    for x in 0..m {
        assert_eq!(
            client.freq(x).unwrap(),
            oracle.frequency(x),
            "{what} obj {x}"
        );
    }
    assert_eq!(client.median().unwrap(), oracle.median(), "{what} median");
}

#[test]
fn acknowledged_writes_survive_graceful_restarts_across_backends() {
    let m = 48u32;
    let dir = temp_dir("graceful");
    let mut oracle;
    {
        let server = start(BackendKind::Sharded { shards: 4 }, m, &dir);
        let mut c = Client::connect(server.local_addr()).unwrap();
        oracle = drive(&mut c, m, 12, 16);
        c.quit().unwrap();
        server.shutdown();
    }
    // Restart on the *other* backend; continue writing; restart again.
    {
        let server = start(BackendKind::Pipeline, m, &dir);
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_matches(&mut c, &oracle, m, "after restart 1");
        let more = drive(&mut c, m, 5, 16);
        for x in 0..m {
            let combined = oracle.frequency(x) + more.frequency(x);
            assert_eq!(c.freq(x).unwrap(), combined, "combined obj {x}");
        }
        for x in 0..m {
            for _ in 0..more.frequency(x).max(0) {
                oracle.add(x);
            }
            for _ in 0..(-more.frequency(x)).max(0) {
                oracle.remove(x);
            }
        }
        c.quit().unwrap();
        server.shutdown();
    }
    {
        let server = start(BackendKind::Sharded { shards: 2 }, m, &dir);
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_matches(&mut c, &oracle, m, "after restart 2");
        c.quit().unwrap();
        server.shutdown();
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_restarts_with_the_durable_prefix() {
    let m = 32u32;
    let dir = temp_dir("torn");
    let full_oracle;
    {
        let server = start(BackendKind::Sharded { shards: 4 }, m, &dir);
        let mut c = Client::connect(server.local_addr()).unwrap();
        full_oracle = drive(&mut c, m, 10, 16);
        c.quit().unwrap();
        server.shutdown();
    }
    // Simulate the crash the graceful shutdown papered over: delete the
    // shutdown checkpoint and tear the last record's bytes off the tail
    // segment. The durable prefix is then frames 1..=9.
    for entry in fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".ck"))
        {
            fs::remove_file(entry.path()).unwrap();
        }
    }
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let e = e.unwrap();
            e.file_name()
                .to_str()
                .and_then(is_segment_file)
                .map(|lsn| (lsn, e.path()))
        })
        .collect();
    segments.sort_unstable_by_key(|&(lsn, _)| lsn);
    let tail = segments.pop().unwrap().1;
    let bytes = fs::read(&tail).unwrap();
    fs::write(&tail, &bytes[..bytes.len() - 7]).unwrap();

    // The prefix oracle: replay the same deterministic workload minus
    // the torn final frame.
    let mut prefix = SProfile::new(m);
    {
        // Regenerate frames 0..9 exactly as `drive` built them.
        for b in 0..9usize {
            for i in 0..16usize {
                let x = ((b * 16 + i) as u32 * 17 + 3) % m;
                let t = if (b + i) % 5 == 0 {
                    Tuple::remove(x)
                } else {
                    Tuple::add(x)
                };
                prefix.apply(t);
            }
        }
    }
    assert_ne!(
        sprofile::verify::derive_frequencies(&prefix),
        sprofile::verify::derive_frequencies(&full_oracle),
        "the torn frame must actually change state for this test to bite"
    );
    let server = start(BackendKind::Pipeline, m, &dir);
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_matches(&mut c, &prefix, m, "after torn restart");
    c.quit().unwrap();
    server.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_exposes_wal_counters_over_the_wire() {
    let m = 16u32;
    let dir = temp_dir("stats");
    let server = start(BackendKind::Sharded { shards: 2 }, m, &dir);
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.batch(&(0..20u32).map(|i| Tuple::add(i % m)).collect::<Vec<_>>())
        .unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(Client::stats_field(&stats, "wal"), Some(1), "{stats}");
    assert_eq!(
        Client::stats_field(&stats, "wal_tuples"),
        Some(20),
        "{stats}"
    );
    assert!(
        Client::stats_field(&stats, "wal_bytes").unwrap_or(0) > 0,
        "{stats}"
    );
    assert_eq!(
        Client::stats_field(&stats, "wal_segments"),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        Client::stats_field(&stats, "wal_errors"),
        Some(0),
        "{stats}"
    );
    c.quit().unwrap();
    server.shutdown();
    fs::remove_dir_all(&dir).ok();
}
