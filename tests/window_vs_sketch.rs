//! Integration: the exact §2.3 window adapter versus the §1-cited
//! approximate sliding-window sketch (exponential histogram).
//!
//! Demonstrates the trade-off the paper positions itself against: the
//! sketch tracks one object's window count approximately in polylog
//! space, while the profile answers *every* per-object count (and mode /
//! ranks) exactly in O(W + m) space.

use sprofile::{TimedWindowProfile, Tuple};
use sprofile_baselines::ExpHistogram;
use sprofile_streamgen::{Pdf, Sampler};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn sketch_tracks_exact_window_within_epsilon() {
    let m = 64u32;
    let window = 2_000u64;
    let epsilon = 0.2f64;
    let tracked = 7u32; // the sketch follows one object

    let mut exact = TimedWindowProfile::new(m, window);
    let mut sketch = ExpHistogram::new(window, epsilon);
    let mut sampler = Sampler::new(Pdf::Zipf { exponent: 1.2 }, m);
    let mut rng = StdRng::seed_from_u64(42);

    let mut now = 0u64;
    for step in 0..30_000u64 {
        now += rng.gen_range(0u64..2);
        let x = sampler.sample(&mut rng);
        exact.push(now, Tuple::add(x));
        if x == tracked {
            sketch.record(now);
        }
        if step % 500 == 0 {
            let true_count = exact.profile().frequency(tracked) as f64;
            let est = sketch.estimate(now) as f64;
            assert!(
                (est - true_count).abs() <= epsilon * true_count + 1.0,
                "step {step}: sketch {est} vs exact {true_count}"
            );
        }
    }

    // The space story: the sketch holds polylog buckets; the exact window
    // holds every in-window tuple.
    assert!(
        sketch.num_buckets() < 100,
        "sketch buckets: {}",
        sketch.num_buckets()
    );
    assert!(
        exact.len() > sketch.num_buckets() * 10,
        "exact window should hold far more state ({} tuples)",
        exact.len()
    );
    // But the exact window answers queries the sketch cannot: the mode and
    // arbitrary ranks over all m objects.
    let mode = exact.profile().mode().unwrap();
    assert!(mode.frequency >= exact.profile().frequency(tracked));
    assert!(exact.profile().median().is_some());
}

#[test]
fn tracking_every_object_with_sketches_costs_more_than_the_profile_for_small_m() {
    // With one EH per object, m sketches each hold O(ε⁻¹·logW) buckets —
    // for modest m and W the exact profile's O(m + W) flat arrays are
    // comparable or smaller, which is the regime the paper targets.
    let m = 32u32;
    let window = 256u64;
    let mut sketches: Vec<ExpHistogram> = (0..m).map(|_| ExpHistogram::new(window, 0.1)).collect();
    let mut exact = TimedWindowProfile::new(m, window);
    let mut rng = StdRng::seed_from_u64(5);
    for now in 0..5_000u64 {
        let x = rng.gen_range(0..m);
        exact.push(now, Tuple::add(x));
        sketches[x as usize].record(now);
        // Per-object estimates agree with the exact profile within ε.
        if now % 250 == 0 {
            for y in 0..m {
                let truth = exact.profile().frequency(y) as f64;
                let est = sketches[y as usize].estimate(now) as f64;
                assert!(
                    (est - truth).abs() <= 0.1 * truth + 1.0,
                    "t={now} object {y}: {est} vs {truth}"
                );
            }
        }
    }
    let sketch_buckets: usize = sketches.iter().map(|s| s.num_buckets()).sum();
    // Not a strict inequality claim — just record both figures make sense.
    assert!(sketch_buckets > 0);
    assert!(exact.len() <= window as usize);
}
