//! Cross-crate integration: the static range structures, the dynamic
//! profile, and the sliding window answer the *same questions* where
//! their domains overlap — and must agree there.

use sprofile::{SProfile, SlidingWindowProfile, Tuple};
use sprofile_rangequery::{
    MedianScan, NaiveScan, PrefixCounts, RangeMedianQuery, RangeModeQuery, SqrtDecomposition,
};
use sprofile_streamgen::StreamConfig;

const M: u32 = 64;
const N: usize = 5_000;

/// An adds-only stream is simultaneously (a) a static array for the
/// range structures and (b) a dynamic update sequence for the profile.
fn adds() -> Vec<u32> {
    StreamConfig::zipf(M, 0.8, 321)
        .generator()
        .filter_map(|ev| ev.is_add.then_some(ev.object))
        .take(N)
        .collect()
}

#[test]
fn window_mode_equals_range_mode_of_the_suffix() {
    // A count-window of width W over an adds-only stream holds exactly
    // the last W elements — the range [i−W, i) of the static array. The
    // window's mode frequency must equal the static range mode count.
    let array = adds();
    let w = 250;
    let sqrt = SqrtDecomposition::new(&array, M);
    let mut win = SlidingWindowProfile::new(M, w);
    for (i, &x) in array.iter().enumerate() {
        win.push(Tuple::add(x));
        if (i + 1) % 777 == 0 && i + 1 >= w {
            let range = sqrt.range_mode(i + 1 - w, i + 1).unwrap();
            let mode = win.profile().mode().unwrap();
            assert_eq!(
                mode.frequency as u32, range.count,
                "window vs range at i = {i}"
            );
        }
    }
}

#[test]
fn profile_mode_equals_full_range_mode() {
    let array = adds();
    let naive = NaiveScan::new(&array, M);
    let mut profile = SProfile::new(M);
    for &x in &array {
        profile.add(x);
    }
    let full = naive.range_mode(0, array.len()).unwrap();
    let mode = profile.mode().unwrap();
    assert_eq!(mode.frequency as u32, full.count);
    assert_eq!(profile.frequency(full.value) as u32, full.count);
}

#[test]
fn range_median_of_full_array_matches_multiset_median() {
    // The median over the *array elements* (range median) is a different
    // quantity from the paper's median over the frequency array F — but
    // both are computable from the same data, and the prefix-count
    // structure's value_count must match the profile's frequency.
    let array = adds();
    let pref = PrefixCounts::new(&array, M);
    let scan = MedianScan::new(&array, M);
    let mut profile = SProfile::new(M);
    for &x in &array {
        profile.add(x);
    }
    for v in 0..M {
        assert_eq!(
            pref.value_count(v, 0, array.len()).unwrap() as i64,
            profile.frequency(v),
            "value {v}"
        );
    }
    assert_eq!(
        scan.range_median(0, array.len()),
        pref.range_median(0, array.len())
    );
}

#[test]
fn removals_give_dynamic_the_queries_statics_cannot_express() {
    // After interleaved removes, no static structure over the original
    // array answers the live mode; replaying the net state as a new
    // static array does. This pins down the exact relationship.
    let events = StreamConfig::stream2(M, 55).take_events(N);
    let mut profile = SProfile::new(M);
    for ev in &events {
        ev.apply_to(&mut profile);
    }
    // Rebuild a static array carrying the same net multiset (clamping
    // negatives to zero — statics cannot express them at all).
    let mut net = Vec::new();
    for v in 0..M {
        for _ in 0..profile.frequency(v).max(0) {
            net.push(v);
        }
    }
    let naive = NaiveScan::new(&net, M);
    let static_mode = naive.range_mode(0, net.len()).unwrap();
    let live_mode = profile.mode().unwrap();
    assert_eq!(live_mode.frequency.max(0) as u32, static_mode.count);
}
