//! Integration: snapshot persistence through a real file, across the
//! stream-generator and window layers.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use sprofile::{verify, SProfile};
use sprofile_streamgen::StreamConfig;

#[test]
fn snapshot_survives_a_file_roundtrip() {
    let m = 500u32;
    let mut p = SProfile::new(m);
    for e in StreamConfig::stream3(m, 77).generator().take(20_000) {
        e.apply_to(&mut p);
    }

    let path = std::env::temp_dir().join("sprofile_snapshot_test.bin");
    {
        let mut w = BufWriter::new(File::create(&path).unwrap());
        p.write_snapshot(&mut w).unwrap();
    }
    let restored = {
        let mut r = BufReader::new(File::open(&path).unwrap());
        SProfile::read_snapshot(&mut r).unwrap()
    };
    std::fs::remove_file(&path).ok();

    verify::check_invariants(&restored).unwrap();
    assert_eq!(
        verify::derive_frequencies(&p),
        verify::derive_frequencies(&restored)
    );
    assert_eq!(p.mode(), restored.mode());
    assert_eq!(p.median(), restored.median());
    assert_eq!(p.histogram(), restored.histogram());
}

#[test]
fn snapshot_then_continue_stream_matches_uninterrupted_run() {
    // The operational story: checkpoint a live profile, restart from the
    // checkpoint, keep consuming the stream — must equal never stopping.
    let m = 200u32;
    let events = StreamConfig::stream2(m, 123).take_events(10_000);

    let mut uninterrupted = SProfile::new(m);
    for e in &events {
        e.apply_to(&mut uninterrupted);
    }

    let mut first_half = SProfile::new(m);
    for e in &events[..5_000] {
        e.apply_to(&mut first_half);
    }
    let bytes = first_half.to_snapshot_bytes();
    let mut resumed = SProfile::from_snapshot_bytes(&bytes).unwrap();
    for e in &events[5_000..] {
        e.apply_to(&mut resumed);
    }

    assert_eq!(
        verify::derive_frequencies(&uninterrupted),
        verify::derive_frequencies(&resumed)
    );
    assert_eq!(uninterrupted.mode(), resumed.mode());
    assert_eq!(uninterrupted.top_k(10), resumed.top_k(10));
}

#[test]
#[ignore = "heavy stress run; enable with --ignored"]
fn ten_million_events_keep_invariants() {
    let m = 100_000u32;
    let mut p = SProfile::new(m);
    for e in StreamConfig::stream1(m, 9).generator().take(10_000_000) {
        e.apply_to(&mut p);
    }
    verify::check_invariants(&p).unwrap();
    assert_eq!(p.updates(), 10_000_000);
}
