//! Cross-crate integration: sliding windows fed by generated streams, and
//! the graph applications driven end-to-end.

use sprofile::{SProfile, SlidingWindowProfile, TimedWindowProfile};
use sprofile_graph::{
    densest_subgraph, detect_dense_block, induced_density, kcore_decomposition, verify_coreness,
    BipartiteGraph, BucketPeeler, Graph, LazyHeapPeeler, SProfilePeeler,
};
use sprofile_streamgen::{Event, StreamConfig};

#[test]
fn count_window_tracks_recent_mode_shift() {
    // Two-phase stream: the window must forget phase one.
    let m = 100u32;
    let mut win = SlidingWindowProfile::new(m, 1_000);
    for e in StreamConfig::stream1(m, 1).generator().take(5_000) {
        // Phase 1: shift all ids into the lower half.
        let e = Event {
            object: e.object % (m / 2),
            is_add: e.is_add,
        };
        win.push(e.to_tuple());
    }
    for e in StreamConfig::stream1(m, 2).generator().take(2_000) {
        // Phase 2: only upper-half ids.
        let e = Event {
            object: m / 2 + e.object % (m / 2),
            is_add: e.is_add,
        };
        win.push(e.to_tuple());
    }
    let mode = win.profile().mode().unwrap();
    assert!(
        mode.object >= m / 2,
        "window mode {} should be from phase 2",
        mode.object
    );
    // Lower-half ids must have fully left the window (net frequency 0).
    for x in 0..m / 2 {
        assert_eq!(win.profile().frequency(x), 0, "stale object {x} lingers");
    }
}

#[test]
fn timed_window_agrees_with_count_window_on_unit_spacing() {
    // With one tuple per tick and horizon = capacity, both windows hold
    // exactly the same suffix.
    let m = 30u32;
    let w = 128;
    let mut count_win = SlidingWindowProfile::new(m, w);
    let mut timed_win = TimedWindowProfile::new(m, w as u64);
    for (ts, e) in StreamConfig::stream2(m, 5)
        .generator()
        .take(3_000)
        .enumerate()
    {
        count_win.push(e.to_tuple());
        timed_win.push(ts as u64, e.to_tuple());
        assert_eq!(
            count_win.profile().mode().unwrap().frequency,
            timed_win.profile().mode().unwrap().frequency,
            "at ts {ts}"
        );
    }
    assert_eq!(count_win.len(), timed_win.len());
}

#[test]
fn kcore_backends_agree_on_generated_graphs() {
    for (label, g) in [
        ("erdos", Graph::erdos_renyi(200, 900, 31)),
        ("pa", Graph::preferential_attachment(200, 2, 32)),
        ("clique", Graph::with_planted_clique(150, 12, 300, 33)),
    ] {
        let a = kcore_decomposition::<SProfilePeeler>(&g);
        let b = kcore_decomposition::<LazyHeapPeeler>(&g);
        let c = kcore_decomposition::<BucketPeeler>(&g);
        assert_eq!(a.coreness, b.coreness, "{label}: sprofile vs heap");
        assert_eq!(b.coreness, c.coreness, "{label}: heap vs bucket");
        verify_coreness(&g, &a.coreness).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn densest_subgraph_beats_average_density() {
    let g = Graph::erdos_renyi(300, 2_000, 44);
    let r = densest_subgraph::<SProfilePeeler>(&g).unwrap();
    assert!(
        r.density >= r.initial_density,
        "greedy can never do worse than the full graph"
    );
    assert!((induced_density(&g, &r.members) - r.density).abs() < 1e-9);
}

#[test]
fn fraud_detection_pipeline_end_to_end() {
    let b = BipartiteGraph::with_planted_block(500, 800, 15, 20, 3_000, 55);
    let block = detect_dense_block::<SProfilePeeler>(&b).unwrap();
    // The planted 15x20 block has density 300/35 ≈ 8.6; background noise
    // cannot reach that.
    assert!(block.score > 6.0, "score {}", block.score);
    let hits = (0..15u32).filter(|l| block.left.contains(l)).count();
    assert!(hits >= 14, "recovered only {hits}/15 fraudsters");
}

#[test]
fn degree_profile_matches_graph_after_stream_of_edges() {
    // Treating "node gains an edge" as an add-event: the profile's view of
    // degrees must match the graph's.
    let g = Graph::erdos_renyi(80, 400, 66);
    let mut p = SProfile::new(80);
    for u in 0..80u32 {
        for &v in g.neighbors(u) {
            if v > u {
                p.add(u);
                p.add(v);
            }
        }
    }
    for u in 0..80u32 {
        assert_eq!(p.frequency(u), g.degree(u) as i64);
    }
    let mode = p.mode().unwrap();
    let max_deg = (0..80u32).map(|u| g.degree(u)).max().unwrap();
    assert_eq!(mode.frequency, max_deg as i64);
}
