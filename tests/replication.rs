//! Replica convergence, property-style (the PR's acceptance criterion):
//! a random op stream — random batch shapes, both backend kinds on both
//! sides — is driven into a primary while a live replica follows over
//! TCP. The replica is stopped and restarted **mid-stream at a random
//! point** (its own WAL carries its durable position across the
//! restart, and the primary's checkpoint pruning may force it through a
//! `CKPT` bootstrap on reconnect). After the stream drains, the
//! replica's state must equal a single-profile oracle replay — every
//! object, plus mode and median — and a **promoted** replica must
//! accept writes and still match the oracle afterwards.

use std::path::PathBuf;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sprofile::{SProfile, Tuple};
use sprofile_server::{BackendKind, Client, DurabilityConfig, Server, ServerConfig};

fn temp_base(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sprofile-repl-prop-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..1_000 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Aggressive WAL knobs: tiny segments and frequent checkpoints, so the
/// run actually exercises rotation, pruning, and (when the replica is
/// down across a prune) checkpoint bootstrap.
fn wal_config(dir: PathBuf) -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: 512,
        checkpoint_every: 64,
        ..DurabilityConfig::new(dir)
    }
}

fn start_primary(m: u32, backend: BackendKind, dir: PathBuf) -> Server {
    Server::start(
        ServerConfig {
            m,
            backend,
            accept_pool: 3,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(dir)),
            replica_of: None,
        },
        "127.0.0.1:0",
    )
    .expect("start primary")
}

fn start_replica(m: u32, backend: BackendKind, dir: PathBuf, primary: &Server) -> Server {
    Server::start(
        ServerConfig {
            m,
            backend,
            accept_pool: 2,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(dir)),
            replica_of: Some(primary.local_addr().to_string()),
        },
        "127.0.0.1:0",
    )
    .expect("start replica")
}

/// Sends `ops` random tuples to the primary (random batch/single mix),
/// mirroring them into the oracle.
fn drive(rng: &mut StdRng, client: &mut Client, oracle: &mut SProfile, m: u32, ops: usize) {
    let mut sent = 0;
    while sent < ops {
        let chunk = rng.gen_range(1usize..=24).min(ops - sent);
        let tuples: Vec<Tuple> = (0..chunk)
            .map(|_| Tuple {
                object: rng.gen_range(0..m),
                is_add: rng.gen_bool(0.7),
            })
            .collect();
        if chunk == 1 && rng.gen_bool(0.5) {
            let t = tuples[0];
            if t.is_add {
                client.add(t.object).unwrap();
            } else {
                client.remove(t.object).unwrap();
            }
        } else {
            client.batch(&tuples).unwrap();
        }
        oracle.apply_batch(&tuples);
        sent += chunk;
    }
}

/// Blocks until the replica has applied everything the primary has
/// committed (their STATS positions agree).
fn drain(primary_client: &mut Client, replica_client: &mut Client) -> u64 {
    // The read barrier flushes the primary connection's write buffer.
    primary_client.freq(0).unwrap();
    let stats = primary_client.stats().unwrap();
    let head = Client::stats_field(&stats, "repl_head_lsn").expect("primary head");
    wait_for("replica catch-up", || {
        let stats = replica_client.stats().unwrap();
        Client::stats_field(&stats, "repl_applied_lsn") == Some(head)
    });
    head
}

fn assert_matches_oracle(client: &mut Client, oracle: &SProfile, m: u32, ctx: &str) {
    for x in 0..m {
        assert_eq!(
            client.freq(x).unwrap(),
            oracle.frequency(x),
            "{ctx}: object {x}"
        );
    }
    let mode = client.mode().unwrap();
    let oracle_mode = oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().unwrap();
        (obj, e.frequency)
    });
    assert_eq!(mode, oracle_mode, "{ctx}: mode");
    assert_eq!(client.median().unwrap(), oracle.median(), "{ctx}: median");
}

#[test]
fn random_stream_with_replica_restart_converges_and_promotes() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for (case, (primary_kind, replica_kind)) in [
        (BackendKind::Sharded { shards: 3 }, BackendKind::Pipeline),
        (BackendKind::Pipeline, BackendKind::Sharded { shards: 2 }),
    ]
    .into_iter()
    .enumerate()
    {
        let m: u32 = rng.gen_range(16..96);
        let base = temp_base(&format!("case{case}"));
        let primary = start_primary(m, primary_kind, base.join("primary"));
        let mut replica = start_replica(m, replica_kind, base.join("replica"), &primary);
        let mut pc = Client::connect(primary.local_addr()).unwrap();
        let mut oracle = SProfile::new(m);

        // Phase 1: stream ops with the replica live.
        let phase1 = rng.gen_range(50..400);
        drive(&mut rng, &mut pc, &mut oracle, m, phase1);

        // Kill the replica mid-stream at a random point (its WAL holds
        // whatever it durably applied)...
        replica.shutdown();
        // ...keep streaming into the primary while it is down. With the
        // replica's registry slot gone, the primary's checkpoints prune
        // freely — a long-enough gap forces a bootstrap on reconnect.
        let phase2 = rng.gen_range(50..600);
        drive(&mut rng, &mut pc, &mut oracle, m, phase2);

        // Restart it from the same WAL directory; it resumes from its
        // durable position (or bootstraps from the primary's checkpoint
        // if that position is pruned).
        replica = start_replica(m, replica_kind, base.join("replica"), &primary);
        let phase3 = rng.gen_range(20..200);
        drive(&mut rng, &mut pc, &mut oracle, m, phase3);

        // Drain and compare the replica against the oracle.
        let mut rc = Client::connect(replica.local_addr()).unwrap();
        let head = drain(&mut pc, &mut rc);
        assert_matches_oracle(&mut rc, &oracle, m, &format!("case {case} replica"));

        // Promote: the replica accepts writes at its applied LSN and
        // still matches the oracle after more random traffic.
        let promoted_at = rc.promote().unwrap();
        assert_eq!(
            promoted_at, head,
            "case {case}: promoted at the drained head"
        );
        let extra = rng.gen_range(20..200);
        drive(&mut rng, &mut rc, &mut oracle, m, extra);
        rc.freq(0).unwrap(); // flush the promoted node's write buffer
        assert_matches_oracle(&mut rc, &oracle, m, &format!("case {case} promoted"));

        pc.quit().unwrap();
        rc.quit().unwrap();
        primary.shutdown();
        replica.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn a_late_replica_bootstraps_from_a_pruned_primary_log() {
    let mut rng = StdRng::seed_from_u64(0xB007);
    let m = 48u32;
    let base = temp_base("bootstrap");
    let primary = start_primary(m, BackendKind::Sharded { shards: 4 }, base.join("primary"));
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    let mut oracle = SProfile::new(m);
    // Enough traffic that the 64-tuple checkpoint cadence has pruned the
    // early segments long before the replica shows up.
    drive(&mut rng, &mut pc, &mut oracle, m, 2_000);
    pc.freq(0).unwrap();
    wait_for("primary checkpoint", || {
        let stats = pc.stats().unwrap();
        Client::stats_field(&stats, "wal_checkpoints").unwrap_or(0) >= 1
    });

    // A brand-new replica must come up via CKPT bootstrap + live tail.
    let replica = start_replica(m, BackendKind::Pipeline, base.join("replica"), &primary);
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    drain(&mut pc, &mut rc);
    assert_matches_oracle(&mut rc, &oracle, m, "bootstrapped replica");
    // And its own WAL recorded the bootstrap: a restart needs no
    // re-bootstrap and converges again.
    replica.shutdown();
    let replica = start_replica(m, BackendKind::Pipeline, base.join("replica"), &primary);
    drive(&mut rng, &mut pc, &mut oracle, m, 100);
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    drain(&mut pc, &mut rc);
    assert_matches_oracle(&mut rc, &oracle, m, "restarted bootstrapped replica");

    pc.quit().unwrap();
    rc.quit().unwrap();
    primary.shutdown();
    replica.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
