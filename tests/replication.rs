//! Replica convergence, property-style (the PR's acceptance criterion):
//! a random op stream — random batch shapes, both backend kinds on both
//! sides — is driven into a primary while a live replica follows over
//! TCP. The replica is stopped and restarted **mid-stream at a random
//! point** (its own WAL carries its durable position across the
//! restart, and the primary's checkpoint pruning may force it through a
//! `CKPT` bootstrap on reconnect). After the stream drains, the
//! replica's state must equal a single-profile oracle replay — every
//! object, plus mode and median — and a **promoted** replica must
//! accept writes and still match the oracle afterwards.

use std::path::PathBuf;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sprofile::{SProfile, Tuple};
use sprofile_server::{BackendKind, Client, DurabilityConfig, Server, ServerConfig, SyncCommit};

fn temp_base(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sprofile-repl-prop-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..1_000 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Aggressive WAL knobs: tiny segments and frequent checkpoints, so the
/// run actually exercises rotation, pruning, and (when the replica is
/// down across a prune) checkpoint bootstrap.
fn wal_config(dir: PathBuf) -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: 512,
        checkpoint_every: 64,
        ..DurabilityConfig::new(dir)
    }
}

fn start_primary(m: u32, backend: BackendKind, dir: PathBuf) -> Server {
    Server::start(
        ServerConfig {
            m,
            backend,
            workers: 3,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(dir)),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start primary")
}

fn start_replica(m: u32, backend: BackendKind, dir: PathBuf, primary: &Server) -> Server {
    start_replica_of(m, backend, dir, &primary.local_addr().to_string())
}

fn start_replica_of(m: u32, backend: BackendKind, dir: PathBuf, primary: &str) -> Server {
    Server::start(
        ServerConfig {
            m,
            backend,
            workers: 2,
            flush_every: 4,
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(dir)),
            replica_of: Some(primary.to_string()),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start replica")
}

/// Sends `ops` random tuples to the primary (random batch/single mix),
/// mirroring them into the oracle.
fn drive(rng: &mut StdRng, client: &mut Client, oracle: &mut SProfile, m: u32, ops: usize) {
    let mut sent = 0;
    while sent < ops {
        let chunk = rng.gen_range(1usize..=24).min(ops - sent);
        let tuples: Vec<Tuple> = (0..chunk)
            .map(|_| Tuple {
                object: rng.gen_range(0..m),
                is_add: rng.gen_bool(0.7),
            })
            .collect();
        if chunk == 1 && rng.gen_bool(0.5) {
            let t = tuples[0];
            if t.is_add {
                client.add(t.object).unwrap();
            } else {
                client.remove(t.object).unwrap();
            }
        } else {
            client.batch(&tuples).unwrap();
        }
        oracle.apply_batch(&tuples);
        sent += chunk;
    }
}

/// Blocks until the replica has applied everything the primary has
/// committed (their STATS positions agree).
fn drain(primary_client: &mut Client, replica_client: &mut Client) -> u64 {
    // The read barrier flushes the primary connection's write buffer.
    primary_client.freq(0).unwrap();
    let stats = primary_client.stats().unwrap();
    let head = Client::stats_field(&stats, "repl_head_lsn").expect("primary head");
    wait_for("replica catch-up", || {
        let stats = replica_client.stats().unwrap();
        Client::stats_field(&stats, "repl_applied_lsn") == Some(head)
    });
    head
}

fn assert_matches_oracle(client: &mut Client, oracle: &SProfile, m: u32, ctx: &str) {
    for x in 0..m {
        assert_eq!(
            client.freq(x).unwrap(),
            oracle.frequency(x),
            "{ctx}: object {x}"
        );
    }
    let mode = client.mode().unwrap();
    let oracle_mode = oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().unwrap();
        (obj, e.frequency)
    });
    assert_eq!(mode, oracle_mode, "{ctx}: mode");
    assert_eq!(client.median().unwrap(), oracle.median(), "{ctx}: median");
}

#[test]
fn random_stream_with_replica_restart_converges_and_promotes() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for (case, (primary_kind, replica_kind)) in [
        (BackendKind::Sharded { shards: 3 }, BackendKind::Pipeline),
        (BackendKind::Pipeline, BackendKind::Sharded { shards: 2 }),
    ]
    .into_iter()
    .enumerate()
    {
        let m: u32 = rng.gen_range(16..96);
        let base = temp_base(&format!("case{case}"));
        let primary = start_primary(m, primary_kind, base.join("primary"));
        let mut replica = start_replica(m, replica_kind, base.join("replica"), &primary);
        let mut pc = Client::connect(primary.local_addr()).unwrap();
        let mut oracle = SProfile::new(m);

        // Phase 1: stream ops with the replica live.
        let phase1 = rng.gen_range(50..400);
        drive(&mut rng, &mut pc, &mut oracle, m, phase1);

        // Kill the replica mid-stream at a random point (its WAL holds
        // whatever it durably applied)...
        replica.shutdown();
        // ...keep streaming into the primary while it is down. With the
        // replica's registry slot gone, the primary's checkpoints prune
        // freely — a long-enough gap forces a bootstrap on reconnect.
        let phase2 = rng.gen_range(50..600);
        drive(&mut rng, &mut pc, &mut oracle, m, phase2);

        // Restart it from the same WAL directory; it resumes from its
        // durable position (or bootstraps from the primary's checkpoint
        // if that position is pruned).
        replica = start_replica(m, replica_kind, base.join("replica"), &primary);
        let phase3 = rng.gen_range(20..200);
        drive(&mut rng, &mut pc, &mut oracle, m, phase3);

        // Drain and compare the replica against the oracle.
        let mut rc = Client::connect(replica.local_addr()).unwrap();
        let head = drain(&mut pc, &mut rc);
        assert_matches_oracle(&mut rc, &oracle, m, &format!("case {case} replica"));

        // Promote: the replica accepts writes at its applied LSN and
        // still matches the oracle after more random traffic.
        let (promoted_lsn, promoted_epoch) = rc.promote().unwrap();
        assert_eq!(
            promoted_lsn, head,
            "case {case}: promoted at the drained head"
        );
        assert_eq!(promoted_epoch, 2, "case {case}: promotion bumps the epoch");
        let extra = rng.gen_range(20..200);
        drive(&mut rng, &mut rc, &mut oracle, m, extra);
        rc.freq(0).unwrap(); // flush the promoted node's write buffer
        assert_matches_oracle(&mut rc, &oracle, m, &format!("case {case} promoted"));

        pc.quit().unwrap();
        rc.quit().unwrap();
        primary.shutdown();
        replica.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn a_late_replica_bootstraps_from_a_pruned_primary_log() {
    let mut rng = StdRng::seed_from_u64(0xB007);
    let m = 48u32;
    let base = temp_base("bootstrap");
    let primary = start_primary(m, BackendKind::Sharded { shards: 4 }, base.join("primary"));
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    let mut oracle = SProfile::new(m);
    // Enough traffic that the 64-tuple checkpoint cadence has pruned the
    // early segments long before the replica shows up.
    drive(&mut rng, &mut pc, &mut oracle, m, 2_000);
    pc.freq(0).unwrap();
    wait_for("primary checkpoint", || {
        let stats = pc.stats().unwrap();
        Client::stats_field(&stats, "wal_checkpoints").unwrap_or(0) >= 1
    });

    // A brand-new replica must come up via CKPT bootstrap + live tail.
    let replica = start_replica(m, BackendKind::Pipeline, base.join("replica"), &primary);
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    drain(&mut pc, &mut rc);
    assert_matches_oracle(&mut rc, &oracle, m, "bootstrapped replica");
    // And its own WAL recorded the bootstrap: a restart needs no
    // re-bootstrap and converges again.
    replica.shutdown();
    let replica = start_replica(m, BackendKind::Pipeline, base.join("replica"), &primary);
    drive(&mut rng, &mut pc, &mut oracle, m, 100);
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    drain(&mut pc, &mut rc);
    assert_matches_oracle(&mut rc, &oracle, m, "restarted bootstrapped replica");

    pc.quit().unwrap();
    rc.quit().unwrap();
    primary.shutdown();
    replica.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Epoch fencing, end to end: after a failover the old primary must be
/// refused on both sides of the handshake — it rejects followers of the
/// newer generation (handshake fencing, counted in `fenced_rejects`),
/// and a replica that followed the newer generation refuses to follow
/// the stale head after a failback re-point.
#[test]
fn a_stale_primary_is_fenced_after_failover() {
    let mut rng = StdRng::seed_from_u64(0xFE2CE);
    let m = 32u32;
    let base = temp_base("fencing");
    let primary = start_primary(m, BackendKind::Sharded { shards: 2 }, base.join("primary"));
    let replica = start_replica(m, BackendKind::Pipeline, base.join("replica"), &primary);
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    let mut oracle = SProfile::new(m);
    drive(&mut rng, &mut pc, &mut oracle, m, 100);
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    let head = drain(&mut pc, &mut rc);

    // Failover: the replica takes over at a bumped generation.
    assert_eq!(rc.promote().unwrap(), (head, 2));
    let stats = rc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&stats, "repl_epoch"),
        Some(2),
        "{stats}"
    );

    // Handshake fencing: the old primary (still at epoch 1) must refuse
    // a follower of generation 2, loudly.
    let mut raw = Client::connect(primary.local_addr()).unwrap();
    raw.send_line(&format!("REPLICATE {} 2", head + 1)).unwrap();
    let reply = raw.recv_line().unwrap();
    assert!(reply.starts_with("ERR fenced"), "{reply}");
    let stats = pc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&stats, "fenced_rejects"),
        Some(1),
        "{stats}"
    );

    // A second replica follows the promoted head and durably adopts its
    // generation (via the stream's EPOCH greeting).
    let second = start_replica(m, BackendKind::Pipeline, base.join("second"), &replica);
    let mut sc = Client::connect(second.local_addr()).unwrap();
    drain(&mut rc, &mut sc);
    let stats = sc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&stats, "repl_epoch"),
        Some(2),
        "{stats}"
    );
    assert_matches_oracle(&mut sc, &oracle, m, "second replica");
    sc.quit().unwrap();
    second.shutdown();

    // Failback fencing: re-pointed at the stale epoch-1 primary, it
    // refuses the stream instead of silently re-following a zombie.
    let second = start_replica_of(
        m,
        BackendKind::Pipeline,
        base.join("second"),
        &primary.local_addr().to_string(),
    );
    let mut sc = Client::connect(second.local_addr()).unwrap();
    wait_for("failback fenced", || {
        let stats = sc.stats().unwrap();
        Client::stats_field(&stats, "fenced_rejects").unwrap_or(0) >= 1
    });
    let stats = sc.stats().unwrap();
    assert_eq!(
        Client::stats_field(&stats, "repl_epoch"),
        Some(2),
        "{stats}"
    );

    pc.quit().unwrap();
    rc.quit().unwrap();
    sc.quit().unwrap();
    primary.shutdown();
    replica.shutdown();
    second.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Synchronous commit gives RPO = 0: with `--sync-commit quorum` every
/// acknowledged write has reached at least one replica, so killing the
/// primary (crash-stop, no final checkpoint) and promoting the most
/// caught-up replica loses nothing the client saw acknowledged.
#[test]
fn sync_commit_quorum_loses_no_acked_write_across_a_primary_kill() {
    let mut rng = StdRng::seed_from_u64(0xAC0DE);
    let m = 24u32;
    let base = temp_base("sync-commit");
    let primary = Server::start(
        ServerConfig {
            m,
            backend: BackendKind::Sharded { shards: 2 },
            workers: 3,
            flush_every: 4, // forced to 1 by sync commit
            snapshot_dir: std::env::temp_dir(),
            wal: Some(wal_config(base.join("primary"))),
            sync_commit: SyncCommit::Quorum,
            sync_commit_timeout: std::time::Duration::from_secs(10),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start sync-commit primary");
    let r1 = start_replica(
        m,
        BackendKind::Sharded { shards: 2 },
        base.join("r1"),
        &primary,
    );
    let r2 = start_replica(m, BackendKind::Pipeline, base.join("r2"), &primary);
    let mut pc = Client::connect(primary.local_addr()).unwrap();
    let mut oracle = SProfile::new(m);
    // Every op `drive` mirrors into the oracle was OK'd by the primary,
    // and with quorum commit an OK means >= 1 replica acked that LSN.
    drive(&mut rng, &mut pc, &mut oracle, m, 150);
    let stats = pc.stats().unwrap();
    assert!(stats.contains("sync_commit=quorum"), "{stats}");
    drop(pc);

    // Crash-stop the primary: no drain, no final checkpoint.
    primary.kill();

    // The most caught-up replica holds every acked LSN (the log is
    // sequential, so max(applied) covers all acked positions).
    let mut c1 = Client::connect(r1.local_addr()).unwrap();
    let mut c2 = Client::connect(r2.local_addr()).unwrap();
    let a1 = Client::stats_field(&c1.stats().unwrap(), "repl_applied_lsn").unwrap();
    let a2 = Client::stats_field(&c2.stats().unwrap(), "repl_applied_lsn").unwrap();
    let (mut wc, lc, wsrv, lsrv) = if a1 >= a2 {
        (c1, c2, r1, r2)
    } else {
        (c2, c1, r2, r1)
    };
    let (_, epoch) = wc.promote().unwrap();
    assert_eq!(epoch, 2, "promotion after the kill bumps the generation");
    assert_matches_oracle(&mut wc, &oracle, m, "sync-commit survivor");

    wc.quit().unwrap();
    lc.quit().unwrap();
    wsrv.shutdown();
    lsrv.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
