//! End-to-end acceptance: N concurrent loadgen threads (mixed
//! `ADD`/`RM` singles and `BATCH` frames) against a live TCP server
//! must leave the profile in **exactly** the state a sequential
//! [`SProfile`] oracle reaches when fed the same tuples — final `FREQ`
//! for every object, `MODE`, `LEAST`, `MEDIAN`, `TOPK`, and `CAL`
//! identical, for both the sharded and the pipeline backend.
//!
//! This holds because add/remove commute: whatever interleaving the
//! accept pool produces, the final frequency vector is the multiset sum
//! of all threads' tuples, and every query above is a deterministic
//! function of that vector (ties broken by smallest id on both sides).

use sprofile::SProfile;
use sprofile_server::loadgen::{self, thread_tuples};
use sprofile_server::{BackendKind, Client, LoadgenConfig, Server, ServerConfig, WireProto};

const M: u32 = 256;
const THREADS: usize = 4;
const EVENTS_PER_THREAD: usize = 5_000;

fn run_agreement(kind: BackendKind, proto: WireProto) {
    let server = Server::start(
        ServerConfig {
            m: M,
            backend: kind,
            workers: THREADS,
            flush_every: 96,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind test server");

    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        threads: THREADS,
        events_per_thread: EVENTS_PER_THREAD,
        batch: 256,
        m: M,
        seed: 20190612,
        proto,
    };
    let report = loadgen::run(&cfg).expect("loadgen run");
    let total = (THREADS * EVENTS_PER_THREAD) as u64;
    assert_eq!(report.tuples_sent, total, "{kind:?}");
    assert!(report.batches_sent > 0, "{kind:?}: no BATCH frames sent");
    assert!(report.singles_sent > 0, "{kind:?}: no single ops sent");
    assert_eq!(
        Client::stats_field(&report.final_stats, "applied"),
        Some(total),
        "{kind:?}: {}",
        report.final_stats
    );

    // Sequential oracle over the union of all threads' tuples (order
    // irrelevant for the final state).
    let mut oracle = SProfile::new(M);
    for t in 0..THREADS {
        for tuple in thread_tuples(&cfg, t) {
            oracle.apply(tuple);
        }
    }

    let mut c = Client::connect_with(server.local_addr(), proto).expect("connect probe");
    for x in 0..M {
        assert_eq!(
            c.freq(x).expect("FREQ"),
            oracle.frequency(x),
            "{kind:?}: object {x}"
        );
    }
    let mode = oracle.mode().map(|e| {
        let obj = oracle.mode_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    });
    let least = oracle.least().map(|e| {
        let obj = oracle.least_objects().iter().copied().min().expect("tied");
        (obj, e.frequency)
    });
    assert_eq!(c.mode().expect("MODE"), mode, "{kind:?}");
    assert_eq!(c.least().expect("LEAST"), least, "{kind:?}");
    assert_eq!(c.median().expect("MEDIAN"), oracle.median(), "{kind:?}");
    assert_eq!(c.top_k(20).expect("TOPK"), oracle.top_k(20), "{kind:?}");
    for threshold in [-5i64, 0, 1, 10] {
        assert_eq!(
            c.count_at_least(threshold).expect("CAL"),
            oracle.count_at_least(threshold),
            "{kind:?}: threshold {threshold}"
        );
    }
    c.quit().expect("QUIT");
    assert_eq!(server.shutdown(), total, "{kind:?}: applied count at drain");
}

#[test]
fn concurrent_loadgen_agrees_with_oracle_sharded() {
    run_agreement(BackendKind::Sharded { shards: 8 }, WireProto::Text);
}

#[test]
fn concurrent_loadgen_agrees_with_oracle_pipeline() {
    run_agreement(BackendKind::Pipeline, WireProto::Text);
}

#[test]
fn concurrent_loadgen_agrees_with_oracle_sharded_bin() {
    run_agreement(BackendKind::Sharded { shards: 8 }, WireProto::Bin);
}

#[test]
fn concurrent_loadgen_agrees_with_oracle_pipeline_bin() {
    run_agreement(BackendKind::Pipeline, WireProto::Bin);
}
