//! Sharded/single-profile agreement under batched ingestion.
//!
//! Drives identical random add/remove batches into an [`SProfile`] and a
//! [`ShardedProfile`] (several shard counts, including `shards > m` and
//! `m = 0`) and asserts every query the two share agrees. Also pins the
//! two bug scenarios this suite was introduced with: net-zero
//! [`is_empty`] with non-zero objects, and top-K ties straddling a
//! per-shard truncation boundary.
//!
//! [`is_empty`]: sprofile::SProfile::is_empty

use proptest::prelude::*;

use sprofile::{SProfile, Tuple};
use sprofile_concurrent::ShardedProfile;

const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 8, 64];

/// Random (object, is_add) ops over a universe of at most 48 objects,
/// split into batches of varying size by a second random stream.
fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0u32..48, any::<bool>()), 0..max_len)
}

fn to_tuples(m: u32, ops: &[(u32, bool)]) -> Vec<Tuple> {
    ops.iter()
        .map(|&(x, is_add)| Tuple {
            object: x % m,
            is_add,
        })
        .collect()
}

/// Assert every shared query of `sharded` agrees with `seq`.
fn assert_agreement(seq: &SProfile, sharded: &ShardedProfile) -> Result<(), TestCaseError> {
    let m = seq.num_objects();
    prop_assert_eq!(sharded.num_objects(), m);
    for x in 0..m {
        prop_assert_eq!(sharded.frequency(x), seq.frequency(x), "object {}", x);
    }
    prop_assert_eq!(sharded.len(), seq.len());
    prop_assert_eq!(sharded.is_empty(), seq.is_empty());
    prop_assert_eq!(sharded.distinct_active(), seq.distinct_active());

    // Extremes: frequencies must match exactly; the sharded witness is the
    // smallest tied id, the single-profile witness is any tied object —
    // check the witness really attains the extreme.
    match (sharded.mode(), seq.mode()) {
        (None, None) => {}
        (Some((obj, f)), Some(extreme)) => {
            prop_assert_eq!(f, extreme.frequency);
            prop_assert_eq!(seq.frequency(obj), f);
        }
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "mode mismatch: {a:?} vs {b:?}"
            )))
        }
    }
    match (sharded.least(), seq.least()) {
        (None, None) => {}
        (Some((obj, f)), Some(extreme)) => {
            prop_assert_eq!(f, extreme.frequency);
            prop_assert_eq!(seq.frequency(obj), f);
        }
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "least mismatch: {a:?} vs {b:?}"
            )))
        }
    }

    for threshold in [-3i64, -1, 0, 1, 2, 5, i64::MIN] {
        prop_assert_eq!(
            sharded.count_at_least(threshold),
            seq.count_at_least(threshold),
            "threshold {}",
            threshold
        );
    }

    // top_k is deterministic on both sides (ties ascend by object id), so
    // the lists must be identical — objects included.
    for k in [0u32, 1, 2, 3, 7, m / 2, m, m + 5] {
        prop_assert_eq!(sharded.top_k(k), seq.top_k(k), "k = {}", k);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn sharded_and_single_profile_agree_on_random_batches(
        m in 0u32..48,
        ops in ops_strategy(160),
        chunk in 1usize..64,
    ) {
        // m = 0 means an empty universe: no ops are applicable, but the
        // profiles must still agree on every (vacuous) query.
        let tuples = if m == 0 { Vec::new() } else { to_tuples(m, &ops) };
        let mut seq = SProfile::new(m);
        for batch in tuples.chunks(chunk.max(1)) {
            seq.apply_batch(batch);
        }
        // Naive anchor so "agreement" can't mean "agree on garbage".
        let mut naive = vec![0i64; m as usize];
        for t in &tuples {
            naive[t.object as usize] += if t.is_add { 1 } else { -1 };
        }
        for x in 0..m {
            prop_assert_eq!(seq.frequency(x), naive[x as usize]);
        }

        for shards in SHARD_COUNTS {
            let sharded = ShardedProfile::new(m, shards);
            for batch in tuples.chunks(chunk.max(1)) {
                sharded.apply_batch(batch);
            }
            assert_agreement(&seq, &sharded)?;
        }
    }

    #[test]
    fn batched_and_per_op_sharded_ingestion_agree(
        m in 1u32..48,
        ops in ops_strategy(120),
        shards in 1usize..12,
    ) {
        let tuples = to_tuples(m, &ops);
        let batched = ShardedProfile::new(m, shards);
        batched.apply_batch(&tuples);
        let per_op = ShardedProfile::new(m, shards);
        for t in &tuples {
            if t.is_add {
                per_op.add(t.object);
            } else {
                per_op.remove(t.object);
            }
        }
        for x in 0..m {
            prop_assert_eq!(batched.frequency(x), per_op.frequency(x), "object {}", x);
        }
        prop_assert_eq!(batched.top_k(m), per_op.top_k(m));
        prop_assert_eq!(batched.mode(), per_op.mode());
        prop_assert_eq!(batched.least(), per_op.least());
    }
}

/// Bug scenario 1: `+x` then `−y` nets to length 0 while two objects hold
/// non-zero frequencies. `is_empty` must report non-empty on every layer.
#[test]
fn regression_net_zero_profile_is_not_empty() {
    let mut seq = SProfile::new(8);
    seq.add(2);
    seq.remove(5);
    assert_eq!(seq.len(), 0);
    assert!(!seq.is_empty());
    assert_eq!(seq.distinct_active(), 2);

    for shards in SHARD_COUNTS {
        let sharded = ShardedProfile::new(8, shards);
        sharded.apply_batch(&[Tuple::add(2), Tuple::remove(5)]);
        assert_eq!(sharded.len(), 0, "shards = {shards}");
        assert!(!sharded.is_empty(), "shards = {shards}");
        assert_eq!(sharded.distinct_active(), 2, "shards = {shards}");
        assert_eq!(sharded.is_empty(), seq.is_empty(), "shards = {shards}");
    }
}

/// Bug scenario 2: equal frequencies straddling a per-shard top-K
/// truncation boundary. The merged sharded answer must equal the
/// single-profile answer, object ids included.
#[test]
fn regression_top_k_ties_across_shard_truncation() {
    let m = 24u32;
    // Twelve objects tied at frequency 2, spread over every shard, plus
    // one clear winner — for small k the tie class straddles each
    // shard's cut.
    let mut batch = Vec::new();
    for x in 0..12u32 {
        batch.push(Tuple::add(x));
        batch.push(Tuple::add(x));
    }
    for _ in 0..5 {
        batch.push(Tuple::add(20));
    }
    let mut seq = SProfile::new(m);
    seq.apply_batch(&batch);
    for shards in SHARD_COUNTS {
        let sharded = ShardedProfile::new(m, shards);
        sharded.apply_batch(&batch);
        for k in 0..=m {
            assert_eq!(sharded.top_k(k), seq.top_k(k), "shards = {shards}, k = {k}");
        }
    }
}
