//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment cannot fetch crates.io, so this workspace ships
//! a minimal wall-clock harness exposing the criterion API subset the
//! bench targets use: [`Criterion::benchmark_group`], throughput and
//! sample-size knobs, [`Bencher::iter`] / [`Bencher::iter_batched_ref`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. It reports
//! mean wall-clock time per iteration (and per-element throughput when
//! configured) — no statistics, plots, or HTML reports. Interface
//! compatibility is the goal: `cargo bench --no-run` guards compilation
//! in CI, and a plain `cargo bench` gives quick indicative numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the bench sources use).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched*` amortises setup cost. The shim runs one routine
/// call per setup regardless; the variant only exists for API parity.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs (criterion batches many per alloc).
    SmallInput,
    /// Large per-iteration inputs (criterion batches one per alloc).
    LargeInput,
}

/// A `function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = u64::from(self.samples);
    }

    /// Time `routine` against a fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = u64::from(self.samples);
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = u64::from(self.samples);
    }
}

/// Top-level benchmark driver; one per bench binary.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Criterion's default is 100 samples of many iterations each;
        // the shim keeps runs short so `cargo bench` stays interactive.
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", id, None, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion enforces >= 10; the shim just needs >= 1.
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    samples: u32,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("bench {label:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 * b.iters as f64 / b.elapsed.as_secs_f64();
            println!(
                "bench {label:<50} {:>14.1} ns/iter {:>14.0} elem/s",
                per_iter, rate
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 * b.iters as f64 / b.elapsed.as_secs_f64();
            println!(
                "bench {label:<50} {:>14.1} ns/iter {:>14.0} B/s",
                per_iter, rate
            );
        }
        _ => println!("bench {label:<50} {:>14.1} ns/iter", per_iter),
    }
}

/// Bundle benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::new("sum", 2), &vec![1u64, 2, 3], |b, v| {
            b.iter_batched_ref(
                || v.clone(),
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        group.finish();
        // 1 warm-up + 5 timed calls for `iter`.
        assert_eq!(calls, 6);
    }
}
