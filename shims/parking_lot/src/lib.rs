//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` returns the guard directly and poisoning is transparently
//! ignored (a poisoned std lock yields its inner guard).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex with `parking_lot`'s infallible `lock` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
