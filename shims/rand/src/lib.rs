//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small, deterministic implementation of exactly the
//! API subset the repo uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically solid
//! for test/benchmark stream generation, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample values of type `T` from
/// uniformly. Generic over the output type (like `rand`'s
/// `SampleRange<T>`) so integer literals in ranges infer their type from
/// the call site, e.g. `now += rng.gen_range(0..2)` with `now: u64`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// Panics if the range is empty, mirroring `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`bool`, floats in `[0, 1)`, full
    /// integer range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-12i64..12);
            assert!((-12..12).contains(&y));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
