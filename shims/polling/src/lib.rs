//! Offline stand-in for the [`polling`](https://docs.rs/polling) crate.
//!
//! The real crate wraps epoll/kqueue/IOCP. This build is offline and the
//! workspace forbids `unsafe`/FFI, so we approximate level-triggered
//! readiness with safe `std` primitives:
//!
//! - Each registered [`TcpStream`] is probed with a non-blocking
//!   one-byte `peek`. `Ok(n)` (including `Ok(0)`, which signals EOF)
//!   means the socket is readable; `WouldBlock` means it is not; any
//!   other error is reported as readable so the owner observes the
//!   failure on its next read.
//! - [`Poller::wait`] sweeps the registered sources. When nothing is
//!   ready it parks on a condvar with an adaptive backoff (spin a
//!   couple of sweeps, then sleep 50 µs doubling to a 1 ms cap) so an
//!   idle poller costs ~zero CPU while a busy one stays responsive.
//! - [`Poller::notify`] wakes a parked `wait` immediately — the shim's
//!   analogue of the self-pipe trick.
//!
//! Only the API subset used by `sprofile-server` is provided. Streams
//! must already be in non-blocking mode when added; `peek` on a
//! blocking stream would stall the sweep.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Readiness interest and event for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source.
    pub key: usize,
    /// Whether the source is (interested in being) readable.
    pub readable: bool,
}

impl Event {
    /// Interest in read readiness.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
        }
    }

    /// No interest; the source stays registered but is never reported.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
        }
    }
}

struct Source {
    stream: TcpStream,
    interest: bool,
}

/// A level-triggered readiness poller over non-blocking TCP streams.
pub struct Poller {
    sources: Mutex<HashMap<usize, Source>>,
    notified: Mutex<bool>,
    cond: Condvar,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> Poller {
        Poller {
            sources: Mutex::new(HashMap::new()),
            notified: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Registers `stream` under `interest.key`. The stream must already
    /// be non-blocking. Duplicate keys replace the previous source.
    pub fn add(&self, stream: &TcpStream, interest: Event) -> io::Result<()> {
        let clone = stream.try_clone()?;
        let mut sources = self.sources.lock().expect("poller sources poisoned");
        sources.insert(
            interest.key,
            Source {
                stream: clone,
                interest: interest.readable,
            },
        );
        Ok(())
    }

    /// Updates the interest set for an existing key. Unknown keys are a
    /// silent no-op (the source may have been deleted concurrently).
    pub fn modify(&self, interest: Event) {
        let mut sources = self.sources.lock().expect("poller sources poisoned");
        if let Some(src) = sources.get_mut(&interest.key) {
            src.interest = interest.readable;
        }
    }

    /// Deregisters a key. Unknown keys are a no-op.
    pub fn delete(&self, key: usize) {
        let mut sources = self.sources.lock().expect("poller sources poisoned");
        sources.remove(&key);
    }

    /// Wakes a concurrent or future [`Poller::wait`] immediately.
    pub fn notify(&self) {
        let mut flag = self.notified.lock().expect("poller notify poisoned");
        *flag = true;
        self.cond.notify_all();
    }

    /// Number of registered sources (diagnostics only).
    pub fn len(&self) -> usize {
        self.sources.lock().expect("poller sources poisoned").len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one registered source is readable, a
    /// `notify` arrives, or `timeout` elapses. Ready events are pushed
    /// into `events` (cleared first); returns the number of events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut backoff = 0u32;
        loop {
            if self.take_notification() {
                return Ok(0);
            }
            self.sweep(events);
            if !events.is_empty() {
                return Ok(events.len());
            }
            let mut park = match backoff {
                0 | 1 => Duration::ZERO,
                2 => Duration::from_micros(50),
                3 => Duration::from_micros(100),
                4 => Duration::from_micros(250),
                _ => Duration::from_millis(1),
            };
            if let Some(deadline) = deadline {
                let now = Instant::now();
                if now >= deadline {
                    return Ok(0);
                }
                park = park.min(deadline - now);
            }
            if park.is_zero() {
                std::thread::yield_now();
            } else {
                let guard = self.notified.lock().expect("poller notify poisoned");
                if *guard {
                    drop(guard);
                    continue;
                }
                let (mut guard, _timed_out) = self
                    .cond
                    .wait_timeout(guard, park)
                    .expect("poller notify poisoned");
                if *guard {
                    *guard = false;
                    return Ok(0);
                }
            }
            backoff = backoff.saturating_add(1);
        }
    }

    fn take_notification(&self) -> bool {
        let mut flag = self.notified.lock().expect("poller notify poisoned");
        std::mem::take(&mut *flag)
    }

    fn sweep(&self, events: &mut Vec<Event>) {
        let sources = self.sources.lock().expect("poller sources poisoned");
        let mut probe = [0u8; 1];
        for (&key, src) in sources.iter() {
            if !src.interest {
                continue;
            }
            let readable = match src.stream.peek(&mut probe) {
                Ok(_) => true, // data available, or Ok(0) = EOF
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    false
                }
                // Report broken sockets as readable so the owner sees
                // the error on its next read and can tear down.
                Err(_) => true,
            };
            if readable {
                events.push(Event::readable(key));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn reports_readable_when_data_arrives() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new();
        poller.add(&server, Event::readable(7)).expect("add");

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "no data yet");

        client.write_all(b"x").expect("write");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if !events.is_empty() || Instant::now() > deadline {
                break;
            }
        }
        assert_eq!(events, vec![Event::readable(7)]);
    }

    #[test]
    fn eof_is_readable() {
        let (client, server) = pair();
        server.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new();
        poller.add(&server, Event::readable(1)).expect("add");
        drop(client);

        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if !events.is_empty() || Instant::now() > deadline {
                break;
            }
        }
        assert_eq!(events, vec![Event::readable(1)]);
        // The owner's read now observes EOF.
        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).expect("read"), 0);
    }

    #[test]
    fn notify_wakes_a_parked_wait() {
        let poller = std::sync::Arc::new(Poller::new());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.notify();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "notify cut the wait short"
        );
        handle.join().expect("join");
    }

    #[test]
    fn modify_and_delete_change_the_sweep() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new();
        poller.add(&server, Event::readable(3)).expect("add");
        client.write_all(b"x").expect("write");

        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            if !events.is_empty() || Instant::now() > deadline {
                break;
            }
        }
        assert_eq!(events.len(), 1);

        // Interest off: the same pending byte is no longer reported.
        poller.modify(Event::none(3));
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());

        poller.modify(Event::readable(3));
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .expect("wait");
        assert_eq!(events.len(), 1);

        poller.delete(3);
        assert!(poller.is_empty());
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());
    }
}
