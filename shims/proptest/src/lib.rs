//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! a compact random-testing harness covering exactly the API the
//! property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   including tuple-pattern arguments like `(array, m) in strategy()`;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//!   tuple strategies, [`strategy::Just`], [`prop_oneof!`], and
//!   [`collection::vec`];
//! * [`arbitrary::any`] for primitive types;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` and [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: failing cases are **not shrunk** (the
//! failing inputs are reported as generated), and generation is seeded
//! deterministically per test from the test's module path, so runs are
//! reproducible without a persistence file.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is skipped, not
        /// counted as a failure.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Result type of one generated case (and of helper functions used
    /// with `?` inside `proptest!` bodies).
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the generator from an arbitrary string (e.g. the test's
        /// module path) via FNV-1a.
        pub fn seed_from_str(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty set");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply draws a value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate from `self`, then from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternative strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given (non-empty) alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.index(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (*self.start() as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// Strategy for any [`Arbitrary`](crate::arbitrary::Arbitrary) type;
    /// see [`any`](crate::arbitrary::any).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, unit-interval values keep downstream arithmetic sane.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S`; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec`s whose length is drawn from `size` (half-open) and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a proptest body or a helper returning
/// [`test_runner::TestCaseResult`]; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Skip the current case unless `cond` holds (does not count as a
/// failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($option)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies,
/// mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@impl ($config) $($(#[$meta])+ fn $name($($arg in $strategy),*) $body)*);
    };
    (
        $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default())
            $($(#[$meta])+ fn $name($($arg in $strategy),*) $body)*);
    };
    (@impl ($config:expr)
        $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strategy:expr),*) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::seed_from_str(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(r)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!("proptest: too many rejected inputs ({r})");
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", passed + 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, bool)>> {
        prop::collection::vec((0u32..10, any::<bool>()), 0..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size_and_elements(v in pairs()) {
            prop_assert!(v.len() < 50);
            for &(x, _) in &v {
                prop_assert!(x < 10, "element {} out of range", x);
            }
        }

        #[test]
        fn tuple_patterns_work((a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn flat_map_and_just_compose(
            (v, m) in (1u32..8).prop_flat_map(|m| (prop::collection::vec(0..m, 1..20), Just(m)))
        ) {
            prop_assume!(!v.is_empty());
            for &x in &v {
                prop_assert!(x < m);
            }
        }

        #[test]
        fn oneof_picks_only_listed_options(v in prop_oneof![
            prop::collection::vec(0u32..8, 1..10),
            prop::collection::vec(100u32..108, 1..10),
        ]) {
            for &x in &v {
                prop_assert!(x < 8 || (100u32..108).contains(&x));
            }
        }
    }

    #[test]
    fn helper_functions_compose_with_question_mark() {
        fn check(x: u32) -> TestCaseResult {
            prop_assert_eq!(x, x, "reflexivity");
            prop_assert_ne!(x, x + 1);
            Ok(())
        }
        fn outer() -> TestCaseResult {
            check(7)?;
            Ok(())
        }
        assert!(outer().is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]

        #[test]
        #[should_panic(expected = "proptest case 1 failed")]
        fn failures_panic_with_message(x in 0u32..1) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
