//! Offline stand-in for
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel),
//! backed by `std::sync::mpsc`.
//!
//! Covers the subset this workspace uses: [`bounded`] / [`unbounded`]
//! constructors, cloneable [`Sender`]s, blocking [`Receiver::recv`], and
//! draining a receiver with a `for` loop. The std backend is MPSC, not
//! MPMC — receivers are not cloneable — which matches every usage here
//! (single-owner pipeline threads and one-shot reply channels).

use std::fmt;
use std::sync::mpsc;

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like real crossbeam-channel, Debug does not require `T: Debug`.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel is currently empty but senders remain.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half of a channel. Cheap to clone; safe to move across
/// threads.
pub struct Sender<T>(SenderInner<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(match &self.0 {
            SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
        })
    }
}

impl<T> Sender<T> {
    /// Send `value`, blocking if the channel is bounded and full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderInner::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            SenderInner::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|mpsc::RecvError| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocking iterator over received values; ends when all senders are
    /// dropped.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
}

/// A bounded FIFO channel with capacity `cap`; sends block when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(SenderInner::Bounded(tx)), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_reply_round_trip() {
        let (tx, rx) = bounded(1);
        std::thread::spawn(move || tx.send(99).unwrap());
        assert_eq!(rx.recv(), Ok(99));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().count(), 2);
    }
}
